//! Durability: checkpoint a table to disk, "restart the process", and
//! restore it from its catalog — cold, with queries paging data back in.
//!
//! Run with: `cargo run --release --example durability`

use page_as_you_go::core::{LoadPolicy, PageConfig, Value, ValuePredicate};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, ChainId, FileStore};
use page_as_you_go::table::{
    ColumnSpec, PartitionSpec, Projection, Query, Schema, Table,
};
use std::sync::Arc;

fn main() {
    use page_as_you_go::core::DataType;
    let dir = std::env::temp_dir().join(format!("payg-durability-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // ---- "first process": build, merge, checkpoint --------------------
    let catalog: ChainId = {
        let pool = BufferPool::new(
            Arc::new(FileStore::open(&dir).expect("open store")),
            ResourceManager::new(),
        );
        let schema = Schema::new(vec![
            ColumnSpec::new("sensor", DataType::Integer),
            ColumnSpec::new("reading", DataType::Double),
            ColumnSpec::new("unit", DataType::Varchar),
        ])
        .unwrap()
        .with_primary_key("sensor")
        .unwrap();
        let t = Table::create(
            pool,
            PageConfig::default(),
            schema,
            vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
        )
        .unwrap();
        for i in 0..30_000i64 {
            t.insert(vec![
                Value::Integer(i),
                Value::Double((i % 997) as f64 / 4.0),
                Value::Varchar(if i % 2 == 0 { "celsius" } else { "kelvin" }.into()),
            ])
            .unwrap();
        }
        t.delta_merge_all().unwrap();
        let catalog = t.checkpoint().unwrap();
        println!(
            "first process: 30k readings persisted under {} — catalog chain {:?}",
            dir.display(),
            catalog
        );
        catalog
        // Everything in memory is dropped here.
    };

    // ---- "second process": restore from disk --------------------------
    let resman = ResourceManager::new();
    let pool = BufferPool::new(
        Arc::new(FileStore::open(&dir).expect("reopen store")),
        resman.clone(),
    );
    let t = Table::open(pool, catalog).expect("restore from catalog");
    println!(
        "second process: restored {} rows, {} partitions, footprint {} bytes (cold)",
        t.visible_rows(),
        t.partitions().len(),
        resman.stats().total_bytes
    );

    let q = Query::filtered(
        "sensor",
        ValuePredicate::Eq(Value::Integer(12_345)),
        Projection::All,
    );
    println!("point read after restore: {:?}", t.execute(&q).unwrap());
    let q = Query::filtered(
        "unit",
        ValuePredicate::Eq(Value::Varchar("kelvin".into())),
        Projection::Count,
    );
    println!("kelvin sensors: {:?}", t.execute(&q).unwrap());
    println!(
        "footprint after two queries: {} bytes across {} paged resources — \
         only the touched pages came back",
        resman.stats().total_bytes,
        resman.stats().paged_count
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
