//! Memory management under pressure (paper §5): the paged pool's
//! lower/upper limits, the asynchronous proactive unload, the reactive
//! unload, and weighted-LRU eviction of whole resident columns.
//!
//! Run with: `cargo run --release --example memory_pressure`

use page_as_you_go::core::{LoadPolicy, PageConfig};
use page_as_you_go::resman::{PoolLimits, ResourceManager};
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::{PartitionSpec, Table};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::Arc;

fn mib(b: usize) -> f64 {
    b as f64 / (1024.0 * 1024.0)
}

fn main() {
    // A paged pool capped at [256 KiB, 512 KiB]: crossing 512 KiB wakes the
    // asynchronous proactive unloader, which evicts LRU pages down to 256 KiB.
    const LOWER: usize = 256 << 10;
    const UPPER: usize = 512 << 10;
    let resman = ResourceManager::with_paged_limits(PoolLimits::new(LOWER, UPPER));
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());

    let profile = TableProfile::erp(50_000, 13, 3);
    let table = Table::create(
        pool,
        PageConfig::default(),
        profile.schema(false).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    table.insert_all(generate_rows(&profile)).unwrap();
    table.delta_merge_all().unwrap();
    table.unload_all();

    // A stream of point queries keeps pulling pages in; the proactive
    // unloader keeps pushing old ones out. Loads are never blocked, so the
    // pool may transiently exceed the upper limit.
    let mut qg = QueryGen::new(profile, 11);
    let mut peak = 0usize;
    for i in 0..2_000u32 {
        let q = qg.q_pk_star();
        table.execute(&q).unwrap();
        let paged = resman.stats().paged_bytes;
        peak = peak.max(paged);
        if i % 400 == 0 {
            println!(
                "after {:>5} queries: paged pool {:>6.2} MiB (peak {:>6.2} MiB), \
                 proactive evictions {:>6}",
                i + 1,
                mib(paged),
                mib(peak),
                resman.stats().proactive_evictions
            );
        }
    }
    resman.quiesce();
    let s = resman.stats();
    println!(
        "\nquiesced: paged pool {:.2} MiB — at or below the 512 KiB upper limit: {}",
        mib(s.paged_bytes),
        s.paged_bytes <= UPPER
    );
    println!(
        "peak observed {:.2} MiB — transient overshoot past the upper limit is \
         expected: the proactive unload is asynchronous and never blocks a load",
        mib(peak)
    );

    // Reactive path: a sudden low-memory situation drains the pool to the
    // lower limit synchronously, then takes other victims by weighted LRU.
    let freed = resman.handle_low_memory(8 << 20);
    println!("\nlow-memory call freed {:.2} MiB synchronously", mib(freed));
    println!("queries still work afterwards: {:?}", table.execute(&qg.q_pk_rid()).unwrap());
}
