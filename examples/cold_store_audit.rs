//! Cold-data auditing: random single-row reads over a page-loadable table
//! vs the same table fully resident — the paper's Fig. 9 scenario as an
//! application.
//!
//! Run with: `cargo run --release --example cold_store_audit`

use page_as_you_go::core::{LoadPolicy, PageConfig};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, LatencyStore, MemStore};
use page_as_you_go::table::{PartitionSpec, Table};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn build(profile: &TableProfile, policy: LoadPolicy) -> (Table, ResourceManager) {
    // A 120 µs page-read latency models cold storage (see DESIGN.md).
    let store = LatencyStore::new(MemStore::new(), Duration::from_micros(120));
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(store), resman.clone());
    let table = Table::create(
        pool,
        PageConfig::default(),
        profile.schema(true).unwrap(),
        vec![PartitionSpec::single(policy)],
    )
    .unwrap();
    table.insert_all(generate_rows(profile)).unwrap();
    table.delta_merge_all().unwrap();
    table.unload_all();
    (table, resman)
}

fn main() {
    // An ERP-like archive slice: 30k rows, 13 columns, every column indexed.
    let profile = TableProfile::erp(30_000, 13, 1);
    println!("building the archive twice: fully resident vs page loadable …");
    let (resident, resident_rm) = build(&profile, LoadPolicy::FullyResident);
    let (paged, paged_rm) = build(&profile, LoadPolicy::PageLoadable);

    // The auditor samples 400 random business objects.
    let audits = 400;
    let mut qg = QueryGen::new(profile.clone(), 2024);
    let queries: Vec<_> = (0..audits).map(|_| qg.q_pk_star()).collect();

    for (name, table, rm) in [
        ("fully resident", &resident, &resident_rm),
        ("page loadable", &paged, &paged_rm),
    ] {
        let t0 = Instant::now();
        let mut first = Duration::ZERO;
        for (i, q) in queries.iter().enumerate() {
            let tq = Instant::now();
            let rows = table.execute(q).unwrap();
            std::hint::black_box(&rows);
            if i == 0 {
                first = tq.elapsed();
            }
        }
        println!(
            "{name:>15}: {audits} audits in {:>8.1?}  (first audit {:>8.1?}, footprint {:.2} MiB)",
            t0.elapsed(),
            first,
            rm.stats().total_bytes as f64 / (1024.0 * 1024.0),
        );
    }
    println!(
        "\nthe resident archive pays one huge first-touch load per column and \
         keeps everything in memory;\nthe paged archive touches only the pages \
         the audited rows live on."
    );
}
