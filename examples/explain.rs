//! EXPLAIN ANALYZE walkthrough: run a cold 4-worker scan over a
//! compressed page-loadable table, print the flight recorder's report —
//! the static plan annotated with per-chain actuals, the span tree, and
//! the page-provenance summary — then re-run warm and check that plan and
//! actuals stay consistent with the registry. Also writes the span tree as
//! a Chrome `trace_event` file loadable in `about://tracing`.
//!
//! Run with: `cargo run --release --example explain`

use page_as_you_go::core::{
    DataType, LoadPolicy, PageConfig, ScanOptions, ScanPath, Value, ValuePredicate,
};
use page_as_you_go::obs::SpanKind;
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::{ColumnSpec, PartitionSpec, Projection, Query, Schema, Table};
use std::sync::Arc;

fn main() {
    let schema = Schema::new(vec![
        ColumnSpec::indexed("id", DataType::Integer),
        ColumnSpec::new("region", DataType::Varchar),
        ColumnSpec::new("amount", DataType::Decimal),
    ])
    .unwrap();
    let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
    let mut table = Table::create(
        pool,
        PageConfig::tiny(),
        schema,
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    for i in 0..4_000i64 {
        table
            .insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("region-{}", i % 17)),
                Value::Decimal(i as i128 * 100),
            ])
            .unwrap();
    }
    table.delta_merge_all().unwrap();
    table.set_scan_options(ScanOptions::with_workers(4));

    // ---- Cold run: a parallel scan over an unindexed column --------------
    let scan = Query::filtered(
        "region",
        ValuePredicate::Eq(Value::Varchar("region-3".into())),
        Projection::Count,
    );
    let (result, cold) = table.explain_analyze(&scan).unwrap();
    println!("=== cold 4-worker scan (COUNT = {}) ===", result.count());
    println!("{}", cold.to_text());
    cold.check_consistency().expect("cold run reconciles with the registry delta");
    assert!(cold.profile.cold_loads > 0, "first run must load pages");
    assert!(
        cold.spans.iter().any(|s| s.kind == SpanKind::ScanPartition),
        "parallel scan records partition spans"
    );
    if table.pool().io_stage_active() {
        assert!(cold.batches_initiated > 0, "cold staged scan issues I/O batches");
    }

    // ---- Warm re-run: same plan, no cold loads ---------------------------
    let (result2, warm) = table.explain_analyze(&scan).unwrap();
    assert_eq!(result.count(), result2.count(), "warm run returns the same answer");
    warm.check_consistency().expect("warm run reconciles with the registry delta");
    assert_eq!(warm.profile.cold_loads, 0, "warm run re-hits resident pages");
    assert!(warm.profile.warm_hits > 0);
    println!("=== warm re-run ===");
    println!(
        "cold={} warm={} batches_initiated={} wall={}ns",
        warm.profile.cold_loads,
        warm.profile.warm_hits,
        warm.batches_initiated,
        warm.profile.elapsed_ns
    );

    // ---- Compressed-domain point probe -----------------------------------
    let point =
        Query::filtered("id", ValuePredicate::Eq(Value::Integer(1234)), Projection::RowIds);
    let (_, probe) = table.explain_analyze(&point).unwrap();
    assert_eq!(probe.partitions[0].path, ScanPath::CompressedDomain, "PEF point probe");
    assert!(
        probe.spans.iter().any(|s| s.kind == SpanKind::ChunkDispatch && s.detail == 1),
        "dispatch decision recorded as a span"
    );
    probe.check_consistency().expect("probe reconciles with the registry delta");
    println!("\n=== compressed-domain point probe ===");
    println!("{}", probe.to_text());

    // ---- Exporters --------------------------------------------------------
    println!("=== JSON (cold run) ===");
    println!("{}\n", cold.to_json());
    let trace = cold.to_chrome_trace();
    assert!(trace.contains("\"ph\": \"X\""));
    let out = std::env::temp_dir().join("payg_explain_trace.json");
    std::fs::write(&out, &trace).unwrap();
    println!("chrome trace written to {} ({} bytes)", out.display(), trace.len());
    println!("open about://tracing (or ui.perfetto.dev) and load it.");
}
