//! Observability dump: drive a small page-loadable table under memory
//! pressure, then print everything the `payg-obs` layer collected — the
//! full registry snapshot as Prometheus exposition text and as JSON, a
//! per-query [`ScanProfile`], and the traced page-lifecycle events.
//! Finishes with a smoke check that the *disabled* tracing path stays
//! cheap (it is one relaxed load and a branch per emit).
//!
//! Run with: `cargo run --release --example obs_dump`

use page_as_you_go::core::{LoadPolicy, PageConfig};
use page_as_you_go::obs::{EventKind, ObsSnapshot, ScanProfile};
use page_as_you_go::resman::{PoolLimits, ResourceManager};
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::{PartitionSpec, Table};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::Arc;
use std::time::Instant;

fn main() {
    // A tightly capped paged pool so the proactive unloader actually runs:
    // crossing 192 KiB evicts LRU pages down to 96 KiB.
    let resman = ResourceManager::with_paged_limits(PoolLimits::new(96 << 10, 192 << 10));
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());

    let profile = TableProfile::erp(20_000, 13, 3);
    let table = Table::create(
        pool,
        PageConfig::default(),
        profile.schema(false).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    table.insert_all(generate_rows(&profile)).unwrap();
    table.delta_merge_all().unwrap();
    table.unload_all();

    // Trace the page lifecycle while a query stream churns the pool.
    let tracer = table.registry().tracer().clone();
    tracer.enable();
    let mut qg = QueryGen::new(profile, 11);
    let mut last_profile = ScanProfile::default();
    for i in 0..300u32 {
        // Mostly point queries, with a predicate count every 10th to
        // exercise the scan kernels (chunks, dispatch width, matches).
        let q = if i % 10 == 0 { qg.q_num_count() } else { qg.q_pk_star() };
        let (_, p) = table.execute_profiled(&q).unwrap();
        last_profile = p;
    }
    resman.quiesce();
    tracer.disable();

    // ---- Per-scan profile (the last query of the stream) ----------------
    println!("=== ScanProfile (last query) ===");
    println!("{}\n", last_profile.to_json());

    // ---- Traced page-lifecycle events -----------------------------------
    let events = tracer.drain();
    let count_of = |k: EventKind| events.iter().filter(|e| e.kind == k).count();
    println!("=== Page-lifecycle events ({} total, {} dropped) ===", events.len(), tracer.dropped());
    for kind in [
        EventKind::PageLoaded,
        EventKind::PagePinned,
        EventKind::PageEvicted,
        EventKind::SingleFlightWait,
        EventKind::ProactiveSweep,
    ] {
        println!("{kind:>16?}: {}", count_of(kind));
    }
    println!("first events in global order:");
    for e in events.iter().take(5) {
        println!(
            "  seq={:<4} {:?} chain={} page={} bytes={}",
            e.seq, e.kind, e.chain, e.page_no, e.bytes
        );
    }
    println!();

    // ---- The whole system's state, two exporters -------------------------
    let snap = ObsSnapshot::collect(table.registry());
    println!("=== Prometheus exposition text ===");
    println!("{}", snap.to_prometheus_text());
    println!("=== JSON ===");
    println!("{}\n", snap.to_json());

    // ---- Consistency checks over the dumped numbers ----------------------
    let hits = snap.counter("pool_shard_hits");
    let misses = snap.counter("pool_shard_misses");
    let loads = snap.counter("pool_loads");
    assert!(loads > 0 && hits > 0, "the stream both loaded and re-hit pages");
    assert_eq!(loads, misses, "no failed loads: every miss became a load");
    assert!(
        count_of(EventKind::PageLoaded) as u64 == loads,
        "one PageLoaded event per counted load"
    );
    assert!(
        snap.gauge("resman_paged_bytes") <= (192 << 10),
        "quiesced pool is back under the upper limit"
    );
    // Pin latency splits by temperature: warm hits record `pool_pin_ns`,
    // cold pins (loads and single-flight waits) record `pool_load_ns` —
    // together exactly one sample per successful pin.
    let pin_ns = snap.histogram("pool_pin_ns");
    let load_ns = snap.histogram("pool_load_ns");
    assert_eq!(pin_ns.count(), hits, "one warm-latency sample per hit");
    assert_eq!(
        pin_ns.count() + load_ns.count(),
        hits + misses,
        "one latency sample per pin across the warm/cold split"
    );
    println!(
        "consistency: hits={hits} misses={misses} loads={loads} \
         hit-rate={:.1}% pin p50={}ns p99={}ns",
        100.0 * hits as f64 / (hits + misses) as f64,
        pin_ns.percentile(0.50),
        pin_ns.percentile(0.99),
    );

    // ---- Disabled-path overhead smoke ------------------------------------
    // The tracer is off again: an emit must be a relaxed load + branch. The
    // bound is deliberately loose (shared CI machines), but catches the
    // disabled path growing a lock or an allocation.
    assert!(!tracer.enabled());
    const EMITS: u64 = 10_000_000;
    let started = Instant::now();
    for i in 0..EMITS {
        tracer.emit(EventKind::PagePinned, 1, i, 0);
    }
    let per_emit = started.elapsed().as_nanos() as f64 / EMITS as f64;
    println!("disabled emit: {per_emit:.2} ns avg over {EMITS} calls");
    assert!(per_emit < 100.0, "disabled tracing must stay branch-cheap, got {per_emit:.2} ns");
}
