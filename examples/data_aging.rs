//! Data aging (paper §4): hot orders in fully-resident columns, cold orders
//! in page-loadable columns — same table, same SQL, different storage.
//!
//! Run with: `cargo run --release --example data_aging`

use page_as_you_go::core::{DataType, PageConfig, Value, ValuePredicate};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::aging::AgingPolicy;
use page_as_you_go::table::{
    ColumnSpec, PartitionRange, PartitionSpec, Projection, Query, Schema, Table,
};
use std::sync::Arc;

fn main() {
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());

    // An aging-aware table: the artificial temperature column `closed_on`
    // is the partition column. Orders still open carry closed_on = 9999-12
    // (a date far in the future keeps them hot).
    let schema = Schema::new(vec![
        ColumnSpec::new("order_id", DataType::Integer),
        ColumnSpec::new("customer", DataType::Varchar),
        ColumnSpec::new("amount", DataType::Decimal),
        ColumnSpec::new("closed_on", DataType::Integer), // yyyymm
    ])
    .unwrap()
    .with_primary_key("order_id")
    .unwrap()
    .with_partition_column("closed_on")
    .unwrap();

    // Hot partition: default (fully resident) columns. Cold partition:
    // PAGE LOADABLE columns from the very beginning (§4.2).
    let mut table = Table::create(
        pool,
        PageConfig::default(),
        schema,
        vec![
            PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(202401))),
            PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(202401))),
        ],
    )
    .unwrap();

    const OPEN: i64 = 999912;
    for i in 0..40_000i64 {
        table
            .insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("cust-{:04}", i % 2_500)),
                Value::Decimal((i as i128 * 37) % 500_000),
                Value::Integer(OPEN),
            ])
            .unwrap();
    }
    table.delta_merge_all().unwrap();
    println!(
        "inserted 40k open orders -> hot {} rows, cold {} rows",
        table.partitions()[0].visible_rows(),
        table.partitions()[1].visible_rows()
    );

    // The application closes old orders: an ordinary UPDATE on the
    // temperature column. Because it is the partition column, the rows move
    // into the cold partition's delta — no downtime, nothing blocked.
    let aging = AgingPolicy { temperature_column: "closed_on".into(), merge_after: true };
    let closed = aging
        .close_rows(
            &mut table,
            "order_id",
            &ValuePredicate::Between(Value::Integer(0), Value::Integer(29_999)),
            &Value::Integer(202311),
        )
        .unwrap();
    let stats = aging.run(&mut table).unwrap();
    println!(
        "closed {closed} orders (moved {} more during the run) -> hot {} rows, cold {} rows",
        stats.rows_moved,
        table.partitions()[0].visible_rows(),
        table.partitions()[1].visible_rows()
    );

    // Cold data is still plain SQL — same table, same operators.
    table.unload_all();
    let audit = Query::filtered(
        "order_id",
        ValuePredicate::Eq(Value::Integer(12_345)),
        Projection::All,
    );
    println!("audit of an aged order: {:?}", table.execute(&audit).unwrap());
    let after_audit = resman.stats();
    println!(
        "footprint after the audit: {} bytes ({} paged resources) — \
         a resident cold store would have loaded whole columns",
        after_audit.total_bytes, after_audit.paged_count
    );

    // An analysis across both temperatures still works.
    let q = Query::filtered(
        "customer",
        ValuePredicate::Eq(Value::Varchar("cust-0042".into())),
        Projection::Count,
    );
    match table.execute(&q).unwrap() {
        page_as_you_go::table::QueryResult::Count(n) => {
            println!("orders of cust-0042 across hot+cold: {n}")
        }
        other => panic!("{other:?}"),
    }

    println!("\n{}", table.table_stats());
}
