//! Concurrent serving across an online delta merge: reader threads at a
//! fixed QPS keep querying while the merge freezes, side-builds, and
//! publishes — the paper's "queries keep running during the merge" claim
//! (§2, §8) turned into a measured latency series.
//!
//! Two phases with the same reader workload: **quiesced** (no merge) and
//! **merge** (a writer thread keeps ingesting and merging). The report is
//! p50/p99 per phase plus the p99 degradation ratio, written to
//! `BENCH_concurrent_serve.json` at the workspace root. Targets enforced on
//! a full run: p99 during merge <= 3x quiesced and **zero failed reads** —
//! admission-controlled sessions must serve exact answers throughout. The
//! latency target needs real parallelism to mean anything: on a single
//! hardware thread the merge's side build and the readers time-share one
//! core and the scheduler, not the version chain, sets the p99 — so the
//! ratio is reported but only gated when the box has >= 2 cpus.
//!
//! Run with: `cargo run --release --example concurrent_serve`
//! `PAYG_SMOKE=1` runs reduced sizes and writes the JSON under `target/`.

use page_as_you_go::core::{DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::{
    ColumnSpec, PartitionSpec, Projection, Query, QueryResult, Schema, Table,
};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const READERS: usize = 4;

struct Params {
    smoke: bool,
    rows: i64,
    queries_per_reader: usize,
    qps_per_reader: u64,
    ingest_batch: i64,
}

impl Params {
    fn from_env() -> Self {
        let smoke = std::env::var_os("PAYG_SMOKE").is_some_and(|v| v != "0");
        if smoke {
            Params {
                smoke,
                rows: 6_000,
                queries_per_reader: 120,
                qps_per_reader: 600,
                ingest_batch: 400,
            }
        } else {
            Params {
                smoke,
                rows: 60_000,
                queries_per_reader: 400,
                qps_per_reader: 800,
                ingest_batch: 2_000,
            }
        }
    }
}

fn status_of(i: i64) -> &'static str {
    if i % 3 == 0 {
        "open"
    } else {
        "closed"
    }
}

fn order(i: i64, status: &str) -> Vec<Value> {
    vec![
        Value::Integer(i),
        Value::Varchar(status.into()),
        Value::Integer((i * 37) % 10_000),
    ]
}

/// The fixed reader mix; answers are invariant under the writer's ingest
/// (new rows carry ids >= 1e9 and status "ingested", matching no filter).
fn workload(rows: i64) -> Vec<(Query, QueryResult)> {
    let open = (0..rows).filter(|&i| status_of(i) == "open").count() as u64;
    let sum: i64 = (100..1_000).map(|i| (i * 37) % 10_000).sum();
    vec![
        (
            Query::filtered(
                "status",
                ValuePredicate::Eq(Value::Varchar("open".into())),
                Projection::Count,
            ),
            QueryResult::Count(open),
        ),
        (
            Query::filtered(
                "id",
                ValuePredicate::Between(Value::Integer(100), Value::Integer(999)),
                Projection::Sum("amount".into()),
            ),
            QueryResult::Sum(Value::Integer(sum)),
        ),
        (
            Query::filtered(
                "id",
                ValuePredicate::Eq(Value::Integer(1_234)),
                Projection::All,
            ),
            QueryResult::Rows(vec![order(1_234, status_of(1_234))]),
        ),
    ]
}

/// One phase: `READERS` threads each paced at the target QPS, executing the
/// fixed mix through fresh sessions. Returns pooled per-query latencies;
/// wrong answers panic, failed reads count toward the zero-target.
fn run_phase(
    table: &Table,
    params: &Params,
    expected: &[(Query, QueryResult)],
    failed_reads: &AtomicU64,
) -> Vec<u64> {
    let period = Duration::from_nanos(1_000_000_000 / params.qps_per_reader);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..READERS)
            .map(|reader| {
                s.spawn(move || {
                    let mut lat = Vec::with_capacity(params.queries_per_reader);
                    let mut next = Instant::now();
                    for round in 0..params.queries_per_reader {
                        let now = Instant::now();
                        if next > now {
                            std::thread::sleep(next - now);
                        }
                        next += period;
                        let (q, want) = &expected[round % expected.len()];
                        let t0 = Instant::now();
                        match table.execute(q) {
                            Ok(got) => assert_eq!(
                                &got, want,
                                "reader {reader} round {round}: wrong answer during serve"
                            ),
                            Err(_) => {
                                failed_reads.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        lat.push(t0.elapsed().as_nanos() as u64);
                    }
                    lat
                })
            })
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("reader thread")).collect()
    })
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    sorted[((sorted.len() - 1) as f64 * p) as usize]
}

fn main() {
    let params = Params::from_env();
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let schema = Schema::new(vec![
        ColumnSpec::new("id", DataType::Integer),
        ColumnSpec::new("status", DataType::Varchar),
        ColumnSpec::new("amount", DataType::Integer),
    ])
    .unwrap()
    .with_primary_key("id")
    .unwrap();
    let table = Table::create(
        pool,
        PageConfig::tiny(),
        schema,
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    for i in 0..params.rows {
        table.insert(order(i, status_of(i))).unwrap();
    }
    table.delta_merge_all().unwrap();
    let expected = workload(params.rows);
    for (q, want) in &expected {
        assert_eq!(&table.execute(q).unwrap(), want, "warmup answer");
    }

    println!(
        "=== robustness/concurrent_serve{} ===",
        if params.smoke { " (smoke)" } else { "" }
    );
    println!(
        "rows {}  readers {READERS}  {} qps/reader  {} queries/reader",
        params.rows, params.qps_per_reader, params.queries_per_reader
    );

    let failed_reads = AtomicU64::new(0);

    // Phase 1: quiesced baseline — no writer, no merges.
    let mut quiesced = run_phase(&table, &params, &expected, &failed_reads);
    quiesced.sort_unstable();

    // Phase 2: the same reader load across continuous online merges. The
    // writer ingests (ids >= 1e9, outside every filter) and merges until
    // the readers finish their fixed budget.
    let stop = AtomicBool::new(false);
    let merges = AtomicU64::new(0);
    let ingested = AtomicU64::new(0);
    let mut merge_lat = std::thread::scope(|s| {
        let writer = s.spawn(|| {
            let mut next_id: i64 = 1_000_000_000;
            while !stop.load(Ordering::Relaxed) {
                for _ in 0..params.ingest_batch {
                    table.insert(order(next_id, "ingested")).unwrap();
                    next_id += 1;
                    ingested.fetch_add(1, Ordering::Relaxed);
                }
                table.delta_merge_all().expect("online merge");
                merges.fetch_add(1, Ordering::Relaxed);
            }
        });
        let lat = run_phase(&table, &params, &expected, &failed_reads);
        stop.store(true, Ordering::Relaxed);
        writer.join().expect("writer thread");
        lat
    });
    merge_lat.sort_unstable();

    let q_p50 = percentile(&quiesced, 0.5);
    let q_p99 = percentile(&quiesced, 0.99);
    let m_p50 = percentile(&merge_lat, 0.5);
    let m_p99 = percentile(&merge_lat, 0.99);
    let ratio = m_p99 as f64 / q_p99.max(1) as f64;
    let failed = failed_reads.load(Ordering::Relaxed);
    let merges_done = merges.load(Ordering::Relaxed);
    let target = 3.0;
    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    // Gate the degradation ratio only when merge and readers can actually
    // run in parallel; zero failed reads and live merges are gated always.
    let ratio_gated = cpus >= 2;
    let met = failed == 0 && merges_done > 0 && (!ratio_gated || ratio <= target);

    println!(
        "quiesced: p50 {:.1}us  p99 {:.1}us   during merge: p50 {:.1}us  p99 {:.1}us",
        q_p50 as f64 / 1e3,
        q_p99 as f64 / 1e3,
        m_p50 as f64 / 1e3,
        m_p99 as f64 / 1e3
    );
    println!(
        "p99 degradation {ratio:.2}x (target <= {target}x, {})   merges completed \
         {merges_done}  rows ingested {}  failed reads {failed} (target 0)",
        if ratio_gated { "gated" } else { "reported only: single cpu" },
        ingested.load(Ordering::Relaxed)
    );
    let sessions = table.registry().gauge(payg_obs::names::TABLE_SESSIONS_ACTIVE).get();
    println!("sessions active after quiesce: {sessions} (all released)");

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"bench\": \"robustness/concurrent_serve\",");
    let _ = writeln!(json, "  \"rows\": {},", params.rows);
    let _ = writeln!(json, "  \"readers\": {READERS},");
    let _ = writeln!(json, "  \"qps_per_reader\": {},", params.qps_per_reader);
    let _ = writeln!(json, "  \"queries_per_reader\": {},", params.queries_per_reader);
    let _ = writeln!(json, "  \"quiesced\": {{");
    let _ = writeln!(json, "    \"queries\": {},", quiesced.len());
    let _ = writeln!(json, "    \"p50_ns\": {q_p50},");
    let _ = writeln!(json, "    \"p99_ns\": {q_p99}");
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"during_merge\": {{");
    let _ = writeln!(json, "    \"queries\": {},", merge_lat.len());
    let _ = writeln!(json, "    \"p50_ns\": {m_p50},");
    let _ = writeln!(json, "    \"p99_ns\": {m_p99},");
    let _ = writeln!(json, "    \"merges_completed\": {merges_done},");
    let _ = writeln!(json, "    \"rows_ingested\": {}", ingested.load(Ordering::Relaxed));
    let _ = writeln!(json, "  }},");
    let _ = writeln!(json, "  \"p99_ratio\": {ratio:.3},");
    let _ = writeln!(json, "  \"target_ratio\": {target},");
    let _ = writeln!(json, "  \"cpus\": {cpus},");
    let _ = writeln!(json, "  \"ratio_gated\": {ratio_gated},");
    let _ = writeln!(json, "  \"failed_reads\": {failed},");
    let _ = writeln!(json, "  \"met\": {met},");
    let snap = payg_obs::ObsSnapshot::collect(table.registry());
    let _ = writeln!(json, "  \"obs\": {}", payg_bench::obs::obs_json(&snap, None, "  "));
    json.push_str("}\n");

    // Smoke runs write under target/ so checked-in numbers are preserved.
    let path = if params.smoke {
        let dir = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("target");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("BENCH_concurrent_serve_smoke.json")
    } else {
        std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("BENCH_concurrent_serve.json")
    };
    std::fs::write(&path, &json).unwrap();
    println!("wrote {}", path.display());

    if params.smoke {
        // Smoke acceptance: the latency series exists, merges actually ran
        // concurrently with the readers, and no read failed. The ratio
        // itself is too noisy at smoke sizes to gate on.
        assert!(merges_done > 0, "smoke run saw no online merge");
        assert_eq!(failed, 0, "smoke run had failed reads");
        assert!(q_p99 > 0 && m_p99 > 0, "smoke run produced no latency series");
        println!("smoke: concurrent-serve series produced ({ratio:.2}x p99 degradation)");
        return;
    }
    if !met {
        eprintln!(
            "SERVE TARGET MISSED: p99 ratio {ratio:.2}x (target <= {target}x, \
             gated {ratio_gated}), merges {merges_done} (target > 0), \
             failed reads {failed} (target 0)"
        );
        std::process::exit(1);
    }
}
