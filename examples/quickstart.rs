//! Quickstart: create a table with page-loadable columns, query it, and
//! watch the memory footprint stay proportional to what you touch.
//!
//! Run with: `cargo run --release --example quickstart`

use page_as_you_go::core::{DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::{
    ColumnSpec, PartitionSpec, Projection, Query, Schema, Table,
};
use std::sync::Arc;

fn main() {
    // 1. Storage: a page store + buffer pool + resource manager. Every page
    //    a query pins is registered with the resource manager; its stats are
    //    the engine's memory footprint.
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());

    // 2. Schema: orders with an indexed primary key. The whole partition is
    //    declared PAGE LOADABLE — columns load piecewise, never whole.
    let schema = Schema::new(vec![
        ColumnSpec::new("order_id", DataType::Integer),
        ColumnSpec::new("customer", DataType::Varchar),
        ColumnSpec::new("amount", DataType::Decimal),
    ])
    .unwrap()
    .with_primary_key("order_id")
    .unwrap();
    let table = Table::create(
        pool,
        PageConfig::default(),
        schema,
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();

    // 3. Load data. Inserts land in the write-optimized delta fragment;
    //    the delta merge builds the read-optimized main fragment: sorted
    //    dictionary, n-bit packed data vector, inverted index — persisted
    //    as page chains.
    for i in 0..50_000i64 {
        table
            .insert(vec![
                Value::Integer(i),
                Value::Varchar(format!("customer-{:05}", i % 9_000)),
                Value::Decimal(i as i128 * 17 % 100_000),
            ])
            .unwrap();
    }
    table.delta_merge_all().unwrap();
    table.unload_all(); // start cold
    println!("loaded 50k orders; cold footprint: {} bytes", resman.stats().total_bytes);

    // 4. A point query touches a handful of pages, not whole columns.
    let q = Query::filtered(
        "order_id",
        ValuePredicate::Eq(Value::Integer(41_417)),
        Projection::All,
    );
    let rows = match table.execute(&q).unwrap() {
        page_as_you_go::table::QueryResult::Rows(r) => r,
        other => panic!("{other:?}"),
    };
    println!("point query -> {:?}", rows[0]);
    let after_point = resman.stats();
    println!(
        "footprint after one point read: {} bytes across {} paged resources",
        after_point.total_bytes, after_point.paged_count
    );

    // 5. An aggregate over a key range loads only the overlapping pages.
    let q = Query::filtered(
        "order_id",
        ValuePredicate::Between(Value::Integer(10_000), Value::Integer(10_499)),
        Projection::Sum("amount".into()),
    );
    println!("range SUM -> {:?}", table.execute(&q).unwrap());
    println!(
        "footprint after the range scan: {} bytes",
        resman.stats().total_bytes
    );

    // 6. Under memory pressure the resource manager evicts pages piecewise;
    //    queries keep working, reloading on demand.
    let freed = resman.handle_low_memory(usize::MAX / 2);
    println!("low-memory sweep evicted {freed} bytes");
    println!("query still works: {:?}", table.execute(&q).unwrap());
}
