//! **Page As You Go** — piecewise columnar access, after Sherkat et al.,
//! SIGMOD 2016.
//!
//! An in-memory, dictionary-encoded column store whose columns can be
//! declared **page loadable**: their encoded data vector, order-preserving
//! dictionary and inverted index are persisted as chains of disk-resident
//! pages and loaded/evicted *piecewise* by a resource manager, instead of
//! all-or-nothing whole-column loads. Hot data keeps full in-memory speed;
//! cold data's memory footprint tracks only what queries actually touch.
//!
//! This crate is a facade re-exporting the workspace's layers:
//!
//! * [`encoding`] — n-bit packing, 64-value chunks, SWAR scans, prefix
//!   blocks, order-preserving keys
//! * [`obs`] — metric registry, page-lifecycle event tracing, per-scan
//!   profiles, Prometheus/JSON exporters
//! * [`resman`] — dispositions, weighted LRU, paged-pool limits,
//!   reactive/proactive unload
//! * [`storage`] — page chains, stores, the buffer pool with RAII pins
//! * [`core`] — the three paged structures + resident baselines + columns
//! * [`table`] — fragments, delta merge, partitions, aging, query executor
//! * [`workload`] — the paper's ERP-like dataset and query generators
//!
//! # Example
//!
//! ```
//! use page_as_you_go::core::{DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
//! use page_as_you_go::resman::ResourceManager;
//! use page_as_you_go::storage::{BufferPool, MemStore};
//! use page_as_you_go::table::{
//!     ColumnSpec, PartitionSpec, Projection, Query, QueryResult, Schema, Table,
//! };
//! use std::sync::Arc;
//!
//! // Storage + accounting.
//! let resman = ResourceManager::new();
//! let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
//!
//! // A PAGE LOADABLE table (the paper's cold-store configuration).
//! let schema = Schema::new(vec![
//!     ColumnSpec::new("id", DataType::Integer),
//!     ColumnSpec::new("customer", DataType::Varchar),
//! ])?
//! .with_primary_key("id")?;
//! let mut orders = Table::create(
//!     pool,
//!     PageConfig::default(),
//!     schema,
//!     vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
//! )?;
//!
//! // Inserts land in the delta; the merge builds the paged main fragment.
//! for i in 0..10_000i64 {
//!     orders.insert(vec![
//!         Value::Integer(i),
//!         Value::Varchar(format!("customer-{:04}", i % 500)),
//!     ])?;
//! }
//! orders.delta_merge_all()?;
//! orders.unload_all(); // start cold
//!
//! // A point query pins a handful of pages — not whole columns.
//! let q = Query::filtered(
//!     "id",
//!     ValuePredicate::Eq(Value::Integer(4_217)),
//!     Projection::All,
//! );
//! let QueryResult::Rows(rows) = orders.execute(&q)? else { unreachable!() };
//! assert_eq!(rows[0][1], Value::Varchar("customer-0217".into()));
//! assert!(resman.stats().paged_count > 0, "pages were loaded piecewise");
//!
//! // Under pressure, pages are evicted piecewise; answers never change.
//! resman.handle_low_memory(usize::MAX / 2);
//! let QueryResult::Rows(rows) = orders.execute(&q)? else { unreachable!() };
//! assert_eq!(rows[0][0], Value::Integer(4_217));
//! # Ok::<(), page_as_you_go::table::TableError>(())
//! ```
//!
//! See `DESIGN.md` for the system inventory and `EXPERIMENTS.md` for the
//! paper-vs-measured evaluation.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub use payg_core as core;
pub use payg_encoding as encoding;
pub use payg_obs as obs;
pub use payg_resman as resman;
pub use payg_storage as storage;
pub use payg_table as table;
pub use payg_workload as workload;
