//! End-to-end integration: the full stack (storage → resman → core → table)
//! behaves identically under both load policies on a realistic workload.

use page_as_you_go::core::{LoadPolicy, PageConfig};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, FileStore, MemStore};
use page_as_you_go::table::{PartitionSpec, Query, Table};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::Arc;

fn build(profile: &TableProfile, policy: LoadPolicy) -> (Table, ResourceManager) {
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(true).unwrap(),
        vec![PartitionSpec::single(policy)],
    )
    .unwrap();
    t.insert_all(generate_rows(profile)).unwrap();
    t.delta_merge_all().unwrap();
    (t, resman)
}

#[test]
fn full_workload_equivalence_across_policies() {
    let profile = TableProfile::erp(3_000, 13, 11);
    let (resident, _) = build(&profile, LoadPolicy::FullyResident);
    let (paged, _) = build(&profile, LoadPolicy::PageLoadable);
    let mut qg = QueryGen::new(profile, 5);
    // A mixed stream of every Table 2 query shape.
    for i in 0..120 {
        let q = match i % 8 {
            0 => qg.q_pk_num(),
            1 => qg.q_pk_str(),
            2 => qg.q_pk_star(),
            3 => qg.q_pk_rid(),
            4 => qg.q_num_count(),
            5 => qg.q_str_count(),
            6 => qg.q_range_star(0.01),
            _ => qg.q_range_sum(0.005),
        };
        let a = resident.table_result(&q);
        let b = paged.table_result(&q);
        assert_eq!(a, b, "query {i} diverged: {q:?}");
    }
}

trait Exec {
    fn table_result(&self, q: &Query) -> String;
}

impl Exec for Table {
    fn table_result(&self, q: &Query) -> String {
        format!("{:?}", self.execute(q).unwrap())
    }
}

#[test]
fn eviction_during_workload_is_transparent() {
    let profile = TableProfile::erp(2_000, 9, 3);
    let (paged, resman) = build(&profile, LoadPolicy::PageLoadable);
    let mut qg = QueryGen::new(profile, 9);
    let mut expected = Vec::new();
    let queries: Vec<Query> = (0..40).map(|_| qg.q_pk_star()).collect();
    for q in &queries {
        expected.push(format!("{:?}", paged.execute(q).unwrap()));
    }
    // Evict everything, replay: answers must be identical.
    resman.set_paged_limits(Some(page_as_you_go::resman::PoolLimits::new(0, usize::MAX)));
    resman.reactive_unload();
    assert_eq!(resman.stats().paged_bytes, 0);
    for (q, want) in queries.iter().zip(&expected) {
        assert_eq!(&format!("{:?}", paged.execute(q).unwrap()), want);
    }
}

#[test]
fn file_backed_tables_survive_pool_clears() {
    let dir = std::env::temp_dir().join(format!("payg-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let profile = TableProfile::erp(1_500, 9, 21);
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(FileStore::open(&dir).unwrap()), resman.clone());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(false).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    t.insert_all(generate_rows(&profile)).unwrap();
    t.delta_merge_all().unwrap();
    let mut qg = QueryGen::new(profile, 2);
    let q = qg.q_pk_star();
    let before = format!("{:?}", t.execute(&q).unwrap());
    // Cold restart: every page must come back from disk.
    t.unload_all();
    assert_eq!(resman.stats().total_bytes, 0);
    assert_eq!(format!("{:?}", t.execute(&q).unwrap()), before);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn counts_match_brute_force() {
    let profile = TableProfile::erp(2_500, 11, 17);
    let rows = generate_rows(&profile);
    let (paged, _) = build(&profile, LoadPolicy::PageLoadable);
    let mut qg = QueryGen::new(profile.clone(), 3);
    for _ in 0..25 {
        let q = qg.q_str_count();
        let (col_name, pred) = q.filter.clone().unwrap();
        let col = profile.columns.iter().position(|c| c.name == col_name).unwrap();
        let expect = rows.iter().filter(|r| pred.matches(&r[col])).count() as u64;
        match paged.execute(&q).unwrap() {
            page_as_you_go::table::QueryResult::Count(n) => assert_eq!(n, expect),
            other => panic!("{other:?}"),
        }
    }
}
