//! The complete data-aging lifecycle (paper §4) as an integration test:
//! inserts → merges → closes → aging runs → boundary shifts → audits.

use page_as_you_go::core::{DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::aging::AgingPolicy;
use page_as_you_go::table::{
    ColumnSpec, PartitionId, PartitionRange, PartitionSpec, Projection, Query, Schema, Table,
};
use std::sync::Arc;

const OPEN: i64 = 99_991_231;

fn orders_table() -> (Table, ResourceManager) {
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let schema = Schema::new(vec![
        ColumnSpec::new("id", DataType::Integer),
        ColumnSpec::new("status", DataType::Varchar),
        ColumnSpec::new("amount", DataType::Decimal),
        ColumnSpec::new("closed_on", DataType::Integer),
    ])
    .unwrap()
    .with_primary_key("id")
    .unwrap()
    .with_partition_column("closed_on")
    .unwrap();
    let table = Table::create(
        pool,
        PageConfig::tiny(),
        schema,
        vec![
            PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(20_240_101))),
            PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(20_240_101))),
        ],
    )
    .unwrap();
    (table, resman)
}

fn count(t: &Table, q: &Query) -> u64 {
    match t.execute(q).unwrap() {
        page_as_you_go::table::QueryResult::Count(n) => n,
        other => panic!("{other:?}"),
    }
}

#[test]
fn lifecycle_preserves_every_row_and_moves_storage() {
    let (mut t, _resman) = orders_table();
    let policy = AgingPolicy { temperature_column: "closed_on".into(), merge_after: true };
    // Month 1: 600 open orders.
    for i in 0..600i64 {
        t.insert(vec![
            Value::Integer(i),
            Value::Varchar("open".into()),
            Value::Decimal(i as i128 * 99),
            Value::Integer(OPEN),
        ])
        .unwrap();
    }
    t.delta_merge_all().unwrap();
    assert_eq!(t.partitions()[0].visible_rows(), 600);

    // Business closes orders in waves; each wave is ordinary DML.
    for (wave, (lo, hi, date)) in
        [(0i64, 199i64, 20_230_301i64), (200, 399, 20_230_902), (400, 499, 20_231_115)]
            .iter()
            .enumerate()
    {
        let moved = policy
            .close_rows(
                &mut t,
                "id",
                &ValuePredicate::Between(Value::Integer(*lo), Value::Integer(*hi)),
                &Value::Integer(*date),
            )
            .unwrap();
        assert_eq!(moved, (*hi - *lo + 1) as u64, "wave {wave}");
        // Nothing lost mid-flight.
        assert_eq!(count(&t, &Query::full(Projection::Count)), 600);
    }
    // Orders 500..599 stay open/hot.
    policy.run(&mut t).unwrap();
    assert_eq!(t.partitions()[0].visible_rows(), 100);
    assert_eq!(t.partitions()[1].visible_rows(), 500);
    // Cold main is page loadable; hot main resident.
    assert_eq!(t.partitions()[1].main().column(0).policy(), LoadPolicy::PageLoadable);
    assert_eq!(t.partitions()[0].main().column(0).policy(), LoadPolicy::FullyResident);

    // Audits span both temperatures transparently.
    let q = Query::filtered(
        "status",
        ValuePredicate::Eq(Value::Varchar("open".into())),
        Projection::Count,
    );
    assert_eq!(count(&t, &q), 600, "status was never updated, rows just moved");
    let q = Query::filtered(
        "id",
        ValuePredicate::Eq(Value::Integer(123)),
        Projection::Columns(vec!["closed_on".into()]),
    );
    assert_eq!(
        t.execute(&q).unwrap(),
        page_as_you_go::table::QueryResult::Rows(vec![vec![Value::Integer(20_230_301)]])
    );

    // Deep-cold split: add a partition for pre-September closures and shift
    // the cold boundary — relocation is an aging run, no data loss.
    t.set_partition_range(
        PartitionId(1),
        PartitionRange::Between(Value::Integer(20_230_901), Value::Integer(20_240_101)),
    );
    t.add_partition(PartitionSpec::cold(
        "deep-cold",
        PartitionRange::Below(Value::Integer(20_230_901)),
    ))
    .unwrap();
    let stats = policy.run(&mut t).unwrap();
    assert_eq!(stats.rows_moved, 200, "march closures relocate");
    assert_eq!(t.partitions()[2].visible_rows(), 200);
    assert_eq!(count(&t, &Query::full(Projection::Count)), 600);

    // A cold restart changes nothing observable.
    t.unload_all();
    assert_eq!(count(&t, &Query::full(Projection::Count)), 600);
    assert_eq!(
        t.execute(&q).unwrap(),
        page_as_you_go::table::QueryResult::Rows(vec![vec![Value::Integer(20_230_301)]])
    );
}

#[test]
fn aging_footprint_shifts_from_resident_to_paged() {
    let (mut t, resman) = orders_table();
    for i in 0..2_000i64 {
        t.insert(vec![
            Value::Integer(i),
            Value::Varchar(format!("state-{}", i % 5)),
            Value::Decimal(i as i128),
            Value::Integer(OPEN),
        ])
        .unwrap();
    }
    t.delta_merge_all().unwrap();
    let policy = AgingPolicy { temperature_column: "closed_on".into(), merge_after: true };
    policy
        .close_rows(
            &mut t,
            "id",
            &ValuePredicate::Between(Value::Integer(0), Value::Integer(1_799)),
            &Value::Integer(20_200_101),
        )
        .unwrap();
    policy.run(&mut t).unwrap();
    t.unload_all();
    // Touch one cold row: only paged resources appear.
    let q = Query::filtered("id", ValuePredicate::Eq(Value::Integer(7)), Projection::All);
    let _ = t.execute(&q).unwrap();
    let stats = resman.stats();
    assert!(stats.paged_bytes > 0, "cold access goes through the paged pool");
    // Touch one hot row: a resident (non-paged) column load appears.
    let q = Query::filtered("id", ValuePredicate::Eq(Value::Integer(1_900)), Projection::All);
    let _ = t.execute(&q).unwrap();
    let stats2 = resman.stats();
    assert!(stats2.total_bytes > stats2.paged_bytes, "hot partitions load whole columns");
}
