//! Smoke test of the experiment harness itself at tiny scale: every
//! experiment must run to completion and produce a well-formed report.
//! (Shape checks against the paper need realistic scale and are evaluated
//! by `cargo bench`; at smoke scale a single page can exceed a whole
//! column, so they are not asserted here.)

use payg_bench::experiments;
use payg_bench::setup::TableSet;
use payg_bench::BenchConfig;

fn suppress_csv() {
    // Keep `cargo test` from overwriting the full-scale CSV artifacts the
    // bench suite writes to `results/`.
    std::env::set_var("PAYG_NO_CSV", "1");
}

#[test]
fn every_experiment_runs_at_smoke_scale() {
    suppress_csv();
    let cfg = BenchConfig::smoke();
    let tables = TableSet::new(&cfg);
    let reports = vec![
        experiments::fig1::run(&BenchConfig { rows: 300, ..cfg.clone() }),
        experiments::fig4::run(&cfg, &tables),
        experiments::fig5::run(&cfg, &tables),
        experiments::fig6::run(&cfg, &tables),
        experiments::fig7::run(&cfg, &tables),
        experiments::fig8::run(&cfg, &tables),
        experiments::fig9::run(&cfg, &tables),
        experiments::table3::run(&cfg, &tables),
    ];
    for r in &reports {
        let text = r.render();
        assert!(text.contains(&r.id), "report renders its id");
        assert!(!r.lines.is_empty(), "{} produced no result lines", r.id);
        assert!(!r.checks.is_empty(), "{} evaluated no shape checks", r.id);
    }
    // The ids cover every figure and table of the evaluation section.
    let ids: Vec<&str> = reports.iter().map(|r| r.id.as_str()).collect();
    assert_eq!(ids, vec!["fig1", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "table3"]);
}

#[test]
fn run_all_matches_individual_runs() {
    suppress_csv();
    let cfg = BenchConfig::smoke();
    let reports = experiments::run_all(&cfg);
    assert_eq!(reports.len(), 8);
}
