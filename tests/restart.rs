//! True restart durability: checkpoint a table to a file-backed store, drop
//! every in-memory object (as a process exit would), reopen the directory
//! with a fresh store, and restore the table from its catalog.

use page_as_you_go::core::{LoadPolicy, PageConfig, Value, ValuePredicate};
use page_as_you_go::resman::ResourceManager;
use page_as_you_go::storage::{BufferPool, ChainId, FileStore};
use page_as_you_go::table::{
    ColumnSpec, PartitionRange, PartitionSpec, Projection, Query, Schema, Table,
};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::Arc;

fn tmp_dir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("payg-restart-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

#[test]
fn erp_table_survives_a_full_restart() {
    let dir = tmp_dir("erp");
    let profile = TableProfile::erp(2_000, 11, 77);
    let catalog: ChainId;
    let queries: Vec<Query>;
    let expected: Vec<String>;
    {
        // "First process": build, merge, checkpoint.
        let pool = BufferPool::new(
            Arc::new(FileStore::open(&dir).unwrap()),
            ResourceManager::new(),
        );
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            profile.schema(true).unwrap(),
            vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
        )
        .unwrap();
        t.insert_all(generate_rows(&profile)).unwrap();
        t.delta_merge_all().unwrap();
        catalog = t.checkpoint().unwrap();
        let mut qg = QueryGen::new(profile.clone(), 5);
        queries = (0..40)
            .map(|i| match i % 4 {
                0 => qg.q_pk_star(),
                1 => qg.q_str_count(),
                2 => qg.q_range_sum(0.01),
                _ => qg.q_pk_rid(),
            })
            .collect();
        expected = queries.iter().map(|q| format!("{:?}", t.execute(q).unwrap())).collect();
        // Everything dropped here: pool, resource manager, table metadata.
    }
    {
        // "Second process": a fresh store over the same directory.
        let resman = ResourceManager::new();
        let pool =
            BufferPool::new(Arc::new(FileStore::open(&dir).unwrap()), resman.clone());
        let t = Table::open(pool, catalog).unwrap();
        assert_eq!(t.visible_rows(), profile.rows);
        assert_eq!(resman.stats().total_bytes, 0, "restored tables start cold");
        for (q, want) in queries.iter().zip(&expected) {
            assert_eq!(&format!("{:?}", t.execute(q).unwrap()), want);
        }
        assert!(resman.stats().paged_count > 0, "queries page data back in");
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn aged_partitions_keep_policies_across_restart() {
    let dir = tmp_dir("aged");
    let schema = || {
        Schema::new(vec![
            ColumnSpec::new("id", DataType::Integer),
            ColumnSpec::new("closed_on", DataType::Integer),
        ])
        .unwrap()
        .with_primary_key("id")
        .unwrap()
        .with_partition_column("closed_on")
        .unwrap()
    };
    use page_as_you_go::core::DataType;
    let catalog: ChainId;
    {
        let pool = BufferPool::new(
            Arc::new(FileStore::open(&dir).unwrap()),
            ResourceManager::new(),
        );
        let t = Table::create(
            pool,
            PageConfig::tiny(),
            schema(),
            vec![
                PartitionSpec::hot("hot", PartitionRange::AtLeast(Value::Integer(2024))),
                PartitionSpec::cold("cold", PartitionRange::Below(Value::Integer(2024))),
            ],
        )
        .unwrap();
        for i in 0..300i64 {
            t.insert(vec![
                Value::Integer(i),
                Value::Integer(if i < 100 { 2020 } else { 2025 }),
            ])
            .unwrap();
        }
        t.delta_merge_all().unwrap();
        catalog = t.checkpoint().unwrap();
    }
    let pool = BufferPool::new(
        Arc::new(FileStore::open(&dir).unwrap()),
        ResourceManager::new(),
    );
    let t = Table::open(pool, catalog).unwrap();
    // Partition specs, policies and routing all survive.
    assert_eq!(t.partitions()[0].spec().load_policy, LoadPolicy::FullyResident);
    assert_eq!(t.partitions()[1].spec().load_policy, LoadPolicy::PageLoadable);
    assert_eq!(t.partitions()[0].visible_rows(), 200);
    assert_eq!(t.partitions()[1].visible_rows(), 100);
    // New cold inserts route correctly after the restart.
    t.insert(vec![Value::Integer(9_999), Value::Integer(1_999)]).unwrap();
    assert_eq!(t.partitions()[1].delta().visible_rows(), 1);
    let q = Query::filtered(
        "closed_on",
        ValuePredicate::Between(Value::Integer(0), Value::Integer(2023)),
        Projection::Count,
    );
    assert_eq!(t.execute(&q).unwrap().count(), 101);
    std::fs::remove_dir_all(&dir).unwrap();
}
