//! Failure injection and memory-pressure integration tests: I/O faults
//! surface as errors (never panics or corruption), and pool limits hold
//! under live query traffic.

use page_as_you_go::core::{LoadPolicy, PageConfig};
use page_as_you_go::resman::{Disposition, PoolLimits, ResourceManager};
use page_as_you_go::storage::{BufferPool, FaultPlan, FaultyStore, MemStore, PageStore};
use page_as_you_go::table::{PartitionSpec, Table};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::Arc;

fn faulty_table() -> (Table, Arc<FaultyStore<MemStore>>, TableProfile) {
    let profile = TableProfile::erp(1_500, 9, 13);
    let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
    let resman = ResourceManager::new();
    let pool = BufferPool::new(store.clone() as Arc<dyn PageStore>, resman);
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(false).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    t.insert_all(generate_rows(&profile)).unwrap();
    t.delta_merge_all().unwrap();
    t.unload_all();
    (t, store, profile)
}

#[test]
fn io_faults_surface_as_errors_and_recovery_is_clean() {
    let (t, store, profile) = faulty_table();
    let mut qg = QueryGen::new(profile, 4);
    let q = qg.q_pk_star();
    // Every read fails: the query must error, not panic.
    store.set_plan(FaultPlan::EveryNthRead(1));
    assert!(t.execute(&q).is_err());
    // Faults cleared: the same query succeeds and returns correct data.
    store.set_plan(FaultPlan::None);
    let ok = t.execute(&q).unwrap();
    assert!(matches!(&ok, page_as_you_go::table::QueryResult::Rows(r) if r.len() == 1));
    // Intermittent faults: queries either fail cleanly or return the same
    // correct answer — never a wrong answer.
    store.set_plan(FaultPlan::EveryNthRead(3));
    let mut successes = 0;
    for _ in 0..30 {
        if let Ok(res) = t.execute(&q) {
            assert_eq!(res, ok);
            successes += 1;
        }
    }
    store.set_plan(FaultPlan::None);
    assert_eq!(t.execute(&q).unwrap(), ok);
    assert!(successes > 0, "some attempts succeed with cached pages");
}

#[test]
fn pool_limits_hold_under_query_traffic() {
    let profile = TableProfile::erp(4_000, 9, 23);
    let resman = ResourceManager::with_paged_limits(PoolLimits::new(8 * 1024, 16 * 1024));
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(false).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    t.insert_all(generate_rows(&profile)).unwrap();
    t.delta_merge_all().unwrap();
    t.unload_all();
    let mut qg = QueryGen::new(profile, 8);
    for _ in 0..200 {
        let q = qg.q_pk_star();
        t.execute(&q).unwrap();
    }
    // After the proactive unloader drains, the pool sits at or below the
    // upper limit: crossing it triggers a pass down to the lower limit, and
    // between the limits the unloader is deliberately idle (§5). Transient
    // overshoot during the workload is allowed.
    resman.quiesce();
    let paged = resman.stats().paged_bytes;
    assert!(paged <= 16 * 1024, "paged pool {paged} above the upper limit after quiesce");
    assert!(resman.stats().proactive_evictions > 0, "the background unloader did work");
    // The reactive path can always drain to the lower limit on demand.
    resman.reactive_unload();
    assert!(resman.stats().paged_bytes <= 8 * 1024);
    // Queries still return correct data afterwards.
    let q = qg.q_pk_rid();
    assert!(matches!(
        t.execute(&q).unwrap(),
        page_as_you_go::table::QueryResult::RowIds(ids) if ids.len() == 1
    ));
}

#[test]
fn weighted_lru_spares_hot_resident_columns() {
    let profile = TableProfile::erp(1_000, 9, 31);
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    // Two single-partition tables sharing one resource manager: a "hot" one
    // with long-term disposition and a "cold" one that is cheap to evict.
    let mut hot = Table::create(
        pool.clone(),
        PageConfig::tiny(),
        profile.schema(false).unwrap(),
        vec![{
            let mut s = PartitionSpec::single(LoadPolicy::FullyResident);
            s.disposition = Disposition::LongTerm;
            s
        }],
    )
    .unwrap();
    let mut cold = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(false).unwrap(),
        vec![{
            let mut s = PartitionSpec::single(LoadPolicy::FullyResident);
            s.disposition = Disposition::Temporary;
            s
        }],
    )
    .unwrap();
    for t in [&mut hot, &mut cold] {
        t.insert_all(generate_rows(&profile)).unwrap();
        t.delta_merge_all().unwrap();
    }
    // Touch both so both are loaded.
    let mut qg = QueryGen::new(profile, 2);
    let q = qg.q_pk_star();
    hot.execute(&q).unwrap();
    cold.execute(&q).unwrap();
    let loaded = resman.stats().total_bytes;
    assert!(loaded > 0);
    // Demand about half the memory back: the temporary-disposition columns
    // must go first.
    resman.handle_low_memory(loaded / 3);
    let hot_loaded = hot.partitions()[0].main().columns().iter().all(|c| match c {
        page_as_you_go::core::column::Column::Resident(r) => r.is_loaded(),
        _ => unreachable!(),
    });
    let cold_evicted = cold.partitions()[0].main().columns().iter().any(|c| match c {
        page_as_you_go::core::column::Column::Resident(r) => !r.is_loaded(),
        _ => unreachable!(),
    });
    assert!(cold_evicted, "temporary-disposition columns evicted first");
    assert!(hot_loaded, "long-term columns survive moderate pressure");
}
