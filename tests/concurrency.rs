//! Concurrent readers and concurrent eviction: page-loadable structures are
//! shared-read safe, and the resource manager may evict underneath running
//! queries without affecting their answers (pins protect in-flight pages).

use page_as_you_go::core::{LoadPolicy, PageConfig};
use page_as_you_go::resman::{PoolLimits, ResourceManager};
use page_as_you_go::storage::{BufferPool, MemStore};
use page_as_you_go::table::{PartitionSpec, Query, Table};
use page_as_you_go::workload::{generate_rows, QueryGen, TableProfile};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn build() -> (Table, ResourceManager, TableProfile) {
    let profile = TableProfile::erp(3_000, 9, 41);
    let resman = ResourceManager::new();
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(true).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    t.insert_all(generate_rows(&profile)).unwrap();
    t.delta_merge_all().unwrap();
    t.unload_all();
    (t, resman, profile)
}

#[test]
fn parallel_readers_agree_with_serial_answers() {
    let (t, _resman, profile) = build();
    // Precompute serial answers.
    let mut qg = QueryGen::new(profile.clone(), 6);
    let queries: Vec<Query> = (0..60).map(|_| qg.q_pk_star()).collect();
    let expected: Vec<String> =
        queries.iter().map(|q| format!("{:?}", t.execute(q).unwrap())).collect();
    std::thread::scope(|s| {
        for worker in 0..4 {
            let t = &t;
            let queries = &queries;
            let expected = &expected;
            s.spawn(move || {
                // Each worker replays the whole list, offset differently.
                for i in 0..queries.len() {
                    let j = (i + worker * 17) % queries.len();
                    assert_eq!(
                        format!("{:?}", t.execute(&queries[j]).unwrap()),
                        expected[j],
                        "worker {worker} query {j}"
                    );
                }
            });
        }
    });
}

#[test]
fn eviction_racing_with_queries_never_corrupts_results() {
    let (t, resman, profile) = build();
    resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
    let mut qg = QueryGen::new(profile.clone(), 7);
    let queries: Vec<Query> = (0..40).map(|_| qg.q_pk_star()).collect();
    let expected: Vec<String> =
        queries.iter().map(|q| format!("{:?}", t.execute(q).unwrap())).collect();
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        // An evictor thread drains the paged pool continuously.
        let evictor = {
            let resman = resman.clone();
            let stop = &stop;
            s.spawn(move || {
                let mut evictions = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    evictions += u64::from(resman.reactive_unload() > 0);
                    std::thread::yield_now();
                }
                evictions
            })
        };
        // Reader threads replay the workload under fire.
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let t = &t;
                let queries = &queries;
                let expected = &expected;
                s.spawn(move || {
                    for round in 0..5 {
                        for (q, want) in queries.iter().zip(expected) {
                            assert_eq!(
                                &format!("{:?}", t.execute(q).unwrap()),
                                want,
                                "round {round}"
                            );
                        }
                    }
                })
            })
            .collect();
        // Join the readers first so the evictor runs for the whole
        // workload (stopping it before they finish would leave the race
        // untested on a single CPU); then stop the evictor.
        for r in readers {
            r.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        let evictions = evictor.join().unwrap();
        assert!(evictions > 0, "the evictor must actually have evicted");
    });
}

#[test]
fn full_scans_race_with_proactive_unloader() {
    let profile = TableProfile::erp(2_000, 9, 43);
    let resman = ResourceManager::with_paged_limits(PoolLimits::new(4 * 1024, 8 * 1024));
    let pool = BufferPool::new(Arc::new(MemStore::new()), resman.clone());
    let t = Table::create(
        pool,
        PageConfig::tiny(),
        profile.schema(false).unwrap(),
        vec![PartitionSpec::single(LoadPolicy::PageLoadable)],
    )
    .unwrap();
    t.insert_all(generate_rows(&profile)).unwrap();
    t.delta_merge_all().unwrap();
    t.unload_all();
    let mut qg = QueryGen::new(profile, 3);
    let count_queries: Vec<Query> = (0..20).map(|_| qg.q_str_count()).collect();
    let expected: Vec<u64> =
        count_queries.iter().map(|q| t.execute(q).unwrap().count()).collect();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let t = &t;
            let qs = &count_queries;
            let expected = &expected;
            s.spawn(move || {
                for _ in 0..10 {
                    for (q, &want) in qs.iter().zip(expected) {
                        assert_eq!(t.execute(q).unwrap().count(), want);
                    }
                }
            });
        }
    });
    resman.quiesce();
    assert!(
        resman.stats().paged_bytes <= 8 * 1024,
        "pool back under the upper limit once drained"
    );
}

#[test]
fn query_result_is_send_for_cross_thread_use() {
    fn assert_send<T: Send>(_: &T) {}
    let (t, _r, profile) = build();
    let mut qg = QueryGen::new(profile, 1);
    let res = t.execute(&qg.q_pk_star()).unwrap();
    assert_send(&res);
    assert_send(&t);
}
