//! Offline shim for `criterion`: the macro/builder surface this workspace's
//! benches use, measuring with plain wall-clock timing. Per benchmark it
//! runs a short calibration, then `sample_size` samples, and prints the
//! median per-iteration time (plus throughput when configured). No plots,
//! no statistics beyond min/median/max — honest numbers, tiny footprint.
#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export so benches can use `criterion::black_box`.
pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id with an explicit name and parameter.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: format!("{}/{parameter}", name.into()) }
    }

    /// An id that is just the parameter (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { name: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// The benchmark harness root.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes free args through; honor the
        // first non-flag argument as a substring filter like criterion does.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'));
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(400),
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// No-op in the shim (kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { c: self, name: name.into(), throughput: None }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let sample_size = self.sample_size;
        let measurement_time = self.measurement_time;
        if self.matches(&id.name) {
            run_one(&id.name, sample_size, measurement_time, None, f);
        }
        self
    }

    fn matches(&self, full_name: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| full_name.contains(f))
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput annotation for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.c.sample_size = n.max(2);
        self
    }

    /// Overrides the measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.c.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.name);
        if self.c.matches(&full) {
            run_one(&full, self.c.sample_size, self.c.measurement_time, self.throughput, f);
        }
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (printing is incremental; this is a no-op).
    pub fn finish(self) {}
}

/// The per-benchmark timing driver passed to the closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` executions of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    measurement_time: Duration,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Calibrate: how many iterations fit one sample's share of the budget.
    let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
    f(&mut b);
    let per_iter = b.elapsed.max(Duration::from_nanos(1));
    let budget = measurement_time.as_nanos() / sample_size.max(1) as u128;
    let iters = (budget / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;
    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher { iters, elapsed: Duration::ZERO };
        f(&mut b);
        samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    let rate = match throughput {
        Some(Throughput::Elements(n)) => {
            format!("  {:>12.0} elem/s", n as f64 * 1e9 / median)
        }
        Some(Throughput::Bytes(n)) => {
            format!("  {:>12.0} B/s", n as f64 * 1e9 / median)
        }
        None => String::new(),
    };
    println!(
        "bench {name:<56} {:>12} /iter  [{} .. {}]{rate}",
        fmt_ns(median),
        fmt_ns(lo),
        fmt_ns(hi)
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            $(
                let mut c: $crate::Criterion = $config;
                $target(&mut c);
            )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim/demo");
        g.throughput(Throughput::Elements(100));
        g.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        g.bench_with_input(BenchmarkId::from_parameter(7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_prints() {
        let mut c = Criterion::default().sample_size(3).measurement_time(Duration::from_millis(5));
        c.filter = None;
        sample_bench(&mut c);
        c.bench_function("top-level", |b| b.iter(|| 1 + 1));
    }

    criterion_group!(shim_group, sample_bench);

    #[test]
    fn group_macro_compiles_and_runs() {
        // Keep it cheap: the default config would take ~0.4 s per bench.
        shim_group();
    }
}
