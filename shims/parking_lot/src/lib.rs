//! Offline shim for `parking_lot`: non-poisoning `Mutex`, `RwLock` and
//! `Condvar` built on `std::sync`. Poisoned locks are transparently
//! recovered (parking_lot has no poisoning), which matches how this
//! workspace uses the real crate.
#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion lock (non-poisoning).
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(Some(self.0.lock().unwrap_or_else(PoisonError::into_inner)))
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(Some(g))),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard(Some(p.into_inner()))),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII guard for [`Mutex`]. The inner `Option` exists so [`Condvar::wait`]
/// can temporarily move the underlying std guard out; it is `Some` at all
/// other times.
pub struct MutexGuard<'a, T: ?Sized>(Option<std::sync::MutexGuard<'a, T>>);

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.0.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.0.as_mut().expect("guard present")
    }
}

/// A reader-writer lock (non-poisoning).
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new rwlock.
    pub const fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read lock.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard(self.0.read().unwrap_or_else(PoisonError::into_inner))
    }

    /// Acquires an exclusive write lock.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard(self.0.write().unwrap_or_else(PoisonError::into_inner))
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> Self {
        RwLock::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// RAII shared guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized>(std::sync::RwLockReadGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

/// RAII exclusive guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized>(std::sync::RwLockWriteGuard<'a, T>);

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

/// A condition variable usable with this shim's [`MutexGuard`].
#[derive(Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar(std::sync::Condvar::new())
    }

    /// Blocks until notified, releasing the guard's lock while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.0.take().expect("guard present");
        guard.0 = Some(self.0.wait(inner).unwrap_or_else(PoisonError::into_inner));
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.0.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.0.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_and_rwlock_basics() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert!(m.try_lock().is_some());
        let rw = RwLock::new(5);
        assert_eq!(*rw.read(), 5);
        *rw.write() = 6;
        assert_eq!(*rw.read(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            while !*done {
                cv.wait(&mut done);
            }
        });
        let (m, cv) = &*pair;
        *m.lock() = true;
        cv.notify_all();
        t.join().unwrap();
    }
}
