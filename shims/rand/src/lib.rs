//! Offline shim for `rand` (0.10-style API): a deterministic, seedable
//! SplitMix64 generator behind the `RngCore`/`RngExt`/`SeedableRng` traits,
//! plus uniform `random_range` over integer ranges. Statistical quality is
//! ample for workload generation and tests; this is not a cryptographic RNG.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// The next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Creates an RNG deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods over any [`RngCore`].
pub trait RngExt: RngCore {
    /// A uniform sample from `range` (half-open or inclusive integer range).
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// A uniform `bool` with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        // 53 mantissa bits of uniformity is plenty here.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl<T: RngCore> RngExt for T {}

/// A range that can produce uniform samples of `T`.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                // span == 0 means the full u64 domain at 64-bit width.
                let offset = if span == 0 || span > u64::MAX as u128 + 1 {
                    rng.next_u64() as u128
                } else {
                    (rng.next_u64() as u128) % span
                };
                (lo as i128).wrapping_add(offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (deterministic per seed).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    /// A small fast generator — same engine as [`StdRng`] in this shim.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed_and_in_range() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            let x = a.random_range(10u64..20);
            assert_eq!(x, b.random_range(10u64..20));
            assert!((10..20).contains(&x));
        }
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<u64> = (0..8).map(|_| a.random_range(0..u64::MAX)).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.random_range(0..u64::MAX)).collect();
        assert_ne!(va, vc, "different seeds diverge");
    }

    #[test]
    fn inclusive_full_width_range() {
        let mut r = StdRng::seed_from_u64(3);
        // Must not panic or bias at the extreme span.
        for _ in 0..10 {
            let _ = r.random_range(0u64..=u64::MAX);
            let x = r.random_range(5i64..=5);
            assert_eq!(x, 5);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }
}
