//! Offline shim for `crossbeam`: the `channel::unbounded` MPMC channel,
//! implemented over `Mutex` + `Condvar`. Only the surface this workspace
//! uses is provided: `send`, `recv`, `try_recv`, clonable ends, and
//! disconnect detection on both sides.
#![forbid(unsafe_code)]

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error on `send`: all receivers are gone; the value comes back.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error on `recv`: the channel is empty and all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error on `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message available right now.
        Empty,
        /// Empty and all senders are gone.
        Disconnected,
    }

    /// The sending half. Clonable; dropping the last sender disconnects.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half. Clonable; dropping the last receiver disconnects.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues a message, failing when every receiver is gone.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.0
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::AcqRel);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe EOF.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                queue = self
                    .0
                    .ready
                    .wait(queue)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Dequeues a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap_or_else(PoisonError::into_inner);
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_recv_try_recv() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn recv_blocks_until_sent_across_threads() {
            let (tx, rx) = unbounded();
            let t = std::thread::spawn(move || rx.recv().unwrap());
            std::thread::sleep(std::time::Duration::from_millis(10));
            tx.send(42u32).unwrap();
            assert_eq!(t.join().unwrap(), 42);
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u8>();
            drop(rx);
            assert!(tx.send(1).is_err());
        }
    }
}
