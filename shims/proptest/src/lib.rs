//! Offline shim for `proptest`: the `proptest!` macro over a deterministic
//! seeded RNG. Each test runs `ProptestConfig::cases` random cases; a
//! failing case reports its case number and seed so it can be replayed with
//! `PAYG_PROPTEST_SEED`. **No shrinking** — failures print the raw case.
//!
//! Only the strategy surface this workspace uses is implemented: integer
//! ranges, `any` for primitives, `Just`, tuples, `prop_flat_map`,
//! `collection::vec` and `sample::select`.
#![forbid(unsafe_code)]

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of random values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Derives a new strategy from each generated value.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(
            self,
            f: F,
        ) -> Flatten<Self, F>
        where
            Self: Sized,
        {
            Flatten { outer: self, f }
        }

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct Flatten<S, F> {
        outer: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for Flatten<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            let outer = self.outer.generate(rng);
            (self.f)(outer).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let offset = if span == 0 || span > u64::MAX as u128 + 1 {
                        rng.next_u64() as u128
                    } else {
                        (rng.next_u64() as u128) % span
                    };
                    (lo as i128).wrapping_add(offset as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Draws a uniform value from the type's whole domain.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    let mut v: u128 = rng.next_u64() as u128;
                    if std::mem::size_of::<$t>() > 8 {
                        v |= (rng.next_u64() as u128) << 64;
                    }
                    v as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Raw bit patterns: covers subnormals, infinities and NaNs,
            // matching proptest's full-domain f64 generation in spirit.
            f64::from_bits(rng.next_u64())
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// A full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// A length distribution for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        /// Exclusive.
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange { lo: *r.start(), hi: r.end() + 1 }
        }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `Vec` strategy with per-element strategy and a length range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// The strategy returned by [`select`].
    pub struct Select<T: Clone>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[(rng.next_u64() % self.0.len() as u64) as usize].clone()
        }
    }

    /// Picks uniformly from a non-empty list of options.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from an empty list");
        Select(options)
    }
}

pub mod test_runner {
    /// The deterministic per-case RNG (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// An RNG at the given seed.
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// The next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config running `cases` cases. Under Miri every case pays an
        /// interpreter-level cost, so the count is clamped: the point of a
        /// Miri run is UB detection on representative inputs, not
        /// statistical coverage.
        pub fn with_cases(cases: u32) -> Self {
            let cases = if cfg!(miri) { cases.min(4) } else { cases };
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: if cfg!(miri) { 4 } else { 256 } }
        }
    }

    /// A test-case failure (or rejection via `prop_assume!`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub enum TestCaseError {
        /// The case's preconditions did not hold; it is skipped, not failed.
        Reject(String),
        /// The case failed.
        Fail(String),
    }

    /// Runs one property test's cases; used by the `proptest!` expansion.
    pub fn run_cases(
        name: &str,
        config: &ProptestConfig,
        mut case: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    ) {
        // A stable per-test base seed (FNV-1a over the name), overridable
        // for replay via PAYG_PROPTEST_SEED.
        let base = match std::env::var("PAYG_PROPTEST_SEED") {
            Ok(s) => s.parse::<u64>().expect("PAYG_PROPTEST_SEED must be a u64"),
            Err(_) => name
                .bytes()
                .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
                    (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01B3)
                }),
        };
        for i in 0..config.cases {
            let seed = base.wrapping_add(u64::from(i).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut rng = TestRng::from_seed(seed);
            let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                case(&mut rng)
            }));
            match result {
                Ok(Ok(())) | Ok(Err(TestCaseError::Reject(_))) => {}
                Ok(Err(TestCaseError::Fail(msg))) => {
                    panic!(
                        "proptest '{name}': case {i}/{} failed: {msg} (replay with \
                         PAYG_PROPTEST_SEED={base})",
                        config.cases
                    );
                }
                Err(panic) => {
                    eprintln!(
                        "proptest '{name}': case {i}/{} failed (replay with \
                         PAYG_PROPTEST_SEED={base})",
                        config.cases
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    }
}

/// The macro + common-name imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Module-style access (`prop::collection::vec`, `prop::sample::select`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn` runs `cases` times with fresh random
/// inputs drawn from the strategies on its parameters.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            // Strategies are built once; each case draws fresh values.
            $crate::test_runner::run_cases(stringify!($name), &config, |rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
                #[allow(unreachable_code)]
                Ok(())
            });
        }
        $crate::proptest!(@funcs ($cfg) $($rest)*);
    };
    (@funcs ($cfg:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(@funcs ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case (without failing) when its precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(a in 3u64..17, b in 0u32..=64, v in prop::collection::vec(any::<u8>(), 1..9)) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b <= 64);
            prop_assert!(!v.is_empty() && v.len() < 9);
        }

        #[test]
        fn flat_map_links_values((bits, below) in (1u64..40).prop_flat_map(|b| (Just(b), 0..b))) {
            prop_assert!(below < bits);
        }

        #[test]
        fn select_picks_member(x in prop::sample::select(vec![2u32, 4, 8])) {
            prop_assert!([2, 4, 8].contains(&x));
        }
    }

    // Exercises the no-config arm of `proptest!` (module scope, so the
    // generated `#[test]` is nameable by the harness).
    mod default_config {
        proptest! {
            #[test]
            fn applies(x in 0u8..=255) { prop_assert!(u32::from(x) < 256); }
        }
    }

    #[test]
    fn default_config_runs_256_cases() {
        assert_eq!(ProptestConfig::default().cases, 256);
    }
}
