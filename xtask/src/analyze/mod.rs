//! `payg-analyze`: the workspace's static-analysis engine.
//!
//! Replaces the old line-based linter with a comment/string-aware lexer
//! ([`lexer`]), a brace-scope and binding tracker ([`scopes`]), and
//! per-file token streams. On that base run:
//!
//! * the per-file rules ([`rules`]) — the eight legacy rules plus
//!   `span-discipline` — same names, same `lint: allow(<rule>) <reason>`
//!   suppressions;
//! * `lock-rank` / `rank-table` — static lock-order checking against
//!   `payg_check::RANK_TABLE` ([`lockrank`]);
//! * `guard-escape` — page-guard bindings live across blocking operations
//!   ([`guard_escape`]);
//! * `obs-undeclared` / `obs-dead` / `obs-label-arity` — metric-vocabulary
//!   conformance against `payg_obs::names::ALL` ([`obsvocab`]);
//! * `stale-suppression` — `lint: allow` tags that no longer suppress
//!   anything ([`report`]).
//!
//! Findings carry stable IDs (`PAYG-<hash>`, line-independent), so a
//! `--baseline` file can accept pre-existing debt without pinning line
//! numbers. `--format json` emits machine-readable output;
//! `--prune-suppressions` lists stale tags for removal.
//!
//! CLI (via `cargo xtask analyze`, with `lint` as a compatibility alias):
//!
//! ```text
//! cargo xtask analyze [ROOT_DIR...] [--format text|json]
//!                     [--baseline FILE] [--write-baseline FILE]
//!                     [--prune-suppressions]
//! ```

pub mod guard_escape;
pub mod lexer;
pub mod lockrank;
pub mod obsvocab;
pub mod report;
pub mod rules;
pub mod scopes;

use report::{assign_ids, Baseline, Finding, Sink};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Every rule the engine can emit (used to distinguish a stale suppression
/// from one naming a rule that never existed).
pub const KNOWN_RULES: &[&str] = &[
    "unwrap",
    "raw-lock",
    "safety",
    "sleep",
    "pin-in-loop",
    "raw-counter",
    "stringly-error",
    "pool-read-page",
    "pef-decode",
    "span-discipline",
    "snapshot-escape",
    "lock-rank",
    "rank-table",
    "guard-escape",
    "obs-undeclared",
    "obs-dead",
    "obs-label-arity",
    "stale-suppression",
];

/// One lexed + scope-analyzed file.
pub struct FileUnit {
    pub rel: PathBuf,
    pub lexed: lexer::Lexed,
    pub info: scopes::FileInfo,
}

/// Builds a [`FileUnit`] from source text.
pub fn build_unit(rel: PathBuf, src: &str) -> FileUnit {
    let lexed = lexer::lex(src);
    let info = scopes::analyze_scopes(&lexed.toks);
    FileUnit { rel, lexed, info }
}

/// Entry point for `cargo xtask analyze` / `cargo xtask lint`.
pub fn run(args: &[String]) -> ExitCode {
    let mut roots: Vec<PathBuf> = Vec::new();
    let mut format_json = false;
    let mut baseline: Option<PathBuf> = None;
    let mut write_baseline: Option<PathBuf> = None;
    let mut prune = false;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => format_json = true,
                Some("text") => format_json = false,
                other => {
                    eprintln!("analyze: --format expects `text` or `json`, got {other:?}");
                    return ExitCode::FAILURE;
                }
            },
            "--baseline" => match it.next() {
                Some(p) => baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("analyze: --baseline expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--write-baseline" => match it.next() {
                Some(p) => write_baseline = Some(PathBuf::from(p)),
                None => {
                    eprintln!("analyze: --write-baseline expects a file path");
                    return ExitCode::FAILURE;
                }
            },
            "--prune-suppressions" => prune = true,
            flag if flag.starts_with("--") => {
                eprintln!("analyze: unknown flag {flag}");
                return ExitCode::FAILURE;
            }
            root => roots.push(PathBuf::from(root)),
        }
    }

    let workspace = workspace_root();
    let roots = if roots.is_empty() { default_roots(&workspace) } else { roots };
    for root in &roots {
        if !root.is_dir() {
            eprintln!("analyze: no such directory: {}", root.display());
            return ExitCode::FAILURE;
        }
    }

    let (checked, findings) = match analyze_tree(&workspace, &roots) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("analyze: {e}");
            return ExitCode::FAILURE;
        }
    };

    if let Some(path) = write_baseline {
        let mut text = String::from("# payg-analyze baseline: accepted pre-existing findings.\n");
        for f in &findings {
            text.push_str(&format!("{}  # {}:{} [{}]\n", f.id, f.path.display(), f.line, f.rule));
        }
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("analyze: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("analyze: wrote {} finding(s) to baseline {}", findings.len(), path.display());
        return ExitCode::SUCCESS;
    }

    if prune {
        let stale: Vec<&Finding> =
            findings.iter().filter(|f| f.rule == "stale-suppression").collect();
        for f in &stale {
            println!("{f}");
        }
        println!(
            "analyze: {} stale suppression(s); remove each `lint: allow` tag listed above",
            stale.len()
        );
        return ExitCode::SUCCESS;
    }

    let (fresh, baselined, unmatched) = match &baseline {
        Some(path) => match Baseline::load(path) {
            Ok(bl) => bl.apply(findings),
            Err(e) => {
                eprintln!("analyze: cannot read baseline {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        },
        None => (findings, Vec::new(), Vec::new()),
    };

    if format_json {
        println!("{}", report::to_json(&fresh));
    } else {
        for f in &fresh {
            println!("{f}");
        }
        let mut summary = format!("analyze: {} files checked, {} violation(s)", checked, fresh.len());
        if !baselined.is_empty() {
            summary.push_str(&format!(", {} baselined", baselined.len()));
        }
        println!("{summary}");
        for id in &unmatched {
            println!("analyze: baseline entry {id} matched nothing — prune it from the baseline");
        }
    }

    if fresh.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Runs every pass over the tree; returns (files checked, sorted findings
/// with assigned IDs).
pub fn analyze_tree(workspace: &Path, roots: &[PathBuf]) -> Result<(usize, Vec<Finding>), String> {
    // Analysis set: library code under the roots.
    let mut files = Vec::new();
    for root in roots {
        collect_rs_files(root, false, &mut files);
    }
    files.sort();

    let mut units = Vec::with_capacity(files.len());
    for file in &files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file.strip_prefix(workspace).unwrap_or(file).to_path_buf();
        units.push(build_unit(rel, &text));
    }

    // Usage set: every .rs in the workspace (tests, benches, examples,
    // xtask included) — consumed by dead-name detection only.
    let mut usage_files = Vec::new();
    collect_rs_files(workspace, true, &mut usage_files);
    usage_files.sort();
    let mut usage_units = Vec::with_capacity(usage_files.len());
    for file in &usage_files {
        let text = std::fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file.strip_prefix(workspace).unwrap_or(file).to_path_buf();
        usage_units.push(build_unit(rel, &text));
    }

    let sinks: Vec<Sink<'_>> =
        units.iter().map(|u| Sink::new(&u.rel, &u.lexed.comments)).collect();

    for (i, u) in units.iter().enumerate() {
        rules::run(&u.rel, &u.lexed, &u.info, &sinks[i]);
        guard_escape::run(u, &sinks[i]);
    }

    let table: Vec<(&str, u8)> =
        payg_check::RANK_TABLE.iter().map(|s| (s.name, s.rank)).collect();
    lockrank::run(&units, &sinks, &table);

    let vocab: Vec<obsvocab::Vocab> = payg_obs::names::ALL
        .iter()
        .map(|s| obsvocab::Vocab {
            ident: s.ident.to_string(),
            name: s.name.to_string(),
            labels: s.labels.iter().map(|l| l.to_string()).collect(),
        })
        .collect();
    obsvocab::run(&units, &sinks, &usage_units, &vocab);

    let mut findings = Vec::new();
    for sink in sinks {
        sink.finish(KNOWN_RULES, &mut findings);
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    assign_ids(&mut findings);
    Ok((units.len(), findings))
}

fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let p = PathBuf::from(manifest);
    p.parent().map(Path::to_path_buf).unwrap_or(p)
}

fn default_roots(workspace: &Path) -> Vec<PathBuf> {
    let mut roots = vec![workspace.join("src")];
    if let Ok(entries) = std::fs::read_dir(workspace.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path());
        }
    }
    roots
}

/// Collects `.rs` files. With `include_test_trees` the `tests`/`benches`/
/// `examples` trees are walked too (for usage scanning); `fixtures` and
/// build/VCS internals are always skipped.
fn collect_rs_files(root: &Path, include_test_trees: bool, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            let skip = match name.as_ref() {
                "target" | "fixtures" | ".git" => true,
                "tests" | "benches" | "examples" => !include_test_trees,
                _ => false,
            };
            if !skip {
                collect_rs_files(&p, include_test_trees, out);
            }
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs the per-file passes (legacy rules + guard-escape + stale
    /// suppressions) over one source string, as the old `lint_file` did.
    fn analyze_str(rel: &str, text: &str) -> Vec<Finding> {
        let u = build_unit(PathBuf::from(rel), text);
        let sink = Sink::new(&u.rel, &u.lexed.comments);
        rules::run(&u.rel, &u.lexed, &u.info, &sink);
        guard_escape::run(&u, &sink);
        let mut out = Vec::new();
        sink.finish(KNOWN_RULES, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_in_core_crates_only() {
        let bad = "fn f() { x.unwrap(); }\n";
        assert_eq!(analyze_str("crates/storage/src/pool.rs", bad).len(), 1);
        assert_eq!(analyze_str("crates/resman/src/manager.rs", bad).len(), 1);
        assert_eq!(analyze_str("crates/encoding/src/lib.rs", bad).len(), 0);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let ok = "fn f() { x.unwrap_or_else(|| 3); y.unwrap_or(0); }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", ok).is_empty());
    }

    #[test]
    fn suppression_with_reason_works() {
        let t = "// lint: allow(unwrap) invariant: set above\nfn f() { x.expect(\"set\"); }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", t).is_empty());
        let same = "fn f() { x.expect(\"set\") } // lint: allow(unwrap) invariant\n";
        assert!(analyze_str("crates/storage/src/pool.rs", same).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        let t = "// lint: allow(unwrap)\nfn f() { x.expect(\"set\"); }\n";
        let v = analyze_str("crates/storage/src/pool.rs", t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let t = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(analyze_str("crates/storage/src/pool.rs", t).is_empty());
    }

    #[test]
    fn cfg_test_items_are_exempt_past_their_first_line() {
        // The old line-based linter only skipped a gated item's first line;
        // the scope tracker exempts the whole item body.
        let t = "#[cfg(test)]\nfn helper() {\n    x.unwrap();\n    y.expect(\"set\");\n}\nfn lib() { z.unwrap(); }\n";
        let v = analyze_str("crates/storage/src/pool.rs", t);
        assert_eq!(v.len(), 1, "only the non-test unwrap: {v:?}");
        assert_eq!(v[0].line, 6);
    }

    #[test]
    fn raw_lock_flagged_outside_sync_module() {
        let t = "use std::sync::Mutex;\n";
        assert_eq!(analyze_str("crates/storage/src/pool.rs", t).len(), 1);
        assert!(analyze_str("crates/storage/src/sync.rs", t).is_empty());
        let pl = "use parking_lot::RwLock;\n";
        assert_eq!(analyze_str("crates/resman/src/manager.rs", pl).len(), 1);
    }

    #[test]
    fn atomics_are_not_raw_locks() {
        let t = "use std::sync::atomic::AtomicU64;\nuse std::sync::Arc;\n";
        assert!(analyze_str("crates/storage/src/pool.rs", t).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        assert_eq!(analyze_str("crates/encoding/src/lib.rs", bad).len(), 1);
        let good = "// SAFETY: bounds checked above\nfn f() { unsafe { g() } }\n";
        assert!(analyze_str("crates/encoding/src/lib.rs", good).is_empty());
        // "unsafe" as a substring of an identifier is not the keyword.
        let ident = "fn not_unsafe_here() {}\n";
        assert!(analyze_str("crates/encoding/src/lib.rs", ident).is_empty());
    }

    #[test]
    fn multi_line_safety_comments_and_unsafe_fn_docs_count() {
        // A SAFETY justification may span several comment lines; the tag
        // only has to appear somewhere in the contiguous block above.
        let block = "fn f() {\n    // SAFETY: the caller checked bounds, and\n    // three more lines of explanation later\n    // the justification still counts\n    // for the block below\n    unsafe { g() }\n}\n";
        assert!(analyze_str("crates/encoding/src/lib.rs", block).is_empty());
        // An `unsafe fn` declaration is annotated by its rustdoc `# Safety`
        // section, even with attributes between the docs and the `fn`.
        let decl = "/// Reads raw.\n///\n/// # Safety\n///\n/// `off` must be in bounds.\n#[inline]\npub unsafe fn read(off: usize) -> u64 { 0 }\n";
        assert!(analyze_str("crates/encoding/src/lib.rs", decl).is_empty());
        // Docs without a safety section do not count.
        let undoc = "/// Reads raw.\npub unsafe fn read(off: usize) -> u64 { 0 }\n";
        let v = analyze_str("crates/encoding/src/lib.rs", undoc);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "safety");
    }

    #[test]
    fn unsafe_in_strings_and_comments_is_not_flagged() {
        // The line-based linter could not tell these apart; the lexer can.
        let t = "fn f() { let s = \"unsafe\"; } // an unsafe remark\n";
        assert!(analyze_str("crates/encoding/src/lib.rs", t).is_empty());
        let raw = "fn f() { let s = r#\"unsafe { }\"#; }\n";
        assert!(analyze_str("crates/encoding/src/lib.rs", raw).is_empty());
    }

    #[test]
    fn sleep_flagged_in_library_code() {
        let bad = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(analyze_str("crates/storage/src/store.rs", bad).len(), 1);
        assert_eq!(analyze_str("crates/table/src/lib.rs", bad).len(), 1);
    }

    #[test]
    fn comments_do_not_trigger_rules() {
        let t = "// calling x.unwrap() here would be wrong\nfn f() {}\n";
        assert!(analyze_str("crates/storage/src/pool.rs", t).is_empty());
    }

    #[test]
    fn stale_suppressions_are_reported() {
        let t = "// lint: allow(unwrap) was needed before the refactor\nfn f() { g(); }\n";
        let v = analyze_str("crates/storage/src/pool.rs", t);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "stale-suppression");
        assert_eq!(v[0].line, 1);
        // A tag naming an unknown rule is called out as such.
        let bad = "// lint: allow(no-such-rule) whatever\nfn f() { g(); }\n";
        let v = analyze_str("crates/storage/src/pool.rs", bad);
        assert_eq!(v.len(), 1);
        assert!(v[0].message.contains("unknown rule"), "{}", v[0].message);
    }

    #[test]
    fn seeded_violation_fixture_fails() {
        // The checked-in fixture must keep failing: it is the regression
        // test that the engine actually detects each rule.
        let fixture = include_str!("../../fixtures/violations.rs");
        let f = analyze_str("crates/storage/src/fixture.rs", fixture);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"unwrap"), "fixture must trip unwrap: {rules:?}");
        assert!(rules.contains(&"raw-lock"), "fixture must trip raw-lock: {rules:?}");
        assert!(rules.contains(&"safety"), "fixture must trip safety: {rules:?}");
        assert!(rules.contains(&"sleep"), "fixture must trip sleep: {rules:?}");
        assert!(rules.contains(&"raw-counter"), "fixture must trip raw-counter: {rules:?}");
        assert!(rules.contains(&"stringly-error"), "fixture must trip stringly-error: {rules:?}");
        assert!(rules.contains(&"pef-decode"), "fixture must trip pef-decode: {rules:?}");
    }

    #[test]
    fn decode_partition_flagged_outside_pef_module() {
        let bad = "fn f(b: &[u8], out: &mut [u64]) { decode_partition(b, 0, 64, out); }\n";
        let v = analyze_str("crates/core/src/invidx/paged.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "pef-decode");
        // The pef module itself is the sanctioned decode site.
        assert!(analyze_str("crates/encoding/src/pef.rs", bad).is_empty());
        // Compressed-domain accessors are not full decodes.
        let ok = "fn f(p: &PartitionRef) { p.next_geq(9); p.read_into(buf); }\n";
        assert!(analyze_str("crates/core/src/invidx/paged.rs", ok).is_empty());
        // A `use` import alone is not a call.
        let import = "use payg_encoding::pef::decode_partition;\n";
        assert!(analyze_str("crates/core/src/invidx/paged.rs", import).is_empty());
        // Suppression with a reason is honored.
        let sup = "fn f(b: &[u8], out: &mut [u64]) {\n    // lint: allow(pef-decode) corruption-repair probe\n    decode_partition(b, 0, 64, out);\n}\n";
        assert!(analyze_str("crates/core/src/invidx/paged.rs", sup).is_empty());
    }

    #[test]
    fn pin_in_loop_flagged_only_in_datavec_loops() {
        let bad = "fn f() {\n    for p in 0..n {\n        let g = pool.pin(key);\n    }\n    let h = pool.pin(other);\n}\n";
        let v = analyze_str("crates/core/src/datavec/paged.rs", bad);
        assert_eq!(v.len(), 1, "only the in-loop pin is flagged: {v:?}");
        assert_eq!(v[0].rule, "pin-in-loop");
        assert_eq!(v[0].line, 3);
        // Outside the datavec scan code the rule does not apply.
        assert!(analyze_str("crates/core/src/column/paged.rs", bad).is_empty());
        // A pin hoisted above the loop is the intended shape.
        let ok = "fn f() {\n    let g = pool.pin(key);\n    for c in g.chunks() {\n        use_chunk(c);\n    }\n}\n";
        assert!(analyze_str("crates/core/src/datavec/paged.rs", ok).is_empty());
        // get_or_pin (the guard cache) is not a raw pool pin.
        let cached = "fn f() {\n    for p in 0..n {\n        let g = self.guards.get_or_pin(p, pin_fn);\n    }\n}\n";
        assert!(analyze_str("crates/core/src/datavec/paged.rs", cached).is_empty());
        // Suppression with a reason is honored.
        let sup = "fn f() {\n    for p in 0..n {\n        // lint: allow(pin-in-loop) boundary repin\n        let g = pool.pin(key);\n    }\n}\n";
        assert!(analyze_str("crates/core/src/datavec/paged.rs", sup).is_empty());
    }

    #[test]
    fn raw_counter_flagged_outside_obs_and_check() {
        let field = "pub struct S {\n    hits: AtomicU64,\n}\n";
        let v = analyze_str("crates/storage/src/pool.rs", field);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "raw-counter");
        assert_eq!(v[0].line, 2);
        let stat = "static HITS: AtomicU64 = AtomicU64::new(0);\n";
        assert_eq!(analyze_str("crates/bench/src/lib.rs", stat).len(), 1);
        // The obs and check crates implement the primitives themselves.
        assert!(analyze_str("crates/obs/src/hist.rs", field).is_empty());
        assert!(analyze_str("crates/check/src/sched.rs", stat).is_empty());
        // A struct-literal constructor is not a second declaration.
        let ctor = "fn f() { S { hits: AtomicU64::new(0) } }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", ctor).is_empty());
        // Qualified declarations are caught; a `use` import alone is not.
        let qualified = "pub struct S {\n    hits: std::sync::atomic::AtomicU64,\n}\n";
        assert_eq!(analyze_str("crates/table/src/table.rs", qualified).len(), 1);
        let import = "use std::sync::atomic::AtomicU64;\n";
        assert!(analyze_str("crates/storage/src/pool.rs", import).is_empty());
        // Non-metric atomics are suppressible with a reason.
        let sup = "pub struct S {\n    // lint: allow(raw-counter) id allocator, not a metric\n    next_id: AtomicU64,\n}\n";
        assert!(analyze_str("crates/storage/src/pool.rs", sup).is_empty());
    }

    #[test]
    fn stringly_error_flagged_outside_the_taxonomy_module() {
        let bad = "fn f() -> StorageError { StorageError::Corrupt(format!(\"bad {x}\")) }\n";
        let v = analyze_str("crates/core/src/dict/paged.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stringly-error");
        // The taxonomy module itself is the sanctioned construction site.
        assert!(analyze_str("crates/storage/src/error.rs", bad).is_empty());
        // The helper spelling is the approved one.
        let ok = "fn f() -> StorageError { StorageError::corrupt(\"bad page\") }\n";
        assert!(analyze_str("crates/core/src/dict/paged.rs", ok).is_empty());
        // A resurrected catch-all variant is flagged wherever it appears.
        let other = "fn f() -> StorageError { StorageError::Other(\"??\".into()) }\n";
        assert_eq!(analyze_str("crates/table/src/catalog.rs", other).len(), 1);
        // Test trees stay exempt (they assert on error shapes).
        assert!(analyze_str("crates/core/tests/proptests.rs", bad).is_empty());
    }

    #[test]
    fn pool_read_page_flagged_only_in_pool_shard_code() {
        let bad = "fn f() { let data = self.store.read_page(key); }\n";
        let v = analyze_str("crates/storage/src/pool.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pool-read-page");
        // The I/O stage is the sanctioned call site; other modules (stores
        // themselves, decorators) are out of scope too.
        assert!(analyze_str("crates/storage/src/iostage.rs", bad).is_empty());
        assert!(analyze_str("crates/storage/src/store.rs", bad).is_empty());
        // The batched API is not a direct per-page read.
        let batched = "fn f() { let r = self.store.read_pages(chain, 0, n); }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", batched).is_empty());
        // Suppression with a reason is honored.
        let sup = "// lint: allow(pool-read-page) recovery probe outside the stage\n\
                   fn f() { self.store.read_page(key); }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", sup).is_empty());
    }

    #[test]
    fn span_discipline_flags_untagged_io_emits_in_pool_and_core() {
        let bad = "fn f() { t.emit(EventKind::IoSubmitted, c, p, 0); }\n";
        let v = analyze_str("crates/storage/src/iostage.rs", bad);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "span-discipline");
        assert_eq!(analyze_str("crates/core/src/datavec/parallel.rs", bad).len(), 1);
        // Outside the pool/core crates the rule does not apply.
        assert!(analyze_str("crates/obs/src/trace.rs", bad).is_empty());
        // The tagged emit is the approved spelling, and non-io kinds may
        // stay plain (no query to attribute them to).
        let tagged = "fn f() { t.emit_tagged(EventKind::IoSubmitted, c, p, 0, span, 0); }\n";
        assert!(analyze_str("crates/storage/src/iostage.rs", tagged).is_empty());
        let plainok = "fn f() { t.emit(EventKind::PageEvicted, c, p, 0); }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", plainok).is_empty());
        // Path-qualified kinds are still caught; the kind must be in the
        // first argument (a later argument naming a kind is not a match).
        let qualified = "fn f() { t.emit(payg_obs::EventKind::IoCompleted, c, p, 0); }\n";
        assert_eq!(analyze_str("crates/storage/src/pool.rs", qualified).len(), 1);
        let later = "fn f() { t.emit(EventKind::PagePinned, c, IoCompleted as u64, 0); }\n";
        assert!(analyze_str("crates/storage/src/pool.rs", later).is_empty());
        // Suppression with a reason is honored.
        let sup = "fn f() {\n    // lint: allow(span-discipline) fault drill, no query\n    t.emit(EventKind::LoadRetried, c, p, 1);\n}\n";
        assert!(analyze_str("crates/storage/src/iostage.rs", sup).is_empty());
    }

    #[test]
    fn span_discipline_fixture_exact_findings() {
        let fixture = include_str!("../../fixtures/span_discipline.rs");
        let got = analyze_units(&[("crates/storage/src/fixture.rs", fixture)]);
        let f = "crates/storage/src/fixture.rs".to_string();
        assert_eq!(
            got,
            [
                ("span-discipline".to_string(), f.clone(), 9),
                ("span-discipline".to_string(), f.clone(), 10),
                ("span-discipline".to_string(), f, 15),
            ],
            "{got:?}"
        );
    }

    #[test]
    fn snapshot_escape_flagged_only_in_table_src() {
        let bad = "fn f(p: &Partition) { let m = p.main(); let d = p.delta(); }\n";
        let v = analyze_str("crates/table/src/query.rs", bad);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.rule == "snapshot-escape"), "{v:?}");
        // The version module owns the protocol; other crates (and the
        // table crate's test trees) read through the public accessors.
        assert!(analyze_str("crates/table/src/version.rs", bad).is_empty());
        assert!(analyze_str("crates/bench/src/series.rs", bad).is_empty());
        assert!(analyze_str("crates/table/tests/restart.rs", bad).is_empty());
        // The pinned spellings are the approved ones, and a field named
        // `main` is not a raw accessor call.
        let ok = "fn f(p: &Partition) { let m = p.main_frag(); let d = p.delta_view(); }\n";
        assert!(analyze_str("crates/table/src/query.rs", ok).is_empty());
        let field = "fn f(pv: &PartitionVersion) { pv.main.schedule_retire(&pool); }\n";
        assert!(analyze_str("crates/table/src/table.rs", field).is_empty());
        // Suppression with a reason is honored.
        let sup = "fn f(p: &Partition) {\n    // lint: allow(snapshot-escape) repair probe\n    let m = p.main();\n}\n";
        assert!(analyze_str("crates/table/src/catalog.rs", sup).is_empty());
    }

    #[test]
    fn snapshot_escape_fixture_exact_findings() {
        let fixture = include_str!("../../fixtures/snapshot_escape.rs");
        let got = analyze_units(&[("crates/table/src/fixture.rs", fixture)]);
        let f = "crates/table/src/fixture.rs".to_string();
        assert_eq!(
            got,
            [
                ("snapshot-escape".to_string(), f.clone(), 6),
                ("snapshot-escape".to_string(), f, 7),
            ],
            "{got:?}"
        );
    }

    #[test]
    fn seeded_pin_in_loop_fixture_fails() {
        let fixture = include_str!("../../fixtures/pin_in_loop.rs");
        let f = analyze_str("crates/core/src/datavec/fixture.rs", fixture);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(
            f.len(),
            2,
            "fixture must trip exactly its two unsuppressed loops: {rules:?}"
        );
        assert!(f.iter().all(|x| x.rule == "pin-in-loop"), "{rules:?}");
    }

    /// Runs the FULL pass set — per-file rules, guard-escape, lock-rank
    /// against the real `payg_check::RANK_TABLE`, obs-vocabulary against
    /// the real `payg_obs::names::ALL` — over in-memory units, as
    /// [`analyze_tree`] does over the workspace.
    fn analyze_units(srcs: &[(&str, &str)]) -> Vec<(String, String, u32)> {
        let units: Vec<FileUnit> =
            srcs.iter().map(|(rel, src)| build_unit(PathBuf::from(rel), src)).collect();
        let sinks: Vec<Sink<'_>> =
            units.iter().map(|u| Sink::new(&u.rel, &u.lexed.comments)).collect();
        for (i, u) in units.iter().enumerate() {
            rules::run(&u.rel, &u.lexed, &u.info, &sinks[i]);
            guard_escape::run(u, &sinks[i]);
        }
        let table: Vec<(&str, u8)> =
            payg_check::RANK_TABLE.iter().map(|s| (s.name, s.rank)).collect();
        lockrank::run(&units, &sinks, &table);
        let vocab: Vec<obsvocab::Vocab> = payg_obs::names::ALL
            .iter()
            .map(|s| obsvocab::Vocab {
                ident: s.ident.to_string(),
                name: s.name.to_string(),
                labels: s.labels.iter().map(|l| l.to_string()).collect(),
            })
            .collect();
        obsvocab::run(&units, &sinks, &units, &vocab);
        let mut out = Vec::new();
        for s in sinks {
            s.finish(KNOWN_RULES, &mut out);
        }
        out.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
        out.into_iter()
            .map(|f| (f.rule.to_string(), f.path.display().to_string(), f.line))
            .collect()
    }

    #[test]
    fn lexer_tricky_fixture_exact_findings() {
        let fixture = include_str!("../../fixtures/lexer_tricky.rs");
        let got = analyze_units(&[("crates/encoding/src/fixture.rs", fixture)]);
        assert_eq!(
            got,
            [("safety".to_string(), "crates/encoding/src/fixture.rs".to_string(), 35)],
            "only the REAL unsafe block may be flagged: {got:?}"
        );
    }

    #[test]
    fn lockrank_inversion_fixture_exact_findings() {
        // The fixture and the runtime checker share one rank declaration:
        // the inversion below is reported against payg_check::RANK_TABLE.
        let fixture = include_str!("../../fixtures/lockrank_inversion.rs");
        let got = analyze_units(&[("crates/resman/src/fixture.rs", fixture)]);
        assert_eq!(
            got,
            [("lock-rank".to_string(), "crates/resman/src/fixture.rs".to_string(), 16)],
            "{got:?}"
        );
    }

    #[test]
    fn guard_escape_fixture_exact_findings() {
        let fixture = include_str!("../../fixtures/guard_escape.rs");
        let got = analyze_units(&[("crates/storage/src/fixture.rs", fixture)]);
        let f = "crates/storage/src/fixture.rs".to_string();
        assert_eq!(
            got,
            [("guard-escape".to_string(), f.clone(), 8), ("guard-escape".to_string(), f, 9)],
            "{got:?}"
        );
    }

    #[test]
    fn obs_vocab_fixture_exact_findings() {
        let fixture = include_str!("../../fixtures/obs_vocab.rs");
        let got = analyze_units(&[("crates/storage/src/fixture.rs", fixture)]);
        let f = "crates/storage/src/fixture.rs".to_string();
        assert_eq!(
            got,
            [
                ("obs-undeclared".to_string(), f.clone(), 8),
                ("obs-label-arity".to_string(), f.clone(), 9),
                ("obs-label-arity".to_string(), f, 13),
            ],
            "{got:?}"
        );
    }

    #[test]
    fn stale_suppression_fixture_exact_findings() {
        let fixture = include_str!("../../fixtures/stale_suppression.rs");
        let got = analyze_units(&[("crates/storage/src/fixture.rs", fixture)]);
        assert_eq!(
            got,
            [(
                "stale-suppression".to_string(),
                "crates/storage/src/fixture.rs".to_string(),
                5
            )],
            "{got:?}"
        );
    }

    #[test]
    fn tree_is_clean() {
        // Run the full engine over the workspace: the repo must stay clean.
        let ws = workspace_root();
        let (checked, findings) = analyze_tree(&ws, &default_roots(&ws)).unwrap();
        assert!(checked > 20, "expected to analyze the whole workspace, got {checked} files");
        let msgs: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(msgs.is_empty(), "analyze violations in tree:\n{}", msgs.join("\n"));
    }
}
