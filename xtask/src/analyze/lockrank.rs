//! Static lock-rank pass.
//!
//! The runtime tracker in `payg_check::lockorder` enforces the rank
//! discipline on executed paths; this pass checks the same discipline
//! statically, so an inversion on a path no test exercises is still caught.
//! The rank table is `payg_check::RANK_TABLE` — the same `define_ranks!`
//! invocation the runtime enum comes from — so the two checkers cannot
//! drift apart.
//!
//! What it does, per crate:
//!
//! 1. collects `with_rank` declaration sites, binding (struct type, field)
//!    — or a `let` local — to a rank;
//! 2. walks every `fn` body tracking which ranked guards are *held*
//!    (let-bound guards live to end of block or `drop(name)`; temporaries
//!    are check-only);
//! 3. flags any acquisition whose rank is not strictly greater than every
//!    held rank (`lock-rank`);
//! 4. resolves one level of intra-crate calls: a call to a fn that itself
//!    directly acquires ranked locks is checked against the caller's held
//!    set (unique fn names only, generic method names excluded);
//! 5. cross-checks the table both ways (`rank-table`): a `with_rank` site
//!    naming an unknown rank, and a table entry with no `with_rank` site
//!    anywhere in the workspace.
//!
//! Receiver resolution is deliberately conservative: `self.field.lock()`
//! resolves via (enclosing impl type, field); `base.field.lock()` via a
//! field name unique in the crate; a bare local only via a `let` bound to a
//! `with_rank` constructor. Anything else is skipped, not guessed.

use super::lexer::{Tok, TokKind};
use super::report::Sink;
use super::scopes::FileInfo;
use super::FileUnit;
use std::collections::HashMap;

/// Method names that look like acquisitions.
const ACQUIRE: &[&str] = &["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// Fn names too generic for one-level call resolution.
const CALL_DENYLIST: &[&str] = &[
    "lock", "read", "write", "try_lock", "try_read", "try_write", "wait", "new", "default",
    "drop", "clone", "get", "insert", "remove", "push", "pop", "len", "with_rank", "notify_all",
    "notify_one",
];

/// One `with_rank` declaration site.
struct Decl {
    /// Struct-literal type the field belongs to (`None` for a `let` local).
    owner: Option<String>,
    /// Field or local name.
    name: String,
    rank: String,
    file: usize,
    line: u32,
}

/// Runs the pass over the whole workspace. `table` is
/// `payg_check::RANK_TABLE` flattened to (variant name, rank value).
pub fn run(units: &[FileUnit], sinks: &[Sink<'_>], table: &[(&str, u8)]) {
    // --- pass 1: collect declarations, crate by crate ---
    let mut decls_by_crate: HashMap<String, Vec<Decl>> = HashMap::new();
    for (fi, u) in units.iter().enumerate() {
        if !in_lock_scope(u) {
            continue;
        }
        collect_decls(fi, u, decls_by_crate.entry(crate_key(u)).or_default());
    }

    // Unknown-rank half of the table cross-check.
    for decls in decls_by_crate.values() {
        for d in decls {
            if !table.iter().any(|&(n, _)| n == d.rank) {
                sinks[d.file].emit(
                    "rank-table",
                    d.line,
                    format!(
                        "`LockRank::{}` is not in payg_check::RANK_TABLE — \
                         declare it in crates/check/src/lockorder.rs",
                        d.rank
                    ),
                );
            }
        }
    }

    // Dead-rank half: a table entry no with_rank site uses.
    if let Some(lockorder) = units
        .iter()
        .position(|u| u.rel.to_string_lossy().replace('\\', "/").ends_with("check/src/lockorder.rs"))
    {
        for &(name, _) in table {
            let used = decls_by_crate.values().flatten().any(|d| d.rank == name);
            if !used {
                let line = units[lockorder]
                    .lexed
                    .toks
                    .iter()
                    .find(|t| t.is_ident(name))
                    .map_or(1, |t| t.line);
                sinks[lockorder].emit(
                    "rank-table",
                    line,
                    format!(
                        "rank `{name}` has no `with_rank` declaration site anywhere — \
                         dead rank, remove it or rank the lock that should use it"
                    ),
                );
            }
        }
    }

    // --- pass 2: per-crate fn summaries, then per-fn ordering checks ---
    for (ck, decls) in &decls_by_crate {
        let resolver = Resolver::new(decls, table);
        let crate_units: Vec<usize> = units
            .iter()
            .enumerate()
            .filter(|(_, u)| crate_key(u) == *ck && in_lock_scope(u))
            .map(|(i, _)| i)
            .collect();

        // Fn summary: unique fn name -> ranks it directly acquires.
        let mut fn_ranks: HashMap<String, Vec<(String, u8)>> = HashMap::new();
        let mut ambiguous: Vec<String> = Vec::new();
        for &fi in &crate_units {
            let u = &units[fi];
            for f in &u.info.fns {
                if CALL_DENYLIST.contains(&f.name.as_str()) || u.info.in_test[f.body.0] {
                    continue;
                }
                let ranks = direct_acquisitions(u, f.body, f.impl_type.as_deref(), &resolver);
                match fn_ranks.entry(f.name.clone()) {
                    std::collections::hash_map::Entry::Occupied(_) => ambiguous.push(f.name.clone()),
                    std::collections::hash_map::Entry::Vacant(e) => {
                        e.insert(ranks);
                    }
                }
            }
        }
        for name in &ambiguous {
            fn_ranks.remove(name);
        }

        for &fi in &crate_units {
            let u = &units[fi];
            for f in &u.info.fns {
                if u.info.in_test[f.body.0] {
                    continue;
                }
                check_fn_body(u, f.body, f.impl_type.as_deref(), &resolver, &fn_ranks, &sinks[fi]);
            }
        }
    }
}

/// Only the crates that actually use ranked locks are scanned; everything
/// else has no `with_rank` sites and would only cost time.
fn in_lock_scope(u: &FileUnit) -> bool {
    let s = u.rel.to_string_lossy().replace('\\', "/");
    (s.starts_with("crates/") && s.contains("/src/")) || s.starts_with("src/")
}

/// Crate grouping key: `crates/<name>` or `src`.
fn crate_key(u: &FileUnit) -> String {
    let s = u.rel.to_string_lossy().replace('\\', "/");
    let mut parts = s.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => format!("crates/{name}"),
        _ => "src".to_string(),
    }
}

/// Resolves receiver names to ranks using the crate's declarations.
struct Resolver<'a> {
    decls: &'a [Decl],
    table: &'a [(&'a str, u8)],
}

impl<'a> Resolver<'a> {
    fn new(decls: &'a [Decl], table: &'a [(&'a str, u8)]) -> Self {
        Resolver { decls, table }
    }

    fn value(&self, rank: &str) -> Option<u8> {
        self.table.iter().find(|&&(n, _)| n == rank).map(|&(_, v)| v)
    }

    /// Rank of field `name` on type `owner`, falling back to a field name
    /// unique across the crate when the owner does not match or is unknown.
    fn field(&self, owner: Option<&str>, name: &str) -> Option<(String, u8)> {
        if let Some(owner) = owner {
            if let Some(d) = self
                .decls
                .iter()
                .find(|d| d.owner.as_deref() == Some(owner) && d.name == name)
            {
                return self.value(&d.rank).map(|v| (d.rank.clone(), v));
            }
        }
        let mut hits = self.decls.iter().filter(|d| d.owner.is_some() && d.name == name);
        let first = hits.next()?;
        if hits.any(|d| d.rank != first.rank) {
            return None; // ambiguous field name with conflicting ranks
        }
        self.value(&first.rank).map(|v| (first.rank.clone(), v))
    }
}

/// Collects every `with_rank` declaration in one file.
fn collect_decls(fi: usize, u: &FileUnit, out: &mut Vec<Decl>) {
    let toks = &u.lexed.toks;
    for i in 0..toks.len() {
        if !toks[i].is_ident("with_rank") || !toks.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if u.info.in_test[i] {
            continue;
        }
        let Some(rank) = rank_argument(toks, i + 1) else { continue };
        let Some((owner, name)) = declared_binding(toks, i, &u.info) else { continue };
        out.push(Decl { owner, name, rank, file: fi, line: toks[i].line });
    }
}

/// The `LockRank::X` argument inside the `with_rank(...)` call whose `(` is
/// at `open` (the last one, matching the constructor's trailing rank arg).
fn rank_argument(toks: &[Tok], open: usize) -> Option<String> {
    let close = super::scopes::matching_paren(toks, open);
    let mut rank = None;
    let mut j = open;
    while j + 3 < close {
        if toks[j].is_ident("LockRank")
            && toks[j + 1].is_punct(':')
            && toks[j + 2].is_punct(':')
            && toks[j + 3].kind == TokKind::Ident
        {
            rank = Some(toks[j + 3].text.clone());
            j += 4;
        } else {
            j += 1;
        }
    }
    rank
}

/// What the `with_rank` at `i` is bound to: `Some((owner, name))` where
/// `owner` is the struct-literal type for a field, `None` for a `let`.
fn declared_binding(toks: &[Tok], i: usize, info: &FileInfo) -> Option<(Option<String>, String)> {
    // Walk back over the constructor path (`crate::sync::Mutex::`), and
    // through up to two wrapping calls (`Arc::new(`).
    let mut j = i;
    for _ in 0..3 {
        while j >= 3
            && toks[j - 1].is_punct(':')
            && toks[j - 2].is_punct(':')
            && toks[j - 3].kind == TokKind::Ident
        {
            j -= 3;
        }
        if j >= 1 && toks[j - 1].is_punct('(') {
            j -= 1;
            continue;
        }
        break;
    }
    if j >= 2 && toks[j - 1].is_punct(':') && toks[j - 2].kind == TokKind::Ident {
        // Struct-literal field: find the literal's type.
        let field = toks[j - 2].text.clone();
        let owner = struct_literal_type(toks, j - 2, info);
        return Some((owner, field));
    }
    if j >= 2 && toks[j - 1].is_punct('=') {
        // `let name = Mutex::with_rank(..)` (possibly `let mut name`).
        let mut k = j - 2;
        if toks[k].kind != TokKind::Ident {
            return None;
        }
        let name = toks[k].text.clone();
        if k >= 1 && toks[k - 1].is_ident("mut") {
            k -= 1;
        }
        if k >= 1 && toks[k - 1].is_ident("let") {
            return Some((None, name));
        }
    }
    None
}

/// Type name of the struct literal containing the field token at `f`:
/// the identifier before the literal's opening `{` (`Self` resolved via
/// the enclosing fn's impl type).
fn struct_literal_type(toks: &[Tok], f: usize, info: &FileInfo) -> Option<String> {
    let mut depth = 0i64;
    let mut open = None;
    for j in (0..f).rev() {
        if toks[j].is_punct('}') {
            depth += 1;
        } else if toks[j].is_punct('{') {
            if depth == 0 {
                open = Some(j);
                break;
            }
            depth -= 1;
        }
    }
    let open = open?;
    let before = open.checked_sub(1)?;
    if toks[before].kind != TokKind::Ident {
        return None;
    }
    let name = toks[before].text.clone();
    if name == "Self" {
        return info
            .fns
            .iter()
            .find(|fun| fun.body.0 <= f && f <= fun.body.1)
            .and_then(|fun| fun.impl_type.clone());
    }
    // Keywords that can precede a block are not struct literals.
    if matches!(name.as_str(), "else" | "try" | "unsafe" | "loop" | "move" | "do") {
        return None;
    }
    Some(name)
}

/// Ranks directly acquired anywhere in a fn body (for the call summary).
fn direct_acquisitions(
    u: &FileUnit,
    body: (usize, usize),
    impl_type: Option<&str>,
    resolver: &Resolver<'_>,
) -> Vec<(String, u8)> {
    let toks = &u.lexed.toks;
    let mut out: Vec<(String, u8)> = Vec::new();
    let mut locals: HashMap<String, (String, u8)> = HashMap::new();
    for i in body.0..=body.1.min(toks.len().saturating_sub(1)) {
        if let Some(acq) = acquisition_at(toks, i, impl_type, resolver, &locals) {
            if !out.iter().any(|(n, _)| *n == acq.rank.0) {
                out.push(acq.rank.clone());
            }
            if let Some(name) = acq.let_name {
                locals.insert(name, acq.rank);
            }
        }
    }
    out
}

/// One resolved acquisition site.
struct Acq {
    rank: (String, u8),
    /// `Some(name)` when the guard is let-bound (held to end of scope).
    let_name: Option<String>,
}

/// Resolves the token at `i` as a ranked-lock acquisition, or `None`.
fn acquisition_at(
    toks: &[Tok],
    i: usize,
    impl_type: Option<&str>,
    resolver: &Resolver<'_>,
    locals: &HashMap<String, (String, u8)>,
) -> Option<Acq> {
    // `.method(` with an acquisition method name.
    if !toks[i].is_punct('.') {
        return None;
    }
    let m = toks.get(i + 1)?;
    if m.kind != TokKind::Ident || !ACQUIRE.contains(&m.text.as_str()) {
        return None;
    }
    if !toks.get(i + 2)?.is_punct('(') {
        return None;
    }
    let recv = i.checked_sub(1).map(|p| &toks[p])?;
    if recv.kind != TokKind::Ident {
        return None; // `foo().lock()` etc.: unresolvable, skip
    }
    let mut chain_start = i - 1;
    let rank = if i >= 3 && toks[i - 2].is_punct('.') && toks[i - 3].kind == TokKind::Ident {
        // `base.field.lock()`: field resolution ((impl type, field) when the
        // base is `self`, unique field name otherwise).
        chain_start = i - 3;
        if toks[i - 3].is_ident("self") {
            resolver.field(impl_type, &recv.text)?
        } else {
            // Longer chains (`a.b.field.lock()`) still resolve by field.
            while chain_start >= 2
                && toks[chain_start - 1].is_punct('.')
                && toks[chain_start - 2].kind == TokKind::Ident
            {
                chain_start -= 2;
            }
            resolver.field(None, &recv.text)?
        }
    } else {
        // Bare local: only a tracked `let` binding resolves.
        locals.get(&recv.text)?.clone()
    };

    // Is this statement a `let` binding of the guard?
    let mut let_name = None;
    if chain_start >= 2 && toks[chain_start - 1].is_punct('=') {
        let mut k = chain_start - 2;
        if toks[k].kind == TokKind::Ident {
            let name = toks[k].text.clone();
            if k >= 1 && toks[k - 1].is_ident("mut") {
                k -= 1;
            }
            if k >= 1 && toks[k - 1].is_ident("let") {
                let_name = Some(name);
            }
        }
    }
    Some(Acq { rank, let_name })
}

/// A held guard during the body walk.
struct Held {
    name: Option<String>,
    rank: (String, u8),
    line: u32,
    /// Token index of the `}` closing the guard's scope.
    scope_end: usize,
}

/// Walks one fn body enforcing strictly-increasing acquisition order.
fn check_fn_body(
    u: &FileUnit,
    body: (usize, usize),
    impl_type: Option<&str>,
    resolver: &Resolver<'_>,
    fn_ranks: &HashMap<String, Vec<(String, u8)>>,
    sink: &Sink<'_>,
) {
    let toks = &u.lexed.toks;
    let mut held: Vec<Held> = Vec::new();
    let mut locals: HashMap<String, (String, u8)> = HashMap::new();

    let hi = body.1.min(toks.len().saturating_sub(1));
    for i in body.0..=hi {
        held.retain(|h| h.scope_end > i);

        // `drop(name)` releases a named guard early.
        if toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                held.retain(|h| h.name.as_deref() != Some(name.text.as_str()));
            }
        }

        if let Some(acq) = acquisition_at(toks, i, impl_type, resolver, &locals) {
            report_order(&held, &acq.rank, toks[i].line, "acquiring", sink);
            if let Some(name) = acq.let_name {
                locals.insert(name.clone(), acq.rank.clone());
                held.push(Held {
                    name: Some(name),
                    rank: acq.rank,
                    line: toks[i].line,
                    scope_end: enclosing_scope_end(toks, i, hi),
                });
            }
            continue;
        }

        // One-level call resolution: `name(` or `.name(` where `name` is a
        // unique crate-local fn with known direct acquisitions.
        if !held.is_empty()
            && toks[i].kind == TokKind::Ident
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && !toks.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("fn"))
        {
            if let Some(ranks) = fn_ranks.get(&toks[i].text) {
                for rank in ranks {
                    report_order(
                        &held,
                        rank,
                        toks[i].line,
                        &format!("calling `{}`, which acquires", toks[i].text),
                        sink,
                    );
                }
            }
        }
    }
}

/// Emits a `lock-rank` finding for every held guard whose rank is not
/// strictly below the incoming one.
fn report_order(held: &[Held], rank: &(String, u8), line: u32, verb: &str, sink: &Sink<'_>) {
    for h in held {
        if h.rank.1 >= rank.1 {
            sink.emit(
                "lock-rank",
                line,
                format!(
                    "{verb} `{}` (rank {}) while holding `{}` (rank {}, acquired line {}): \
                     lock order must be strictly increasing",
                    rank.0, rank.1, h.rank.0, h.rank.1, h.line
                ),
            );
        }
    }
}

/// Token index of the `}` closing the block containing token `i`.
fn enclosing_scope_end(toks: &[Tok], i: usize, hi: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().take(hi + 1).skip(i) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
    }
    hi
}

#[cfg(test)]
mod tests {
    use super::super::{build_unit, FileUnit};
    use super::*;
    use std::path::PathBuf;

    const TABLE: &[(&str, u8)] =
        &[("LoadState", 5), ("PoolShard", 10), ("FrameTransient", 20), ("ResmanState", 30)];

    fn run_src(srcs: &[(&str, &str)]) -> Vec<String> {
        let units: Vec<FileUnit> =
            srcs.iter().map(|(rel, src)| build_unit(PathBuf::from(rel), src)).collect();
        let sinks: Vec<Sink<'_>> =
            units.iter().map(|u| Sink::new(&u.rel, &u.lexed.comments)).collect();
        run(&units, &sinks, TABLE);
        let mut out = Vec::new();
        for s in sinks {
            s.finish(&["lock-rank", "rank-table"], &mut out);
        }
        out.iter().map(|f| format!("{}:{}:{}", f.rule, f.path.display(), f.line)).collect()
    }

    #[test]
    fn inversion_on_self_fields_is_flagged() {
        let src = r#"
impl Inner {
    fn new() -> Self {
        Inner {
            state: Mutex::with_rank(S::default(), LockRank::ResmanState),
            shard: Mutex::with_rank(P::default(), LockRank::PoolShard),
        }
    }
    fn bad(&self) {
        let s = self.state.lock();
        let p = self.shard.lock();
        use_both(s, p);
    }
    fn good(&self) {
        let p = self.shard.lock();
        let s = self.state.lock();
        use_both(s, p);
    }
}
"#;
        let got = run_src(&[("crates/resman/src/manager.rs", src)]);
        assert_eq!(got, ["lock-rank:crates/resman/src/manager.rs:11"], "{got:?}");
    }

    #[test]
    fn drop_and_scope_release_guards() {
        let src = r#"
impl Inner {
    fn new() -> Self {
        Inner {
            state: Mutex::with_rank(S::default(), LockRank::ResmanState),
            shard: Mutex::with_rank(P::default(), LockRank::PoolShard),
        }
    }
    fn dropped(&self) {
        let s = self.state.lock();
        drop(s);
        let p = self.shard.lock();
        touch(p);
    }
    fn scoped(&self) {
        {
            let s = self.state.lock();
            touch(s);
        }
        let p = self.shard.lock();
        touch(p);
    }
}
"#;
        let got = run_src(&[("crates/resman/src/manager.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn same_rank_reacquisition_is_flagged() {
        let src = r#"
impl Ld {
    fn new() -> Self {
        Ld { outcome: Mutex::with_rank(0, LockRank::LoadState) }
    }
    fn twice(&self) {
        let a = self.outcome.lock();
        let b = self.outcome.lock();
        touch(a, b);
    }
}
"#;
        let got = run_src(&[("crates/storage/src/pool.rs", src)]);
        assert_eq!(got, ["lock-rank:crates/storage/src/pool.rs:8"], "{got:?}");
    }

    #[test]
    fn one_level_call_resolution() {
        let src = r#"
impl Inner {
    fn new() -> Self {
        Inner { state: Mutex::with_rank(0, LockRank::ResmanState) }
    }
    fn grab_state(&self) {
        let s = self.state.lock();
        touch(s);
    }
    fn caller(&self, other: &O) {
        let t = other.transient.write();
        self.grab_state();
        touch(t);
    }
}
impl O {
    fn new() -> Self {
        O { transient: RwLock::with_rank(None, LockRank::FrameTransient) }
    }
}
"#;
        // FrameTransient (20) held, call acquires ResmanState (30): fine.
        let got = run_src(&[("crates/resman/src/manager.rs", src)]);
        assert!(got.is_empty(), "{got:?}");

        // Swap the two ranks: now the call acquires a lower rank than the
        // one held, through the callee.
        let bad = src
            .replace("LockRank::ResmanState", "LockRank::LoadState")
            .replace("LockRank::FrameTransient", "LockRank::ResmanState");
        let got = run_src(&[("crates/resman/src/manager.rs", &bad)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(got[0].starts_with("lock-rank:"), "{got:?}");
    }

    #[test]
    fn unknown_rank_is_a_rank_table_finding() {
        let src = r#"
impl A {
    fn new() -> Self {
        A { s: Mutex::with_rank(0, LockRank::NotARealRank) }
    }
}
"#;
        let got = run_src(&[("crates/storage/src/pool.rs", src)]);
        assert_eq!(got, ["rank-table:crates/storage/src/pool.rs:4"], "{got:?}");
    }

    #[test]
    fn dead_rank_is_reported_against_the_table() {
        let lockorder = r#"
define_ranks! {
    LoadState = 5,
    PoolShard = 10,
    FrameTransient = 20,
    ResmanState = 30,
}
"#;
        let user = r#"
impl A {
    fn new() -> Self {
        A {
            a: Mutex::with_rank(0, LockRank::LoadState),
            b: Mutex::with_rank(0, LockRank::PoolShard),
            c: Mutex::with_rank(0, LockRank::FrameTransient),
        }
    }
}
"#;
        let got = run_src(&[
            ("crates/check/src/lockorder.rs", lockorder),
            ("crates/storage/src/pool.rs", user),
        ]);
        // ResmanState is declared in the table but never used.
        assert_eq!(got, ["rank-table:crates/check/src/lockorder.rs:6"], "{got:?}");
    }

    #[test]
    fn suppression_with_reason_applies() {
        let src = r#"
impl Inner {
    fn new() -> Self {
        Inner {
            state: Mutex::with_rank(S::default(), LockRank::ResmanState),
            shard: Mutex::with_rank(P::default(), LockRank::PoolShard),
        }
    }
    fn audited(&self) {
        let s = self.state.lock();
        // lint: allow(lock-rank) audited: disjoint key spaces
        let p = self.shard.lock();
        use_both(s, p);
    }
}
"#;
        let got = run_src(&[("crates/resman/src/manager.rs", src)]);
        assert!(got.is_empty(), "{got:?}");
    }
}
