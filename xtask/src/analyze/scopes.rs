//! Brace-scope, item, and region tracking over the token stream.
//!
//! Computes, for one lexed file:
//!
//! * brace depth at every token;
//! * `#[cfg(test)]`-gated regions (modules *and* single items, with the
//!   whole item body excluded — the old line-based linter only skipped the
//!   item's first line);
//! * loop-body regions (`for`/`while`/`loop`), with `impl Trait for Type`
//!   and `for<'a>` correctly *not* treated as loops;
//! * function items with their enclosing `impl` type, so workspace passes
//!   can resolve `self.field` receivers and do one level of intra-crate
//!   call resolution.

use super::lexer::{Tok, TokKind};

/// One `fn` item: its name, the type of the enclosing `impl` block (if
/// any), and the token-index range of its body (the `{` and matching `}`).
#[derive(Debug)]
pub struct FnItem {
    pub name: String,
    pub impl_type: Option<String>,
    /// Indices of the body's opening and closing brace tokens.
    pub body: (usize, usize),
}

/// Per-file scope facts, indexed by token position.
#[derive(Debug, Default)]
pub struct FileInfo {
    /// Brace depth *before* each token (its `{` not yet counted).
    pub depth: Vec<u32>,
    /// Token lies inside a `#[cfg(test)]`-gated module or item.
    pub in_test: Vec<bool>,
    /// Token lies inside a loop body.
    pub in_loop: Vec<bool>,
    /// Every `fn` item with a body.
    pub fns: Vec<FnItem>,
}

/// Index of the `}` matching the `{` at `open` (or the last token).
pub fn matching_brace(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Index of the `)` matching the `(` at `open` (or the last token).
pub fn matching_paren(toks: &[Tok], open: usize) -> usize {
    let mut depth = 0i64;
    for (i, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('(') {
            depth += 1;
        } else if t.is_punct(')') {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
    }
    toks.len().saturating_sub(1)
}

/// Builds the [`FileInfo`] for a token stream.
pub fn analyze_scopes(toks: &[Tok]) -> FileInfo {
    let n = toks.len();
    let mut info = FileInfo {
        depth: vec![0; n],
        in_test: vec![false; n],
        in_loop: vec![false; n],
        fns: Vec::new(),
    };

    // --- brace depth ---
    let mut d: u32 = 0;
    for (i, t) in toks.iter().enumerate() {
        info.depth[i] = d;
        if t.is_punct('{') {
            d += 1;
        } else if t.is_punct('}') {
            d = d.saturating_sub(1);
        }
    }

    // --- #[cfg(test)] regions ---
    let mut i = 0;
    while i < n {
        if toks[i].is_punct('#') && i + 1 < n && toks[i + 1].is_punct('[') {
            if let Some((gated, attr_end)) = parse_cfg_attr(toks, i) {
                if gated {
                    if let Some((lo, hi)) = gated_item_range(toks, attr_end + 1) {
                        for f in &mut info.in_test[lo..=hi.min(n - 1)] {
                            *f = true;
                        }
                        i = hi + 1;
                        continue;
                    }
                }
                i = attr_end + 1;
                continue;
            }
        }
        i += 1;
    }

    // --- loop regions ---
    let mut i = 0;
    while i < n {
        let t = &toks[i];
        let is_loop_kw = t.kind == TokKind::Ident
            && matches!(t.text.as_str(), "for" | "while" | "loop")
            && (t.text != "for" || is_loop_for(toks, i));
        if is_loop_kw {
            if let Some(open) = loop_body_open(toks, i) {
                let close = matching_brace(toks, open);
                for f in &mut info.in_loop[open + 1..close.max(open + 1)] {
                    *f = true;
                }
            }
        }
        i += 1;
    }

    // --- fn items (with enclosing impl type) ---
    collect_fns(toks, &mut info.fns);

    info
}

/// Parses `#[cfg(...)]` (or `#[cfg_attr]`, ignored) starting at the `#` at
/// `i`. Returns `(test_gated, index_of_closing_bracket)`, or `None` when
/// this is not an attribute.
fn parse_cfg_attr(toks: &[Tok], i: usize) -> Option<(bool, usize)> {
    if !toks[i].is_punct('#') || !toks.get(i + 1)?.is_punct('[') {
        return None;
    }
    let mut depth = 0i64;
    let mut end = i + 1;
    for (j, t) in toks.iter().enumerate().skip(i + 1) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                end = j;
                break;
            }
        }
    }
    let inner = &toks[i + 2..end];
    let is_cfg = inner.first().is_some_and(|t| t.is_ident("cfg"));
    if !is_cfg {
        return Some((false, end));
    }
    // Gated iff the cfg predicate mentions `test` outside a `not(...)`.
    let mut not_depth = 0i64;
    let mut pending_not = false;
    let mut gated = false;
    for t in inner {
        if t.is_ident("not") {
            pending_not = true;
        } else if t.is_punct('(') {
            if pending_not || not_depth > 0 {
                not_depth += 1;
            }
            pending_not = false;
        } else if t.is_punct(')') {
            if not_depth > 0 {
                not_depth -= 1;
            }
        } else if t.is_ident("test") && not_depth == 0 {
            gated = true;
        }
    }
    Some((gated, end))
}

/// Token range of the item following a test-gating attribute at `start`
/// (skipping further attributes): a `mod`/`fn`/`impl`/... item with a
/// brace body spans to its matching `}`; a `use`/field/semicolon item to
/// its `;`.
fn gated_item_range(toks: &[Tok], mut start: usize) -> Option<(usize, usize)> {
    // Skip stacked attributes.
    while start < toks.len() && toks[start].is_punct('#') {
        let (_, end) = parse_cfg_attr(toks, start)?;
        start = end + 1;
    }
    let mut j = start;
    let mut paren = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 && t.is_punct('{') {
            return Some((start, matching_brace(toks, j)));
        } else if paren == 0 && (t.is_punct(';') || t.is_punct(',')) {
            // `use x;` item, or a struct field / match arm.
            return Some((start, j));
        }
        j += 1;
    }
    Some((start, toks.len().saturating_sub(1)))
}

/// Is the `for` at `i` a loop keyword (vs `impl T for U` / `for<'a>`)?
fn is_loop_for(toks: &[Tok], i: usize) -> bool {
    if let Some(next) = toks.get(i + 1) {
        if next.is_punct('<') {
            return false; // higher-ranked trait bound
        }
    }
    match i.checked_sub(1).map(|p| &toks[p]) {
        // `impl Display for X` / `impl<T> Tr<T> for X`: preceded by the
        // trait path's last segment or its closing `>`.
        Some(prev) => !(prev.kind == TokKind::Ident || prev.is_punct('>')),
        None => true,
    }
}

/// Index of the `{` opening the body of the loop whose keyword is at `kw`.
fn loop_body_open(toks: &[Tok], kw: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(kw + 1) {
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 && t.is_punct('{') {
            return Some(j);
        } else if depth == 0 && t.is_punct(';') {
            return None;
        }
    }
    None
}

/// Collects `fn` items, tagging each with its enclosing `impl` type.
fn collect_fns(toks: &[Tok], out: &mut Vec<FnItem>) {
    // (impl_type, body_close_index) stack of enclosing impls.
    let mut impls: Vec<(String, usize)> = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        while impls.last().is_some_and(|&(_, close)| i > close) {
            impls.pop();
        }
        let t = &toks[i];
        if t.is_ident("impl") {
            if let Some((ty, open)) = parse_impl_header(toks, i) {
                impls.push((ty, matching_brace(toks, open)));
                i = open + 1;
                continue;
            }
        }
        if t.is_ident("fn") {
            if let Some(name_tok) = toks.get(i + 1) {
                if name_tok.kind == TokKind::Ident {
                    if let Some(open) = fn_body_open(toks, i + 2) {
                        let close = matching_brace(toks, open);
                        out.push(FnItem {
                            name: name_tok.text.clone(),
                            impl_type: impls.last().map(|(ty, _)| ty.clone()),
                            body: (open, close),
                        });
                        // Nested fns are rare; walk into the body anyway.
                        i += 2;
                        continue;
                    }
                }
            }
        }
        i += 1;
    }
}

/// Parses an `impl` header starting at `i`: returns the implemented type's
/// last path segment and the index of the body's `{`.
fn parse_impl_header(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut last_ident: Option<String> = None;
    let mut after_for: Option<String> = None;
    let mut saw_for = false;
    let mut angle = 0i64;
    for (j, t) in toks.iter().enumerate().skip(i + 1) {
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('{') && angle <= 0 {
            let ty = after_for.or(last_ident)?;
            return Some((ty, j));
        } else if t.is_punct(';') {
            return None;
        } else if t.kind == TokKind::Ident && angle <= 0 {
            if t.text == "for" {
                saw_for = true;
            } else if t.text != "where" {
                if saw_for && after_for.is_none() {
                    after_for = Some(t.text.clone());
                } else if !saw_for {
                    last_ident = Some(t.text.clone());
                }
            }
        }
    }
    None
}

/// Index of the `{` opening a fn body, scanning from just after the fn
/// name at `from`; `None` for a bodyless trait-method declaration.
fn fn_body_open(toks: &[Tok], from: usize) -> Option<usize> {
    // Skip generics + params: find the param `(`, then its matching `)`,
    // then the first top-level `{` or `;`.
    let mut j = from;
    let mut angle = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') {
            angle -= 1;
        } else if t.is_punct('(') && angle <= 0 {
            break;
        }
        j += 1;
    }
    let mut paren = 0i64;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
            if paren == 0 {
                j += 1;
                break;
            }
        }
        j += 1;
    }
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('{') {
            return Some(j);
        }
        if t.is_punct(';') {
            return None;
        }
        j += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyze::lexer::lex;

    #[test]
    fn cfg_test_module_region() {
        let l = lex("fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n");
        let info = analyze_scopes(&l.toks);
        let unwrap_idx = l.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(info.in_test[unwrap_idx]);
        let lib_idx = l.toks.iter().position(|t| t.is_ident("lib")).unwrap();
        assert!(!info.in_test[lib_idx]);
    }

    #[test]
    fn cfg_test_fn_item_excludes_whole_body() {
        let l = lex("#[cfg(test)]\nfn helper() {\n    x.unwrap();\n}\nfn lib() { y.unwrap(); }\n");
        let info = analyze_scopes(&l.toks);
        let first = l.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(info.in_test[first], "cfg(test) fn body is test code");
        let second = l.toks.iter().rposition(|t| t.is_ident("unwrap")).unwrap();
        assert!(!info.in_test[second]);
    }

    #[test]
    fn cfg_not_test_is_not_gated() {
        let l = lex("#[cfg(not(test))]\nfn lib() { x.unwrap(); }\n");
        let info = analyze_scopes(&l.toks);
        let idx = l.toks.iter().position(|t| t.is_ident("unwrap")).unwrap();
        assert!(!info.in_test[idx]);
    }

    #[test]
    fn impl_for_is_not_a_loop() {
        let l = lex("impl Display for Finding {\n    fn fmt(&self) { x.pin(k); }\n}\nfn f() { for p in 0..3 { y.pin(p); } }\n");
        let info = analyze_scopes(&l.toks);
        let first_pin = l.toks.iter().position(|t| t.is_ident("pin")).unwrap();
        assert!(!info.in_loop[first_pin], "impl-for must not open a loop region");
        let last_pin = l.toks.iter().rposition(|t| t.is_ident("pin")).unwrap();
        assert!(info.in_loop[last_pin]);
    }

    #[test]
    fn fns_get_impl_types() {
        let l = lex("impl Shard {\n    fn lock(&self) { }\n}\nimpl Display for Ticket { fn fmt(&self) {} }\nfn free() {}\n");
        let info = analyze_scopes(&l.toks);
        let names: Vec<(String, Option<String>)> =
            info.fns.iter().map(|f| (f.name.clone(), f.impl_type.clone())).collect();
        assert_eq!(names[0], ("lock".into(), Some("Shard".into())));
        assert_eq!(names[1], ("fmt".into(), Some("Ticket".into())));
        assert_eq!(names[2], ("free".into(), None));
    }
}
