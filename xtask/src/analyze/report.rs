//! Findings, suppressions, stable IDs, baselines, and output formats.

use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File containing the violation (workspace-relative).
    pub path: PathBuf,
    /// 1-based line number.
    pub line: u32,
    /// Rule name (as used in `lint: allow(...)`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
    /// Stable ID for baselining: a hash of rule, path, and message —
    /// deliberately *not* the line number, so unrelated edits above a
    /// finding do not churn the baseline.
    pub id: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} ({})",
            self.path.display(),
            self.line,
            self.rule,
            self.message,
            self.id
        )
    }
}

/// One `lint: allow(<rule>) <reason>` tag parsed from a comment.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub line: u32,
    pub has_reason: bool,
    pub used: bool,
}

/// Parses every suppression tag out of a file's per-line comments.
pub fn parse_suppressions(comments: &[(u32, String)]) -> Vec<Suppression> {
    const TAG: &str = "lint: allow(";
    let mut out = Vec::new();
    for (line, text) in comments {
        let mut rest = text.as_str();
        while let Some(pos) = rest.find(TAG) {
            rest = &rest[pos + TAG.len()..];
            let Some(close) = rest.find(')') else { break };
            let rule = rest[..close].trim().to_string();
            let reason = rest[close + 1..]
                .split("lint: allow(")
                .next()
                .unwrap_or("")
                .trim();
            out.push(Suppression {
                rule,
                line: *line,
                has_reason: !reason.is_empty(),
                used: false,
            });
            rest = &rest[close + 1..];
        }
    }
    out
}

/// Collects findings for one file, consulting suppressions as they are
/// emitted and recording which suppressions fired.
pub struct Sink<'a> {
    pub rel: &'a Path,
    pub suppressions: RefCell<Vec<Suppression>>,
    pub findings: RefCell<Vec<Finding>>,
}

impl<'a> Sink<'a> {
    pub fn new(rel: &'a Path, comments: &[(u32, String)]) -> Self {
        Sink {
            rel,
            suppressions: RefCell::new(parse_suppressions(comments)),
            findings: RefCell::new(Vec::new()),
        }
    }

    /// Emits a finding at `line` unless a reasoned suppression for `rule`
    /// sits on the same line or the line above. A reasonless tag never
    /// suppresses (the reason is mandatory) but still counts as *used* so
    /// it surfaces as a rule violation rather than a stale tag.
    pub fn emit(&self, rule: &'static str, line: u32, message: impl Into<String>) {
        let mut sup = self.suppressions.borrow_mut();
        let mut suppressed = false;
        for s in sup.iter_mut() {
            if s.rule == rule && (s.line == line || s.line + 1 == line) {
                s.used = true;
                if s.has_reason {
                    suppressed = true;
                }
            }
        }
        drop(sup);
        if suppressed {
            return;
        }
        self.findings.borrow_mut().push(Finding {
            path: self.rel.to_path_buf(),
            line,
            rule,
            message: message.into(),
            id: String::new(),
        });
    }

    /// Drains the findings and appends stale-suppression findings for
    /// tags that fired on nothing.
    pub fn finish(self, known_rules: &[&str], out: &mut Vec<Finding>) {
        out.extend(self.findings.into_inner());
        for s in self.suppressions.into_inner() {
            if s.used {
                continue;
            }
            let hint = if known_rules.contains(&s.rule.as_str()) {
                "the tag suppresses nothing — remove it"
            } else {
                "unknown rule name — fix or remove the tag"
            };
            out.push(Finding {
                path: self.rel.to_path_buf(),
                line: s.line,
                rule: "stale-suppression",
                message: format!("`lint: allow({})` {}", s.rule, hint),
                id: String::new(),
            });
        }
    }
}

/// FNV-1a, the workspace's zero-dependency stable hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Assigns every finding its stable ID: `PAYG-<16 hex>` hashed from
/// (rule, path, message, occurrence index of that triple).
pub fn assign_ids(findings: &mut [Finding]) {
    let mut seen: HashMap<String, u32> = HashMap::new();
    for f in findings.iter_mut() {
        let key = format!("{}|{}|{}", f.rule, f.path.display(), f.message);
        let occurrence = seen.entry(key.clone()).or_insert(0);
        f.id = format!("PAYG-{:016x}", fnv1a(format!("{key}|{occurrence}").as_bytes()));
        *occurrence += 1;
    }
}

/// A baseline: finding IDs accepted as pre-existing debt. Line-oriented
/// file, `#` comments allowed.
#[derive(Debug, Default)]
pub struct Baseline {
    pub ids: Vec<String>,
}

impl Baseline {
    pub fn load(path: &Path) -> std::io::Result<Baseline> {
        let text = std::fs::read_to_string(path)?;
        Ok(Baseline {
            ids: text
                .lines()
                .map(|l| l.split('#').next().unwrap_or("").trim())
                .filter(|l| !l.is_empty())
                .map(str::to_string)
                .collect(),
        })
    }

    /// Splits findings into (new, baselined) and returns baseline entries
    /// that matched nothing (candidates for pruning).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<Finding>, Vec<String>) {
        let mut fresh = Vec::new();
        let mut old = Vec::new();
        let mut matched: Vec<bool> = vec![false; self.ids.len()];
        for f in findings {
            match self.ids.iter().position(|id| *id == f.id) {
                Some(i) => {
                    matched[i] = true;
                    old.push(f);
                }
                None => fresh.push(f),
            }
        }
        let unmatched = self
            .ids
            .iter()
            .zip(&matched)
            .filter(|&(_, m)| !m)
            .map(|(id, _)| id.clone())
            .collect();
        (fresh, old, unmatched)
    }
}

/// Minimal JSON string escaping (the only JSON this tool emits).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (one object per finding).
pub fn to_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\": \"{}\", \"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            json_escape(&f.id),
            json_escape(f.rule),
            json_escape(&f.path.display().to_string()),
            f.line,
            json_escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_parsing_requires_reason_for_effect() {
        let comments = vec![
            (3, "lint: allow(unwrap) invariant: set above".to_string()),
            (9, "lint: allow(sleep)".to_string()),
        ];
        let sup = parse_suppressions(&comments);
        assert_eq!(sup.len(), 2);
        assert!(sup[0].has_reason);
        assert!(!sup[1].has_reason);
    }

    #[test]
    fn ids_are_stable_and_distinct_per_occurrence() {
        let mk = || Finding {
            path: PathBuf::from("a.rs"),
            line: 1,
            rule: "unwrap",
            message: "m".into(),
            id: String::new(),
        };
        let mut v = vec![mk(), mk()];
        assign_ids(&mut v);
        assert_ne!(v[0].id, v[1].id, "same triple, different occurrence");
        let mut w = vec![mk()];
        // Line drift must not change the ID.
        w[0].line = 99;
        assign_ids(&mut w);
        assert_eq!(v[0].id, w[0].id);
    }

    #[test]
    fn baseline_splits_and_reports_unmatched() {
        let mut v = vec![Finding {
            path: PathBuf::from("a.rs"),
            line: 1,
            rule: "unwrap",
            message: "m".into(),
            id: String::new(),
        }];
        assign_ids(&mut v);
        let bl = Baseline { ids: vec![v[0].id.clone(), "PAYG-dead".into()] };
        let (fresh, old, unmatched) = bl.apply(v);
        assert!(fresh.is_empty());
        assert_eq!(old.len(), 1);
        assert_eq!(unmatched, ["PAYG-dead"]);
    }

    #[test]
    fn baseline_load_strips_comments_and_blanks() {
        let dir = std::env::temp_dir().join("payg-analyze-baseline-test");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join("base.txt");
        std::fs::write(
            &p,
            "# payg-analyze baseline header\n\
             PAYG-0011223344556677  # a.rs:2 [unwrap]\n\
             \n\
             PAYG-8899aabbccddeeff\n",
        )
        .unwrap();
        let bl = Baseline::load(&p).unwrap();
        std::fs::remove_file(&p).unwrap();
        assert_eq!(bl.ids, ["PAYG-0011223344556677", "PAYG-8899aabbccddeeff"]);
    }

    #[test]
    fn json_escapes() {
        let mut v = vec![Finding {
            path: PathBuf::from("a\"b.rs"),
            line: 1,
            rule: "unwrap",
            message: "say \"hi\"\n".into(),
            id: "PAYG-x".into(),
        }];
        assign_ids(&mut v);
        let j = to_json(&v);
        assert!(j.contains("say \\\"hi\\\"\\n"));
    }
}
