//! The per-file rules: the eight legacy rules ported from the line/regex
//! linter onto the token stream, plus `span-discipline` (io-path events
//! must be emitted via `emit_tagged`). Rule names and `lint: allow(<rule>)`
//! suppressions are unchanged; what changed is that string literals,
//! comments, and doc text can no longer trigger a rule or mask a real hit,
//! and `#[cfg(test)]` exemption now covers whole gated items (the
//! line-based linter only skipped a gated item's first line).

use super::lexer::{Lexed, Tok, TokKind};
use super::scopes::FileInfo;
use super::report::Sink;
use std::path::Path;

/// Which rules apply to a (workspace-relative) path.
pub struct Scope {
    pub unwrap: bool,
    pub raw_lock: bool,
    pub safety: bool,
    pub sleep: bool,
    pub pin_in_loop: bool,
    pub raw_counter: bool,
    pub stringly_error: bool,
    pub pool_read_page: bool,
    pub pef_decode: bool,
    pub span_discipline: bool,
    pub snapshot_escape: bool,
}

/// Event kinds that carry page provenance: every emission must go through
/// `emit_tagged` so the originating span and batch id reach the flight
/// recorder. A plain `.emit(` of one of these drops the attribution that
/// EXPLAIN ANALYZE reconciles coalesced batches with.
const SPAN_TAGGED_KINDS: &[&str] =
    &["IoSubmitted", "IoBatchIssued", "IoCompleted", "LoadRetried"];

impl Scope {
    pub fn any(&self) -> bool {
        self.unwrap
            || self.raw_lock
            || self.safety
            || self.sleep
            || self.pin_in_loop
            || self.raw_counter
            || self.stringly_error
            || self.pool_read_page
            || self.pef_decode
            || self.span_discipline
            || self.snapshot_escape
    }
}

pub fn scope_for(rel: &Path) -> Scope {
    let s = rel.to_string_lossy().replace('\\', "/");
    let concurrency_core = s.starts_with("crates/storage/src")
        || s.starts_with("crates/resman/src")
        || s.starts_with("crates/core/src");
    let in_crates_src = (s.starts_with("crates/") && s.contains("/src/")) || s.starts_with("src/");
    let sync_alias_module = s.ends_with("/sync.rs");
    // payg-check implements the wrappers: raw std::sync use is its job.
    let is_check_crate = s.starts_with("crates/check/");
    // payg-obs implements Counter/Gauge/Histogram on top of raw atomics.
    let is_obs_crate = s.starts_with("crates/obs/");
    // The error module owns the taxonomy: it is the one sanctioned
    // construction site for the stringly variants.
    let is_error_taxonomy = s == "crates/storage/src/error.rs";
    Scope {
        unwrap: concurrency_core,
        raw_lock: concurrency_core && !sync_alias_module && !is_check_crate,
        safety: in_crates_src && !is_check_crate,
        sleep: in_crates_src && !is_check_crate,
        pin_in_loop: s.starts_with("crates/core/src/datavec/"),
        raw_counter: in_crates_src && !is_check_crate && !is_obs_crate,
        stringly_error: in_crates_src && !is_error_taxonomy,
        // The cold-path I/O stage owns every store read the pool makes.
        pool_read_page: s == "crates/storage/src/pool.rs",
        // The PEF module owns the only sanctioned full partition decode;
        // readers elsewhere must stay in the compressed domain
        // (PartitionRef::next_geq / read_into).
        pef_decode: in_crates_src && s != "crates/encoding/src/pef.rs",
        // The pool and core crates emit I/O-path events on behalf of
        // queries; plain emits there lose the span/batch provenance.
        span_discipline: s.starts_with("crates/storage/src")
            || s.starts_with("crates/core/src"),
        // The version module owns the snapshot protocol: everywhere else in
        // the table crate, fragment access must go through a pinned
        // Partition (main_frag()/delta_view()), never the raw accessors.
        snapshot_escape: s.starts_with("crates/table/src") && !s.ends_with("/version.rs"),
    }
}

/// True when tokens at `i` spell the path `a::b` for the given segments.
fn path2(toks: &[Tok], i: usize, a: &str, b: &str) -> bool {
    toks.len() > i + 3
        && toks[i].is_ident(a)
        && toks[i + 1].is_punct(':')
        && toks[i + 2].is_punct(':')
        && toks[i + 3].is_ident(b)
}

/// True when tokens at `i` spell `.name(` — a method call.
fn method_call(toks: &[Tok], i: usize, name: &str) -> bool {
    toks.len() > i + 2
        && toks[i].is_punct('.')
        && toks[i + 1].is_ident(name)
        && toks[i + 2].is_punct('(')
}

/// Runs the eight legacy rules over one file.
pub fn run(rel: &Path, lexed: &Lexed, info: &FileInfo, sink: &Sink<'_>) {
    let scope = scope_for(rel);
    if !scope.any() {
        return;
    }
    let toks = &lexed.toks;

    for i in 0..toks.len() {
        if info.in_test[i] {
            continue;
        }
        let line = toks[i].line;

        if scope.unwrap {
            let is_unwrap = method_call(toks, i, "unwrap")
                && toks.get(i + 3).is_some_and(|t| t.is_punct(')'));
            if is_unwrap || method_call(toks, i, "expect") {
                sink.emit(
                    "unwrap",
                    toks[i + 1].line,
                    "unwrap()/expect() in library code: return a typed error, \
                     or suppress with a reason if this is a real invariant",
                );
            }
        }

        if scope.safety && toks[i].is_ident("unsafe") {
            // An `unsafe {}` usage needs a `// SAFETY:` justification in the
            // contiguous comment block ending on its line or the line above.
            // An `unsafe fn` declaration states a caller contract, not a
            // local justification: its rustdoc `# Safety` section counts,
            // searched through the doc block above (attribute lines like
            // `#[inline]` may sit between it and the `fn`).
            let is_decl = toks.get(i + 1).is_some_and(|t| t.is_ident("fn"));
            let mut annotated = false;
            let mut l = line;
            let mut gap_allowance = if is_decl { 2u32 } else { 0 };
            loop {
                match lexed.comment_on(l) {
                    Some(c) if c.contains("SAFETY:") || (is_decl && c.contains("# Safety")) => {
                        annotated = true;
                        break;
                    }
                    Some(_) => {}
                    None if l == line => {} // the unsafe line itself need not comment
                    None if gap_allowance > 0 => gap_allowance -= 1,
                    None => break,
                }
                if l == 0 {
                    break;
                }
                l -= 1;
            }
            if !annotated {
                let hint = if is_decl {
                    "unsafe fn without a rustdoc `# Safety` section or a \
                     `// SAFETY:` comment above"
                } else {
                    "unsafe without a `// SAFETY:` comment in the comment \
                     block directly above"
                };
                sink.emit("safety", line, hint);
            }
        }

        if scope.sleep && path2(toks, i, "thread", "sleep") {
            sink.emit(
                "sleep",
                line,
                "thread::sleep in library code: inject a sleeper/clock \
                 or synchronize with condvars",
            );
        }

        if scope.raw_counter && toks[i].is_ident("AtomicU64") && is_raw_counter_decl(toks, i) {
            sink.emit(
                "raw-counter",
                line,
                "raw AtomicU64 declared outside payg-obs: register a \
                 payg_obs::Counter/Gauge so the metric is exported, or \
                 suppress with a reason if this is not a metric",
            );
        }

        if scope.stringly_error && toks[i].is_ident("StorageError") {
            let corrupt = path2(toks, i, "StorageError", "Corrupt")
                && toks.get(i + 4).is_some_and(|t| t.is_punct('('));
            let other = path2(toks, i, "StorageError", "Other");
            if corrupt || other {
                sink.emit(
                    "stringly-error",
                    line,
                    "stringly StorageError constructed outside storage::error: \
                     use StorageError::corrupt()/corrupt_file() or a structured \
                     variant so the fault taxonomy stays centralized",
                );
            }
        }

        if scope.pool_read_page && method_call(toks, i, "read_page") {
            sink.emit(
                "pool-read-page",
                toks[i + 1].line,
                "direct store read in pool shard code: route it through \
                 iostage (fetch_with_retry or a staged fetch request) so \
                 retry, fault, and physical-read accounting stay unified",
            );
        }

        if scope.pef_decode
            && toks[i].is_ident("decode_partition")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            sink.emit(
                "pef-decode",
                line,
                "raw decode_partition call outside the pef module: scan in \
                 the compressed domain (PartitionRef::next_geq / read_into) \
                 so posting probes never materialize whole partitions",
            );
        }

        if scope.span_discipline && method_call(toks, i, "emit") {
            // The first argument names the event kind; scan it (up to the
            // first comma) for one of the provenance-carrying kinds. The
            // kind may be path-qualified (`payg_obs::EventKind::IoSubmitted`).
            let mut j = i + 3;
            while j < toks.len() && !toks[j].is_punct(',') && !toks[j].is_punct(')') {
                if SPAN_TAGGED_KINDS.iter().any(|k| toks[j].is_ident(k)) {
                    sink.emit(
                        "span-discipline",
                        toks[i + 1].line,
                        "io-path event emitted without provenance: use \
                         emit_tagged with the originating span and batch id \
                         so EXPLAIN ANALYZE can attribute coalesced I/O",
                    );
                    break;
                }
                j += 1;
            }
        }

        if scope.snapshot_escape
            && (method_call(toks, i, "main") || method_call(toks, i, "delta"))
        {
            sink.emit(
                "snapshot-escape",
                toks[i + 1].line,
                "raw fragment accessor outside the version module: read \
                 through a pinned Snapshot/Partition (main_frag()/\
                 delta_view()) so the query stays on one published table \
                 version across a concurrent merge",
            );
        }

        if scope.pin_in_loop && info.in_loop[i] && method_call(toks, i, "pin") {
            sink.emit(
                "pin-in-loop",
                toks[i + 1].line,
                "pool pin inside a per-chunk loop: warm scans must pin \
                 each page once per run — hoist into a per-page helper \
                 (guard cache / load_chunk_run) or suppress with a reason",
            );
        }
    }

    if scope.raw_lock {
        // Line-based like the original: a line naming `std::sync` together
        // with a lock type, or naming `parking_lot` at all, is a violation.
        let mut i = 0;
        while i < toks.len() {
            if info.in_test[i] {
                i += 1;
                continue;
            }
            let line = toks[i].line;
            let end = toks[i..].iter().position(|t| t.line != line).map_or(toks.len(), |p| i + p);
            let line_toks = &toks[i..end];
            let has_std_sync = (0..line_toks.len()).any(|j| path2(line_toks, j, "std", "sync"));
            let has_lock_type = line_toks.iter().any(|t| {
                t.is_ident("Mutex") || t.is_ident("RwLock") || t.is_ident("Condvar")
            });
            let has_pl = line_toks.iter().any(|t| t.is_ident("parking_lot"));
            if (has_std_sync && has_lock_type) || has_pl {
                sink.emit(
                    "raw-lock",
                    line,
                    "raw lock outside the sync alias module: use the \
                     crate::sync wrappers so payg_check models cover it",
                );
            }
            i = end;
        }
    }
}

/// Whether the `AtomicU64` ident at `i` is a *declaration* (`x: AtomicU64`,
/// `static X: AtomicU64`, optionally path-qualified). `AtomicU64::new(..)`
/// and `use` imports are not declarations.
fn is_raw_counter_decl(toks: &[Tok], i: usize) -> bool {
    // Constructor / associated path: `AtomicU64::...`.
    if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
    {
        return false;
    }
    // Walk back over a qualifying module path (`std::sync::atomic::`).
    let mut j = i;
    while j >= 3
        && toks[j - 1].is_punct(':')
        && toks[j - 2].is_punct(':')
        && toks[j - 3].kind == TokKind::Ident
    {
        j -= 3;
    }
    // What remains before the path must be a single type-annotation colon
    // preceded by the field/static name.
    j >= 2
        && toks[j - 1].is_punct(':')
        && !toks.get(j.wrapping_sub(2)).is_some_and(|t| t.is_punct(':'))
        && toks[j - 2].kind == TokKind::Ident
}
