//! Guard-escape pass.
//!
//! A [`PageGuard`] pins a frame: while it lives, the page cannot be evicted
//! and its memory stays charged. Holding one across a blocking operation —
//! a lock acquisition, a `Sleeper` backoff, an I/O-stage submit-and-wait —
//! stretches pin lifetimes from "the microseconds a chunk is read" to "as
//! long as the lock/sleep/IO takes", which defeats piecewise residency and
//! can deadlock against eviction walking the same shard.
//!
//! The pass is deliberately direct-only (no call resolution): a `let`
//! binding produced by `.pin(..)`, `get_or_pin(..)`, or `PageGuard::new(..)`
//! in `crates/storage` / `crates/core` library code is tracked to the end
//! of its block (or `drop(name)`); any blocking event inside that region is
//! flagged. Architectural guard-holding (the scan guard cache) lives in
//! struct fields, not `let` bindings, and is not flagged.

use super::lexer::{Tok, TokKind};
use super::report::Sink;
use super::FileUnit;

/// Is this file in the pass's scope?
pub fn in_scope(u: &FileUnit) -> bool {
    let s = u.rel.to_string_lossy().replace('\\', "/");
    s.starts_with("crates/storage/src") || s.starts_with("crates/core/src")
}

/// Runs the pass over one file.
pub fn run(u: &FileUnit, sink: &Sink<'_>) {
    if !in_scope(u) {
        return;
    }
    let toks = &u.lexed.toks;

    // Guard bindings: (name, declared line, live-from index, scope-end
    // index). A binding only exists once its statement completes, so
    // blocking events inside the initializer itself (e.g. the shard lock
    // taken while computing what to pin) do not count.
    let mut live: Vec<(String, u32, usize, usize)> = Vec::new();

    for i in 0..toks.len() {
        if u.info.in_test[i] {
            continue;
        }
        live.retain(|&(_, _, _, end)| end > i);

        // `drop(name)` ends a binding early.
        if toks[i].is_ident("drop")
            && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            && toks.get(i + 3).is_some_and(|t| t.is_punct(')'))
        {
            if let Some(name) = toks.get(i + 2).filter(|t| t.kind == TokKind::Ident) {
                live.retain(|(n, _, _, _)| *n != name.text);
            }
        }

        // New guard binding: `let [mut] name = <expr containing a pin>;`.
        if toks[i].is_ident("let") {
            if let Some((name, stmt_end)) = let_binding(toks, i) {
                if statement_pins(&toks[i..=stmt_end]) {
                    live.push((
                        name,
                        toks[i].line,
                        stmt_end,
                        enclosing_scope_end(toks, stmt_end),
                    ));
                    continue;
                }
            }
        }

        let held: Vec<&(String, u32, usize, usize)> =
            live.iter().filter(|&&(_, _, from, _)| i > from).collect();
        let Some(&(name, line, _, _)) = held.last() else { continue };
        if let Some(event) = blocking_event(toks, i) {
            sink.emit(
                "guard-escape",
                toks[i].line,
                format!(
                    "page guard `{name}` (pinned line {line}) is still live across {event}: \
                     pins must not span blocking operations — drop the guard first, \
                     or suppress with a reason if the hold is the point"
                ),
            );
        }
    }
}

/// Parses `let [mut] name = … ;` starting at the `let` at `i`; returns the
/// binding name and the token index of the terminating `;`.
fn let_binding(toks: &[Tok], i: usize) -> Option<(String, usize)> {
    let mut j = i + 1;
    if toks.get(j)?.is_ident("mut") {
        j += 1;
    }
    let name = toks.get(j)?;
    if name.kind != TokKind::Ident {
        return None; // destructuring patterns: skip
    }
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(j) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return None; // ran off the enclosing block
            }
        } else if t.is_punct(';') && depth == 0 {
            return Some((name.text.clone(), k));
        }
    }
    None
}

/// Does this statement's token span produce a page guard?
fn statement_pins(stmt: &[Tok]) -> bool {
    for (k, t) in stmt.iter().enumerate() {
        let dot_call = |name: &str| {
            t.is_punct('.')
                && stmt.get(k + 1).is_some_and(|x| x.is_ident(name))
                && stmt.get(k + 2).is_some_and(|x| x.is_punct('('))
        };
        if dot_call("pin") || dot_call("get_or_pin") {
            // Accounting pins are not guard producers: `resman.pin(rid)`
            // bumps a refcount and returns bool; `pins.pin(..)` registers
            // with the leak tracker. Only pool/cache pins yield guards.
            let receiver_is_accounting = k > 0
                && (stmt[k - 1].is_ident("resman") || stmt[k - 1].is_ident("pins"));
            if !receiver_is_accounting {
                return true;
            }
        }
        if t.is_ident("PageGuard")
            && stmt.get(k + 1).is_some_and(|x| x.is_punct(':'))
            && stmt.get(k + 2).is_some_and(|x| x.is_punct(':'))
            && stmt.get(k + 3).is_some_and(|x| x.is_ident("new"))
        {
            return true;
        }
    }
    false
}

/// Is the token at `i` a blocking event? Returns its description.
fn blocking_event(toks: &[Tok], i: usize) -> Option<&'static str> {
    let dot_call = |name: &str| {
        toks[i].is_punct('.')
            && toks.get(i + 1).is_some_and(|x| x.is_ident(name))
            && toks.get(i + 2).is_some_and(|x| x.is_punct('('))
    };
    if dot_call("lock") || dot_call("try_lock") {
        return Some("a lock acquisition");
    }
    if dot_call("wait") {
        return Some("a blocking wait");
    }
    if dot_call("submit") {
        return Some("an I/O-stage submit");
    }
    if dot_call("sleep") {
        return Some("a sleeper call");
    }
    // The injected sleeper is a closure: `(self.sleeper)(d)` / `sleeper(d)`.
    if toks[i].is_ident("sleeper") {
        let next = toks.get(i + 1)?;
        if next.is_punct('(') {
            return Some("a sleeper call");
        }
        if next.is_punct(')') && toks.get(i + 2).is_some_and(|x| x.is_punct('(')) {
            return Some("a sleeper call");
        }
    }
    None
}

/// Token index of the `}` closing the block containing token `i`.
fn enclosing_scope_end(toks: &[Tok], i: usize) -> usize {
    let mut depth = 0i64;
    for (j, t) in toks.iter().enumerate().skip(i) {
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            if depth == 0 {
                return j;
            }
            depth -= 1;
        }
    }
    toks.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::super::build_unit;
    use super::*;
    use std::path::PathBuf;

    fn run_src(rel: &str, src: &str) -> Vec<(String, u32)> {
        let u = build_unit(PathBuf::from(rel), src);
        let sink = Sink::new(&u.rel, &u.lexed.comments);
        run(&u, &sink);
        let mut out = Vec::new();
        sink.finish(&["guard-escape"], &mut out);
        out.into_iter().map(|f| (f.rule.to_string(), f.line)).collect()
    }

    #[test]
    fn guard_across_lock_and_sleep_is_flagged() {
        let src = "fn f(&self) {\n    let g = self.pool.pin(key)?;\n    let st = self.state.lock();\n    (self.sleeper)(backoff);\n    touch(g, st);\n}\n";
        let got = run_src("crates/storage/src/pool.rs", src);
        assert_eq!(
            got,
            [("guard-escape".to_string(), 3), ("guard-escape".to_string(), 4)],
            "{got:?}"
        );
    }

    #[test]
    fn dropped_guard_is_not_flagged() {
        let src = "fn f(&self) {\n    let g = self.pool.pin(key)?;\n    use_page(&g);\n    drop(g);\n    let st = self.state.lock();\n    touch(st);\n}\n";
        assert!(run_src("crates/storage/src/pool.rs", src).is_empty());
    }

    #[test]
    fn scope_exit_releases_the_guard() {
        let src = "fn f(&self) {\n    {\n        let g = self.pool.pin(key)?;\n        use_page(&g);\n    }\n    self.queue.submit(req);\n}\n";
        assert!(run_src("crates/storage/src/pool.rs", src).is_empty());
    }

    #[test]
    fn wait_and_submit_are_events() {
        let src = "fn f(&self) {\n    let g = cache.get_or_pin(p, pin_fn)?;\n    let t = stage.submit(req);\n    ticket.wait();\n    touch(g, t);\n}\n";
        let got = run_src("crates/core/src/datavec/paged.rs", src);
        assert_eq!(got.len(), 2, "{got:?}");
    }

    #[test]
    fn out_of_scope_crates_are_ignored() {
        let src = "fn f(&self) {\n    let g = self.pool.pin(key)?;\n    let st = self.state.lock();\n    touch(g, st);\n}\n";
        assert!(run_src("crates/table/src/lib.rs", src).is_empty());
        assert!(run_src("crates/storage/tests/chaos.rs", src).is_empty());
    }

    #[test]
    fn suppression_with_reason_applies() {
        let src = "fn f(&self) {\n    let g = self.pool.pin(key)?;\n    // lint: allow(guard-escape) helper pages stay pinned by design\n    self.pinned_helpers.lock().push(g);\n}\n";
        assert!(run_src("crates/core/src/dict/paged.rs", src).is_empty());
    }
}
