//! A comment/string-aware lexer for Rust source.
//!
//! This is not a full Rust lexer — it recognizes exactly what the analysis
//! passes need: identifiers, numbers, string/char literals (including raw
//! and byte strings), lifetimes, and single-character punctuation, with
//! every token carrying its 1-based line number. Comments (line, block —
//! nested — and doc) are kept out of the token stream and collected into a
//! per-line side table, so suppression tags and `SAFETY:` annotations can
//! still be found while string literals and comment text can no longer
//! trigger (or mask) rule matches.

/// Kind of one lexed token.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `for`, `Mutex`, `r#type`, …).
    Ident,
    /// Numeric literal (`0`, `0xFF`, `1.5e3`, `64u32`, …).
    Num,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`). The token
    /// text is the literal's *content* (delimiters stripped, escapes kept
    /// verbatim).
    Str,
    /// Char or byte literal (`'a'`, `b'\n'`).
    Char,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// One punctuation character (`.`, `:`, `{`, …).
    Punct,
}

/// One token: kind, text, and the 1-based line it starts on.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// True for an identifier token with exactly this text.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True for a punctuation token with exactly this character.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == c.len_utf8() && self.text.starts_with(c)
    }
}

/// A lexed file: the code token stream plus per-line comment text.
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// Comment text by 1-based line. A block comment spanning lines
    /// contributes each of its lines separately; multiple comments on one
    /// line are concatenated (space-joined).
    pub comments: Vec<(u32, String)>,
}

impl Lexed {
    /// All comment text attached to `line`, space-joined.
    pub fn comment_on(&self, line: u32) -> Option<&str> {
        // `comments` is sorted by construction (single forward pass).
        self.comments
            .binary_search_by_key(&line, |&(l, _)| l)
            .ok()
            .map(|i| self.comments[i].1.as_str())
    }
}

/// Lexes `src` (see module docs for the token model).
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    let push_comment = |line: u32, text: &str, comments: &mut Vec<(u32, String)>| {
        match comments.last_mut() {
            Some((l, existing)) if *l == line => {
                existing.push(' ');
                existing.push_str(text);
            }
            _ => comments.push((line, text.to_string())),
        }
    };

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            // Line comment (incl. doc comments).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                push_comment(line, src[start..i].trim_start_matches('/').trim(), &mut out.comments);
            }
            // Block comment, possibly nested and multi-line.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let mut depth = 1;
                i += 2;
                let mut seg_start = i;
                while i < b.len() && depth > 0 {
                    if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else if b[i] == b'\n' {
                        push_comment(line, src[seg_start..i].trim(), &mut out.comments);
                        line += 1;
                        i += 1;
                        seg_start = i;
                    } else {
                        i += 1;
                    }
                }
                let seg_end = i.saturating_sub(2).max(seg_start);
                push_comment(line, src[seg_start..seg_end].trim(), &mut out.comments);
            }
            // String literals: plain, byte, raw, raw byte — and raw idents.
            b'"' => {
                let (content, ni, nl) = lex_plain_string(src, i, line);
                out.toks.push(Tok { kind: TokKind::Str, text: content, line });
                i = ni;
                line = nl;
            }
            b'r' | b'b' if is_string_start(b, i) => {
                let tok_line = line;
                let (kind, content, ni, nl) = lex_prefixed_literal(src, i, line);
                out.toks.push(Tok { kind, text: content, line: tok_line });
                i = ni;
                line = nl;
            }
            // Lifetime or char literal.
            b'\'' => {
                if is_lifetime(b, i) {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                        i += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::Lifetime,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let (content, ni, nl) = lex_char(src, i, line);
                    out.toks.push(Tok { kind: TokKind::Char, text: content, line });
                    i = ni;
                    line = nl;
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                while i < b.len() && (b[i].is_ascii_alphanumeric() || b[i] == b'_') {
                    i += 1;
                }
                out.toks.push(Tok { kind: TokKind::Ident, text: src[start..i].to_string(), line });
            }
            _ if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d.is_ascii_alphanumeric() || d == b'_' {
                        i += 1;
                    } else if d == b'.' && b.get(i + 1).is_some_and(u8::is_ascii_digit) {
                        // `1.5` continues the number; `0..5` does not.
                        i += 1;
                    } else if (d == b'+' || d == b'-')
                        && matches!(b.get(i - 1), Some(&b'e') | Some(&b'E'))
                        && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        // Exponent sign: `1e+3`.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok { kind: TokKind::Num, text: src[start..i].to_string(), line });
            }
            _ => {
                // One punctuation char at a time (multi-char operators are
                // matched as token sequences by the passes).
                let ch_len = src[i..].chars().next().map_or(1, char::len_utf8);
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: src[i..i + ch_len].to_string(),
                    line,
                });
                i += ch_len;
            }
        }
    }
    out
}

/// Is the `r`/`b` at `i` the start of a string/char literal prefix (as
/// opposed to a plain identifier starting with that letter)?
fn is_string_start(b: &[u8], i: usize) -> bool {
    match b[i] {
        b'r' => match b.get(i + 1) {
            Some(&b'"') => true,
            Some(&b'#') => {
                // r#"…"# is a raw string; r#ident is a raw identifier.
                let mut j = i + 1;
                while b.get(j) == Some(&b'#') {
                    j += 1;
                }
                b.get(j) == Some(&b'"')
            }
            _ => false,
        },
        b'b' => matches!(b.get(i + 1), Some(&b'"') | Some(&b'\''))
            || (b.get(i + 1) == Some(&b'r')
                && matches!(b.get(i + 2), Some(&b'"') | Some(&b'#'))),
        _ => false,
    }
}

/// Is the `'` at `i` a lifetime (vs a char literal)?
fn is_lifetime(b: &[u8], i: usize) -> bool {
    // 'x followed by another quote is a char ('a'); otherwise a lifetime.
    let Some(&first) = b.get(i + 1) else { return false };
    if !(first.is_ascii_alphabetic() || first == b'_') {
        return false;
    }
    let mut j = i + 2;
    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
        j += 1;
    }
    b.get(j) != Some(&b'\'')
}

/// Lexes a `"…"` string starting at `i`; returns (content, next_i, line).
fn lex_plain_string(src: &str, i: usize, mut line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'"' => return (src[start..j].to_string(), j + 1, line),
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (src[start..j.min(src.len())].to_string(), j, line)
}

/// Lexes a raw/byte string or byte char starting at `i` (`r"`, `r#"`,
/// `b"`, `br"`, `b'`); returns (kind, content, next_i, line).
fn lex_prefixed_literal(src: &str, i: usize, mut line: u32) -> (TokKind, String, usize, u32) {
    let b = src.as_bytes();
    let mut j = i;
    // Skip the prefix letters.
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') {
        j += 1;
    }
    if b.get(j) == Some(&b'\'') {
        let (content, ni, nl) = lex_char(src, j, line);
        return (TokKind::Char, content, ni, nl);
    }
    let mut hashes = 0usize;
    while b.get(j) == Some(&b'#') {
        hashes += 1;
        j += 1;
    }
    debug_assert_eq!(b.get(j), Some(&b'"'));
    j += 1;
    let start = j;
    let raw = src[i..].starts_with('r') || src[i..].starts_with("br");
    while j < b.len() {
        match b[j] {
            b'\\' if !raw => j += 2,
            b'"' => {
                // A raw string closes only on `"` followed by its hashes.
                let closes = (0..hashes).all(|k| b.get(j + 1 + k) == Some(&b'#'));
                if closes {
                    return (TokKind::Str, src[start..j].to_string(), j + 1 + hashes, line);
                }
                j += 1;
            }
            b'\n' => {
                line += 1;
                j += 1;
            }
            _ => j += 1,
        }
    }
    (TokKind::Str, src[start..j.min(src.len())].to_string(), j, line)
}

/// Lexes a char literal starting at the `'` at `i`.
fn lex_char(src: &str, i: usize, line: u32) -> (String, usize, u32) {
    let b = src.as_bytes();
    let mut j = i + 1;
    let start = j;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            b'\'' => return (src[start..j].to_string(), j + 1, line),
            // An unterminated char before a newline means this was not
            // actually a char literal; bail out conservatively.
            b'\n' => return (src[start..j].to_string(), j, line),
            _ => j += 1,
        }
    }
    (src[start..j.min(src.len())].to_string(), j, line)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).toks.into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn strings_and_comments_leave_the_code_stream() {
        let l = lex("let x = \"unsafe .unwrap()\"; // trailing .expect(\n");
        assert!(l.toks.iter().all(|t| t.text != "unwrap" && t.text != "expect"));
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
        assert!(l.comment_on(1).unwrap().contains(".expect("));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let l = lex("let s = r#\"has \"quotes\" and unsafe\"#; f();");
        let strs: Vec<_> = l.toks.iter().filter(|t| t.kind == TokKind::Str).collect();
        assert_eq!(strs.len(), 1);
        assert!(strs[0].text.contains("\"quotes\""));
        assert!(l.toks.iter().any(|t| t.is_ident("f")));
    }

    #[test]
    fn raw_identifiers_are_idents() {
        let t = texts("let r#type = 1;");
        assert!(t.iter().any(|(k, s)| *k == TokKind::Ident && s == "type"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let l = lex("a /* one /* two */ still */ b\n/* x\n y */ c");
        let idents: Vec<_> =
            l.toks.iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone()).collect();
        assert_eq!(idents, ["a", "b", "c"]);
        assert_eq!(l.toks.last().unwrap().line, 3);
        assert!(l.comment_on(2).unwrap().contains('x'));
    }

    #[test]
    fn lifetimes_vs_chars() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let e = '\\''; }");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Lifetime).count(), 2);
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let t = texts("for i in 0..64 { let f = 1.5e+3; }");
        assert!(t.contains(&(TokKind::Num, "0".into())));
        assert!(t.contains(&(TokKind::Num, "64".into())));
        assert!(t.contains(&(TokKind::Num, "1.5e+3".into())));
    }

    #[test]
    fn line_numbers_follow_multiline_strings() {
        let l = lex("let s = \"line\none\";\nlet t = 2;");
        let t2 = l.toks.iter().find(|t| t.is_ident("t")).unwrap();
        assert_eq!(t2.line, 3);
    }
}
