//! Obs-vocabulary conformance pass.
//!
//! `payg_obs::names` is the metric vocabulary: every name is declared once
//! through `declare_names!`, which also emits the introspection table
//! `names::ALL` this pass consumes. Three checks:
//!
//! * `obs-undeclared` — a metric name reaching a registry handle method
//!   (`counter`, `gauge`, `histogram`, and their `_labeled` forms) in
//!   library code that is not in the vocabulary: a bare string literal not
//!   matching any declared wire name, a `names::X` path whose `X` is not a
//!   declared const, or a SCREAMING_CASE ident that matches no declared
//!   const. Variable arguments are skipped, not guessed.
//! * `obs-label-arity` — a `*_labeled` registration passing a literal label
//!   slice whose keys differ from the declared label keys for that name.
//! * `obs-dead` — a declared name that no code anywhere (library, tests,
//!   benches, examples) registers or reads: dead vocabulary, reported at
//!   its declaration line in `names.rs`.

use super::lexer::{Tok, TokKind};
use super::report::Sink;
use super::FileUnit;

/// One vocabulary entry (mirrors `payg_obs::names::NameSpec`, owned so
/// tests can build ad-hoc vocabularies).
#[derive(Debug, Clone)]
pub struct Vocab {
    pub ident: String,
    pub name: String,
    pub labels: Vec<String>,
}

const HANDLE_METHODS: &[&str] =
    &["counter", "gauge", "histogram", "counter_labeled", "gauge_labeled", "histogram_labeled"];

/// Runs the pass. `units`/`sinks` are the analyzed library files; `usage`
/// is the wider set (tests, benches, examples included) scanned for
/// dead-name detection.
pub fn run(units: &[FileUnit], sinks: &[Sink<'_>], usage: &[FileUnit], vocab: &[Vocab]) {
    for (fi, u) in units.iter().enumerate() {
        check_call_sites(u, &sinks[fi], vocab);
    }

    // --- dead names ---
    let is_names_rs =
        |u: &FileUnit| u.rel.to_string_lossy().replace('\\', "/").ends_with("obs/src/names.rs");
    let Some(names_idx) = units.iter().position(is_names_rs) else {
        return; // no vocabulary file in the analyzed set (unit tests)
    };
    for v in vocab {
        let used = usage.iter().any(|u| {
            !is_names_rs(u)
                && u.lexed.toks.iter().any(|t| match t.kind {
                    TokKind::Ident => t.text == v.ident,
                    TokKind::Str => t.text == v.name,
                    _ => false,
                })
        });
        if !used {
            let line = units[names_idx]
                .lexed
                .toks
                .iter()
                .find(|t| t.is_ident(&v.ident))
                .map_or(1, |t| t.line);
            sinks[names_idx].emit(
                "obs-dead",
                line,
                format!(
                    "metric `{}` ({}) is declared but never registered or read \
                     anywhere — remove it from names.rs or wire it up",
                    v.ident, v.name
                ),
            );
        }
    }
}

/// Checks every registry-handle call site in one file.
fn check_call_sites(u: &FileUnit, sink: &Sink<'_>, vocab: &[Vocab]) {
    let s = u.rel.to_string_lossy().replace('\\', "/");
    if !((s.starts_with("crates/") && s.contains("/src/")) || s.starts_with("src/")) {
        return;
    }
    let toks = &u.lexed.toks;
    for i in 0..toks.len() {
        if u.info.in_test[i] || !toks[i].is_punct('.') {
            continue;
        }
        let Some(m) = toks.get(i + 1) else { continue };
        if m.kind != TokKind::Ident || !HANDLE_METHODS.contains(&m.text.as_str()) {
            continue;
        }
        let open = i + 2;
        if !toks.get(open).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let entry = match resolve_name_arg(toks, open, vocab) {
            NameArg::Declared(v) => Some(v),
            NameArg::Undeclared(desc, line) => {
                sink.emit(
                    "obs-undeclared",
                    line,
                    format!(
                        "{desc} reaches `{}` but is not declared in payg_obs::names — \
                         add it to declare_names! or use a declared const",
                        m.text
                    ),
                );
                None
            }
            NameArg::Unresolved => None,
        };

        if let (Some(v), true) = (entry, m.text.ends_with("_labeled")) {
            if let Some(keys) = literal_label_keys(toks, open) {
                let want: Vec<&str> = v.labels.iter().map(String::as_str).collect();
                let got: Vec<&str> = keys.iter().map(String::as_str).collect();
                if want != got {
                    sink.emit(
                        "obs-label-arity",
                        toks[open].line,
                        format!(
                            "`{}` declares labels [{}] but this registration passes [{}]",
                            v.ident,
                            want.join(", "),
                            got.join(", "),
                        ),
                    );
                }
            }
        }
    }
}

enum NameArg<'v> {
    Declared(&'v Vocab),
    /// (description of the offending argument, line).
    Undeclared(String, u32),
    Unresolved,
}

/// Resolves the first argument of the call whose `(` is at `open`.
fn resolve_name_arg<'v>(toks: &[Tok], open: usize, vocab: &'v [Vocab]) -> NameArg<'v> {
    let Some(t0) = toks.get(open + 1) else { return NameArg::Unresolved };
    match t0.kind {
        TokKind::Str => match vocab.iter().find(|v| v.name == t0.text) {
            Some(v) => NameArg::Declared(v),
            None => NameArg::Undeclared(format!("string literal \"{}\"", t0.text), t0.line),
        },
        TokKind::Ident => {
            // Walk the path `a::b::LAST`, remembering the last two segments.
            let mut prev: Option<&Tok> = None;
            let mut last = t0;
            let mut j = open + 1;
            while toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(j + 3).is_some_and(|t| t.kind == TokKind::Ident)
            {
                prev = Some(&toks[j]);
                last = &toks[j + 3];
                j += 3;
            }
            let via_names = prev.is_some_and(|p| p.is_ident("names"));
            if let Some(v) = vocab.iter().find(|v| v.ident == last.text) {
                return NameArg::Declared(v);
            }
            let screaming = last.text.len() > 1
                && last.text.chars().all(|c| c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_')
                && last.text.chars().any(|c| c.is_ascii_uppercase());
            if via_names || screaming {
                NameArg::Undeclared(format!("const `{}`", last.text), last.line)
            } else {
                NameArg::Unresolved // lowercase variable: skip, don't guess
            }
        }
        _ => NameArg::Unresolved, // `&format!(..)`, expressions, …
    }
}

/// Label keys of a literal `&[("k", v), …]` second argument, or `None`
/// when the second argument is not a literal slice.
fn literal_label_keys(toks: &[Tok], open: usize) -> Option<Vec<String>> {
    let close = super::scopes::matching_paren(toks, open);
    // Find the top-level comma separating the args.
    let mut depth = 0i64;
    let mut comma = None;
    for (j, t) in toks.iter().enumerate().take(close).skip(open + 1) {
        if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
            depth -= 1;
        } else if t.is_punct(',') && depth == 0 {
            comma = Some(j);
            break;
        }
    }
    let comma = comma?;
    if !toks.get(comma + 1).is_some_and(|t| t.is_punct('&'))
        || !toks.get(comma + 2).is_some_and(|t| t.is_punct('['))
    {
        return None;
    }
    // Within the slice, the first string literal of each `(`-tuple is the
    // label key.
    let mut keys = Vec::new();
    let mut j = comma + 3;
    let mut depth = 0i64;
    while j < close && !(depth == 0 && toks[j].is_punct(']')) {
        if toks[j].is_punct('(') {
            depth += 1;
            if depth == 1 {
                if let Some(k) = toks.get(j + 1).filter(|t| t.kind == TokKind::Str) {
                    keys.push(k.text.clone());
                } else {
                    return None; // non-literal tuple: skip the whole check
                }
            }
        } else if toks[j].is_punct(')') {
            depth -= 1;
        }
        j += 1;
    }
    Some(keys)
}

#[cfg(test)]
mod tests {
    use super::super::build_unit;
    use super::*;
    use std::path::PathBuf;

    fn vocab() -> Vec<Vocab> {
        vec![
            Vocab { ident: "POOL_LOADS".into(), name: "pool_loads".into(), labels: vec!["pool".into()] },
            Vocab {
                ident: "POOL_SHARD_HITS".into(),
                name: "pool_shard_hits".into(),
                labels: vec!["pool".into(), "shard".into()],
            },
            Vocab { ident: "SCAN_NS".into(), name: "scan_ns".into(), labels: vec![] },
        ]
    }

    fn run_srcs(srcs: &[(&str, &str)]) -> Vec<(String, String, u32)> {
        let units: Vec<FileUnit> =
            srcs.iter().map(|(rel, src)| build_unit(PathBuf::from(rel), src)).collect();
        let sinks: Vec<Sink<'_>> =
            units.iter().map(|u| Sink::new(&u.rel, &u.lexed.comments)).collect();
        run(&units, &sinks, &units, &vocab());
        let mut out = Vec::new();
        for s in sinks {
            s.finish(&["obs-undeclared", "obs-dead", "obs-label-arity"], &mut out);
        }
        out.into_iter()
            .map(|f| (f.rule.to_string(), f.path.display().to_string(), f.line))
            .collect()
    }

    #[test]
    fn undeclared_literal_and_const_are_flagged() {
        let src = "fn f(reg: &Registry) {\n    reg.counter(\"pool_loads\").add(1);\n    reg.counter(\"not_declared\").add(1);\n    reg.gauge(names::NOT_DECLARED).set(2);\n    reg.histogram(names::SCAN_NS).record(3);\n}\n";
        let got = run_srcs(&[("crates/storage/src/metrics.rs", src)]);
        assert_eq!(
            got,
            [
                ("obs-undeclared".to_string(), "crates/storage/src/metrics.rs".to_string(), 3),
                ("obs-undeclared".to_string(), "crates/storage/src/metrics.rs".to_string(), 4),
            ],
            "{got:?}"
        );
    }

    #[test]
    fn variable_names_are_skipped() {
        let src = "fn f(reg: &Registry, name: &str) {\n    reg.counter(name).add(1);\n    reg.counter(&format!(\"__x_{n}\")).add(1);\n}\n";
        assert!(run_srcs(&[("crates/obs/src/registry.rs", src)]).is_empty());
    }

    #[test]
    fn label_arity_mismatch_is_flagged() {
        let src = "fn f(reg: &Registry) {\n    reg.counter_labeled(names::POOL_SHARD_HITS, &[(\"pool\", p), (\"shard\", s)]).add(1);\n    reg.counter_labeled(names::POOL_LOADS, &[(\"shard\", s)]).add(1);\n    reg.counter_labeled(names::POOL_LOADS, dynamic_labels).add(1);\n}\n";
        let got = run_srcs(&[("crates/storage/src/metrics.rs", src)]);
        assert_eq!(
            got,
            [("obs-label-arity".to_string(), "crates/storage/src/metrics.rs".to_string(), 3)],
            "{got:?}"
        );
    }

    #[test]
    fn dead_names_are_reported_at_their_declaration() {
        let names = "pub const POOL_LOADS: &str = \"pool_loads\";\npub const POOL_SHARD_HITS: &str = \"pool_shard_hits\";\npub const SCAN_NS: &str = \"scan_ns\";\n";
        let user = "fn f(reg: &Registry) {\n    reg.counter(names::POOL_LOADS).add(1);\n    reg.histogram(\"scan_ns\").record(2);\n}\n";
        let got = run_srcs(&[("crates/obs/src/names.rs", names), ("crates/core/src/scan.rs", user)]);
        // POOL_SHARD_HITS is declared but unused.
        assert_eq!(
            got,
            [("obs-dead".to_string(), "crates/obs/src/names.rs".to_string(), 2)],
            "{got:?}"
        );
    }

    #[test]
    fn test_code_call_sites_are_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t(reg: &Registry) { reg.counter(\"scratch\").add(1); }\n}\n";
        assert!(run_srcs(&[("crates/storage/src/metrics.rs", src)]).is_empty());
    }
}
