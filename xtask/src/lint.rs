//! Source-analysis lint: line-based enforcement of repo rules, no external
//! dependencies.
//!
//! Rules (names usable in suppressions):
//!
//! * `unwrap` — no `.unwrap()` / `.expect(` in non-test library code of
//!   `payg-storage`, `payg-resman`, `payg-core`. Use typed errors; genuine
//!   invariants must carry a suppression with a reason.
//! * `raw-lock` — no `std::sync` `Mutex`/`RwLock`/`Condvar` or
//!   `parking_lot` usage in those crates outside the per-crate `sync.rs`
//!   alias module: synchronization must go through the model-checkable
//!   `payg-check` wrappers so `--cfg payg_check` covers it.
//! * `safety` — every `unsafe` keyword in library code must have a
//!   `// SAFETY:` comment on the same line or within the three preceding
//!   lines.
//! * `sleep` — no `thread::sleep` in library code anywhere in `crates/*`:
//!   tests flake and models hang on real time. Inject a sleeper or use
//!   condvars.
//! * `pin-in-loop` — no `.pin(` calls inside a loop body in the scan code
//!   under `crates/core/src/datavec/`: warm scans must pin each page once
//!   per run (guard cache / `load_chunk_run`), not once per chunk. Hoist
//!   the pin into a per-page helper, or suppress with a reason.
//! * `raw-counter` — no `AtomicU64` declarations in library code outside
//!   `payg-obs` (and `payg-check`): counters belong in the obs registry as
//!   `payg_obs::Counter`/`Gauge` so one snapshot covers the whole system.
//!   Non-metric atomics (id allocators, clocks) carry a suppression.
//! * `stringly-error` — no `StorageError::Corrupt(..)` (or a resurrected
//!   `StorageError::Other`) constructed in library code outside
//!   `crates/storage/src/error.rs`: go through `StorageError::corrupt()` /
//!   `corrupt_file()` or a structured variant, so the retry/quarantine
//!   fault taxonomy stays the single source of truth.
//! * `pool-read-page` — no direct `.read_page(` calls in
//!   `crates/storage/src/pool.rs`: every pool-side store read must go
//!   through `iostage` (`fetch_with_retry` or a staged fetch request) so
//!   retries, fault counters, and physical-read accounting stay on one
//!   path. `iostage.rs` is the sanctioned call site.
//!
//! Suppress a finding with `// lint: allow(<rule>) <reason>` on the same
//! line or the line directly above. The reason is mandatory.
//!
//! Test code is exempt: `tests/`, `benches/`, `examples/` trees and
//! `#[cfg(test)]` modules (tracked by brace depth).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One rule violation.
pub struct Finding {
    /// File containing the violation.
    pub path: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule name (as used in `lint: allow(...)`).
    pub rule: &'static str,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path.display(),
            self.line,
            self.rule,
            self.message
        )
    }
}

/// Entry point for `cargo xtask lint [ROOT_DIR...]`.
pub fn run(roots: &[String]) -> ExitCode {
    let workspace = workspace_root();
    let roots: Vec<PathBuf> = if roots.is_empty() {
        default_roots(&workspace)
    } else {
        roots.iter().map(PathBuf::from).collect()
    };

    let mut files = Vec::new();
    for root in &roots {
        if !root.is_dir() {
            eprintln!("lint: no such directory: {}", root.display());
            return ExitCode::FAILURE;
        }
        collect_rs_files(root, &mut files);
    }
    files.sort();

    let mut findings = Vec::new();
    let mut checked = 0usize;
    for file in &files {
        let Ok(text) = std::fs::read_to_string(file) else {
            eprintln!("lint: cannot read {}", file.display());
            return ExitCode::FAILURE;
        };
        let rel = file.strip_prefix(&workspace).unwrap_or(file);
        checked += 1;
        lint_file(rel, &text, &mut findings);
    }

    if findings.is_empty() {
        println!("lint: {} files checked, 0 violations", checked);
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        println!(
            "lint: {} files checked, {} violation(s)",
            checked,
            findings.len()
        );
        ExitCode::FAILURE
    }
}

fn workspace_root() -> PathBuf {
    let manifest = std::env::var("CARGO_MANIFEST_DIR").unwrap_or_else(|_| ".".to_string());
    let p = PathBuf::from(manifest);
    p.parent().map(Path::to_path_buf).unwrap_or(p)
}

fn default_roots(workspace: &Path) -> Vec<PathBuf> {
    let mut roots = vec![workspace.join("src")];
    if let Ok(entries) = std::fs::read_dir(workspace.join("crates")) {
        for e in entries.flatten() {
            roots.push(e.path());
        }
    }
    roots
}

fn collect_rs_files(root: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(root) else {
        return;
    };
    for e in entries.flatten() {
        let p = e.path();
        let name = e.file_name();
        let name = name.to_string_lossy();
        if p.is_dir() {
            // Library code only: test/bench/example/fixture trees are exempt.
            if matches!(
                name.as_ref(),
                "target" | "tests" | "benches" | "examples" | "fixtures" | ".git"
            ) {
                continue;
            }
            collect_rs_files(&p, out);
        } else if name.ends_with(".rs") {
            out.push(p);
        }
    }
}

/// Which rules apply to a (workspace-relative) path.
struct Scope {
    unwrap: bool,
    raw_lock: bool,
    safety: bool,
    sleep: bool,
    pin_in_loop: bool,
    raw_counter: bool,
    stringly_error: bool,
    pool_read_page: bool,
}

fn scope_for(rel: &Path) -> Scope {
    let s = rel.to_string_lossy().replace('\\', "/");
    let concurrency_core = s.starts_with("crates/storage/src")
        || s.starts_with("crates/resman/src")
        || s.starts_with("crates/core/src");
    let in_crates_src = (s.starts_with("crates/") && s.contains("/src/")) || s.starts_with("src/");
    let sync_alias_module = s.ends_with("/sync.rs");
    // payg-check implements the wrappers: raw std::sync use is its job.
    let is_check_crate = s.starts_with("crates/check/");
    // payg-obs implements Counter/Gauge/Histogram on top of raw atomics.
    let is_obs_crate = s.starts_with("crates/obs/");
    // The error module owns the taxonomy: it is the one sanctioned
    // construction site for the stringly variants.
    let is_error_taxonomy = s == "crates/storage/src/error.rs";
    Scope {
        unwrap: concurrency_core,
        raw_lock: concurrency_core && !sync_alias_module && !is_check_crate,
        safety: in_crates_src && !is_check_crate,
        sleep: in_crates_src && !is_check_crate,
        pin_in_loop: s.starts_with("crates/core/src/datavec/"),
        raw_counter: in_crates_src && !is_check_crate && !is_obs_crate,
        stringly_error: in_crates_src && !is_error_taxonomy,
        // The cold-path I/O stage owns every store read the pool makes;
        // shard code calling the store directly would bypass retry/fault
        // accounting and the coalescing queue.
        pool_read_page: s == "crates/storage/src/pool.rs",
    }
}

/// Lints one file's text; appends findings.
pub fn lint_file(rel: &Path, text: &str, findings: &mut Vec<Finding>) {
    let scope = scope_for(rel);
    if !(scope.unwrap
        || scope.raw_lock
        || scope.safety
        || scope.sleep
        || scope.pin_in_loop
        || scope.raw_counter
        || scope.stringly_error
        || scope.pool_read_page)
    {
        return;
    }

    let lines: Vec<&str> = text.lines().collect();
    let mut in_test_mod = false;
    let mut test_depth: i64 = 0;
    let mut pending_test_attr = false;
    // Loop tracking for pin-in-loop: brace depth of every loop body whose
    // braces are still open (line-based, assumes rustfmt's `{` placement).
    let mut depth: i64 = 0;
    let mut loop_stack: Vec<i64> = Vec::new();

    for (idx, raw_line) in lines.iter().enumerate() {
        let lineno = idx + 1;
        let trimmed = raw_line.trim_start();

        // --- #[cfg(test)] module tracking (line-based brace counting) ---
        if in_test_mod {
            test_depth += brace_delta(raw_line);
            if test_depth <= 0 {
                in_test_mod = false;
            }
            continue;
        }
        if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
            pending_test_attr = true;
            continue;
        }
        if pending_test_attr {
            if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                in_test_mod = true;
                test_depth = brace_delta(raw_line);
                if test_depth <= 0 && raw_line.contains('{') {
                    in_test_mod = false; // single-line mod
                }
                pending_test_attr = false;
                continue;
            }
            // Attribute applied to fn/use/etc. — skip just that item's line.
            if !trimmed.starts_with("#[") && !trimmed.is_empty() {
                pending_test_attr = false;
                continue;
            }
            continue;
        }

        // --- suppression lookup: same line or the line above ---
        // A suppression only counts if a non-empty reason follows the tag.
        let has_reasoned_tag = |line: &str, tag: &str| -> bool {
            line.find(tag)
                .is_some_and(|pos| !line[pos + tag.len()..].trim().is_empty())
        };
        let suppressed = |rule: &str| -> bool {
            let tag = format!("lint: allow({rule})");
            has_reasoned_tag(raw_line, &tag)
                || (idx > 0 && has_reasoned_tag(lines[idx - 1], &tag))
        };

        // Match against code only (strip `//` comments, naive but
        // sufficient for this codebase: no `//` inside string literals
        // in ways that matter to these patterns).
        let code = strip_line_comment(raw_line);

        if scope.unwrap
            && (code.contains(".unwrap()") || code.contains(".expect("))
            && !suppressed("unwrap")
        {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: lineno,
                rule: "unwrap",
                message: "unwrap()/expect() in library code: return a typed error, \
                          or suppress with a reason if this is a real invariant"
                    .to_string(),
            });
        }

        if scope.raw_lock && !suppressed("raw-lock") {
            let std_lock = code.contains("std::sync")
                && (code.contains("Mutex") || code.contains("RwLock") || code.contains("Condvar"));
            let pl = code.contains("parking_lot");
            if std_lock || pl {
                findings.push(Finding {
                    path: rel.to_path_buf(),
                    line: lineno,
                    rule: "raw-lock",
                    message: "raw lock outside the sync alias module: use the \
                              crate::sync wrappers so payg_check models cover it"
                        .to_string(),
                });
            }
        }

        if scope.safety && contains_word(code, "unsafe") && !suppressed("safety") {
            let mut annotated = raw_line.contains("SAFETY:");
            let lo = idx.saturating_sub(3);
            for prev in &lines[lo..idx] {
                if prev.contains("SAFETY:") {
                    annotated = true;
                }
            }
            if !annotated {
                findings.push(Finding {
                    path: rel.to_path_buf(),
                    line: lineno,
                    rule: "safety",
                    message: "unsafe without a `// SAFETY:` comment on this line \
                              or the three lines above"
                        .to_string(),
                });
            }
        }

        if scope.sleep && code.contains("thread::sleep") && !suppressed("sleep") {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: lineno,
                rule: "sleep",
                message: "thread::sleep in library code: inject a sleeper/clock \
                          or synchronize with condvars"
                    .to_string(),
            });
        }

        if scope.raw_counter && !suppressed("raw-counter") && is_raw_counter_decl(code) {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: lineno,
                rule: "raw-counter",
                message: "raw AtomicU64 declared outside payg-obs: register a \
                          payg_obs::Counter/Gauge so the metric is exported, or \
                          suppress with a reason if this is not a metric"
                    .to_string(),
            });
        }

        if scope.stringly_error
            && (code.contains("StorageError::Corrupt(") || code.contains("StorageError::Other"))
            && !suppressed("stringly-error")
        {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: lineno,
                rule: "stringly-error",
                message: "stringly StorageError constructed outside storage::error: \
                          use StorageError::corrupt()/corrupt_file() or a structured \
                          variant so the fault taxonomy stays centralized"
                    .to_string(),
            });
        }

        if scope.pool_read_page
            && code.contains(".read_page(")
            && !suppressed("pool-read-page")
        {
            findings.push(Finding {
                path: rel.to_path_buf(),
                line: lineno,
                rule: "pool-read-page",
                message: "direct store read in pool shard code: route it through \
                          iostage (fetch_with_retry or a staged fetch request) so \
                          retry, fault, and physical-read accounting stay unified"
                    .to_string(),
            });
        }

        if scope.pin_in_loop {
            let is_loop_header = (contains_word(code, "for")
                || contains_word(code, "while")
                || contains_word(code, "loop"))
                && code.contains('{');
            if (!loop_stack.is_empty() || is_loop_header)
                && code.contains(".pin(")
                && !suppressed("pin-in-loop")
            {
                findings.push(Finding {
                    path: rel.to_path_buf(),
                    line: lineno,
                    rule: "pin-in-loop",
                    message: "pool pin inside a per-chunk loop: warm scans must pin \
                              each page once per run — hoist into a per-page helper \
                              (guard cache / load_chunk_run) or suppress with a reason"
                        .to_string(),
                });
            }
            if is_loop_header {
                loop_stack.push(depth + 1);
            }
            depth += brace_delta(raw_line);
            while loop_stack.last().is_some_and(|&d| depth < d) {
                loop_stack.pop();
            }
        }
    }
}

/// Whether a code line *declares* an `AtomicU64` (`x: AtomicU64`,
/// `static X: AtomicU64`, optionally path-qualified). `AtomicU64::new(..)`
/// is the declaration site's constructor and a `use` import is not a
/// declaration, so neither matches.
fn is_raw_counter_decl(code: &str) -> bool {
    const TY: &str = "AtomicU64";
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(TY) {
        let abs = start + pos;
        start = abs + TY.len();
        let after = &code[abs + TY.len()..];
        // Constructor/assoc-fn path, or a longer identifier: not a decl.
        if after.starts_with("::")
            || after.chars().next().is_some_and(|c| c.is_ascii_alphanumeric() || c == '_')
        {
            continue;
        }
        // Strip a qualifying module path (`std::sync::atomic::`), then the
        // type annotation's `:` must be what precedes the type.
        let mut b = abs;
        while b > 0 && (bytes[b - 1].is_ascii_alphanumeric() || bytes[b - 1] == b'_' || bytes[b - 1] == b':')
        {
            b -= 1;
        }
        // The path walk consumes the annotation colon too (`hits: Atomic…`
        // walks back over `: `-less `std::…` only, stopping at the space),
        // so look at what the remaining prefix ends with.
        let prefix = code[..b].trim_end();
        if prefix.ends_with(':') && !prefix.ends_with("::") {
            return true;
        }
    }
    false
}

fn brace_delta(line: &str) -> i64 {
    let code = strip_line_comment(line);
    let mut d = 0i64;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

fn strip_line_comment(line: &str) -> &str {
    match line.find("//") {
        Some(pos) => &line[..pos],
        None => line,
    }
}

fn contains_word(code: &str, word: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(word) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !code.as_bytes()[abs - 1].is_ascii_alphanumeric() && code.as_bytes()[abs - 1] != b'_';
        let after = abs + word.len();
        let after_ok = after >= code.len()
            || !code.as_bytes()[after].is_ascii_alphanumeric() && code.as_bytes()[after] != b'_';
        if before_ok && after_ok {
            return true;
        }
        start = abs + word.len();
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn lint_str(rel: &str, text: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        lint_file(Path::new(rel), text, &mut out);
        out
    }

    #[test]
    fn unwrap_flagged_in_core_crates_only() {
        let bad = "fn f() { x.unwrap(); }\n";
        assert_eq!(lint_str("crates/storage/src/pool.rs", bad).len(), 1);
        assert_eq!(lint_str("crates/resman/src/manager.rs", bad).len(), 1);
        assert_eq!(lint_str("crates/encoding/src/lib.rs", bad).len(), 0);
    }

    #[test]
    fn unwrap_or_else_is_not_flagged() {
        let ok = "fn f() { x.unwrap_or_else(|| 3); y.unwrap_or(0); }\n";
        assert!(lint_str("crates/storage/src/pool.rs", ok).is_empty());
    }

    #[test]
    fn suppression_with_reason_works() {
        let t = "// lint: allow(unwrap) invariant: set above\nfn f() { x.expect(\"set\"); }\n";
        assert!(lint_str("crates/storage/src/pool.rs", t).is_empty());
        let same = "fn f() { x.expect(\"set\") } // lint: allow(unwrap) invariant\n";
        assert!(lint_str("crates/storage/src/pool.rs", same).is_empty());
    }

    #[test]
    fn suppression_without_reason_is_rejected() {
        let t = "// lint: allow(unwrap)\nfn f() { x.expect(\"set\"); }\n";
        let v = lint_str("crates/storage/src/pool.rs", t);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "unwrap");
    }

    #[test]
    fn cfg_test_modules_are_exempt() {
        let t = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\n";
        assert!(lint_str("crates/storage/src/pool.rs", t).is_empty());
    }

    #[test]
    fn raw_lock_flagged_outside_sync_module() {
        let t = "use std::sync::Mutex;\n";
        assert_eq!(lint_str("crates/storage/src/pool.rs", t).len(), 1);
        assert!(lint_str("crates/storage/src/sync.rs", t).is_empty());
        let pl = "use parking_lot::RwLock;\n";
        assert_eq!(lint_str("crates/resman/src/manager.rs", pl).len(), 1);
    }

    #[test]
    fn atomics_are_not_raw_locks() {
        let t = "use std::sync::atomic::AtomicU64;\nuse std::sync::Arc;\n";
        assert!(lint_str("crates/storage/src/pool.rs", t).is_empty());
    }

    #[test]
    fn unsafe_requires_safety_comment() {
        let bad = "fn f() { unsafe { g() } }\n";
        assert_eq!(lint_str("crates/encoding/src/lib.rs", bad).len(), 1);
        let good = "// SAFETY: bounds checked above\nfn f() { unsafe { g() } }\n";
        assert!(lint_str("crates/encoding/src/lib.rs", good).is_empty());
        // "unsafe" as a substring of an identifier is not the keyword.
        let ident = "fn not_unsafe_here() {}\n";
        assert!(lint_str("crates/encoding/src/lib.rs", ident).is_empty());
    }

    #[test]
    fn sleep_flagged_in_library_code() {
        let bad = "fn f() { std::thread::sleep(d); }\n";
        assert_eq!(lint_str("crates/storage/src/store.rs", bad).len(), 1);
        assert_eq!(lint_str("crates/table/src/lib.rs", bad).len(), 1);
    }

    #[test]
    fn comments_do_not_trigger_rules() {
        let t = "// calling x.unwrap() here would be wrong\nfn f() {}\n";
        assert!(lint_str("crates/storage/src/pool.rs", t).is_empty());
    }

    #[test]
    fn seeded_violation_fixture_fails() {
        // The checked-in fixture must keep failing: it is the regression
        // test that the lint actually detects each rule.
        let fixture = include_str!("../fixtures/violations.rs");
        let f = lint_str("crates/storage/src/fixture.rs", fixture);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert!(rules.contains(&"unwrap"), "fixture must trip unwrap: {rules:?}");
        assert!(rules.contains(&"raw-lock"), "fixture must trip raw-lock: {rules:?}");
        assert!(rules.contains(&"safety"), "fixture must trip safety: {rules:?}");
        assert!(rules.contains(&"sleep"), "fixture must trip sleep: {rules:?}");
        assert!(rules.contains(&"raw-counter"), "fixture must trip raw-counter: {rules:?}");
        assert!(rules.contains(&"stringly-error"), "fixture must trip stringly-error: {rules:?}");
    }

    #[test]
    fn pin_in_loop_flagged_only_in_datavec_loops() {
        let bad = "fn f() {\n    for p in 0..n {\n        let g = pool.pin(key);\n    }\n    let h = pool.pin(other);\n}\n";
        let v = lint_str("crates/core/src/datavec/paged.rs", bad);
        assert_eq!(v.len(), 1, "only the in-loop pin is flagged");
        assert_eq!(v[0].rule, "pin-in-loop");
        assert_eq!(v[0].line, 3);
        // Outside the datavec scan code the rule does not apply.
        assert!(lint_str("crates/core/src/column/paged.rs", bad).is_empty());
        // A pin hoisted above the loop is the intended shape.
        let ok = "fn f() {\n    let g = pool.pin(key);\n    for c in g.chunks() {\n        use_chunk(c);\n    }\n}\n";
        assert!(lint_str("crates/core/src/datavec/paged.rs", ok).is_empty());
        // get_or_pin (the guard cache) is not a raw pool pin.
        let cached = "fn f() {\n    for p in 0..n {\n        let g = self.guards.get_or_pin(p, pin_fn);\n    }\n}\n";
        assert!(lint_str("crates/core/src/datavec/paged.rs", cached).is_empty());
        // Suppression with a reason is honored.
        let sup = "fn f() {\n    for p in 0..n {\n        // lint: allow(pin-in-loop) boundary repin\n        let g = pool.pin(key);\n    }\n}\n";
        assert!(lint_str("crates/core/src/datavec/paged.rs", sup).is_empty());
    }

    #[test]
    fn raw_counter_flagged_outside_obs_and_check() {
        let field = "pub struct S {\n    hits: AtomicU64,\n}\n";
        let v = lint_str("crates/storage/src/pool.rs", field);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "raw-counter");
        assert_eq!(v[0].line, 2);
        let stat = "static HITS: AtomicU64 = AtomicU64::new(0);\n";
        assert_eq!(lint_str("crates/bench/src/lib.rs", stat).len(), 1);
        // The obs and check crates implement the primitives themselves.
        assert!(lint_str("crates/obs/src/hist.rs", field).is_empty());
        assert!(lint_str("crates/check/src/sched.rs", stat).is_empty());
        // A struct-literal constructor is not a second declaration.
        let ctor = "fn f() { S { hits: AtomicU64::new(0) } }\n";
        assert!(lint_str("crates/storage/src/pool.rs", ctor).is_empty());
        // Qualified declarations are caught; a `use` import alone is not.
        let qualified = "pub struct S {\n    hits: std::sync::atomic::AtomicU64,\n}\n";
        assert_eq!(lint_str("crates/table/src/table.rs", qualified).len(), 1);
        let import = "use std::sync::atomic::AtomicU64;\n";
        assert!(lint_str("crates/storage/src/pool.rs", import).is_empty());
        // Non-metric atomics are suppressible with a reason.
        let sup = "pub struct S {\n    // lint: allow(raw-counter) id allocator, not a metric\n    next_id: AtomicU64,\n}\n";
        assert!(lint_str("crates/storage/src/pool.rs", sup).is_empty());
    }

    #[test]
    fn stringly_error_flagged_outside_the_taxonomy_module() {
        let bad = "fn f() -> StorageError { StorageError::Corrupt(format!(\"bad {x}\")) }\n";
        let v = lint_str("crates/core/src/dict/paged.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "stringly-error");
        // The taxonomy module itself is the sanctioned construction site.
        assert!(lint_str("crates/storage/src/error.rs", bad).is_empty());
        // The helper spelling is the approved one.
        let ok = "fn f() -> StorageError { StorageError::corrupt(\"bad page\") }\n";
        assert!(lint_str("crates/core/src/dict/paged.rs", ok).is_empty());
        // A resurrected catch-all variant is flagged wherever it appears.
        let other = "fn f() -> StorageError { StorageError::Other(\"??\".into()) }\n";
        assert_eq!(lint_str("crates/table/src/catalog.rs", other).len(), 1);
        // Test trees stay exempt (they assert on error shapes).
        assert!(lint_str("crates/core/tests/proptests.rs", bad).is_empty());
    }

    #[test]
    fn pool_read_page_flagged_only_in_pool_shard_code() {
        let bad = "fn f() { let data = self.store.read_page(key); }\n";
        let v = lint_str("crates/storage/src/pool.rs", bad);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "pool-read-page");
        // The I/O stage is the sanctioned call site; other modules (stores
        // themselves, decorators) are out of scope too.
        assert!(lint_str("crates/storage/src/iostage.rs", bad).is_empty());
        assert!(lint_str("crates/storage/src/store.rs", bad).is_empty());
        // The batched API is not a direct per-page read.
        let batched = "fn f() { let r = self.store.read_pages(chain, 0, n); }\n";
        assert!(lint_str("crates/storage/src/pool.rs", batched).is_empty());
        // Suppression with a reason is honored.
        let sup = "// lint: allow(pool-read-page) recovery probe outside the stage\n\
                   fn f() { self.store.read_page(key); }\n";
        assert!(lint_str("crates/storage/src/pool.rs", sup).is_empty());
    }

    #[test]
    fn seeded_pin_in_loop_fixture_fails() {
        let fixture = include_str!("../fixtures/pin_in_loop.rs");
        let f = lint_str("crates/core/src/datavec/fixture.rs", fixture);
        let rules: Vec<&str> = f.iter().map(|x| x.rule).collect();
        assert_eq!(
            f.len(),
            2,
            "fixture must trip exactly its two unsuppressed loops: {rules:?}"
        );
        assert!(f.iter().all(|x| x.rule == "pin-in-loop"), "{rules:?}");
    }

    #[test]
    fn tree_is_clean() {
        // Run the real lint over the workspace: the repo must stay clean.
        let ws = super::workspace_root();
        let mut files = Vec::new();
        for root in super::default_roots(&ws) {
            super::collect_rs_files(&root, &mut files);
        }
        let mut findings = Vec::new();
        for file in &files {
            let text = std::fs::read_to_string(file).unwrap();
            let rel = file.strip_prefix(&ws).unwrap_or(file);
            super::lint_file(rel, &text, &mut findings);
        }
        let msgs: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        assert!(msgs.is_empty(), "lint violations in tree:\n{}", msgs.join("\n"));
    }
}
