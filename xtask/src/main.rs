//! `cargo xtask` — workspace automation without external dependencies.
//!
//! Subcommands:
//!
//! * `analyze` — the repo's static-analysis engine (see [`analyze`] module
//!   docs): the eight legacy lint rules on a comment/string-aware lexer,
//!   plus the lock-rank, guard-escape, and obs-vocabulary workspace
//!   passes. Exits nonzero when any rule is violated.
//! * `lint` — compatibility alias for `analyze`.

mod analyze;

use std::process::ExitCode;

const USAGE: &str = "usage: cargo xtask analyze [ROOT_DIR...] [--format text|json] \
                     [--baseline FILE] [--write-baseline FILE] [--prune-suppressions]";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("analyze") | Some("lint") => {
            let rest: Vec<String> = args.collect();
            analyze::run(&rest)
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand: {other}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}
