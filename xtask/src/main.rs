//! `cargo xtask` — workspace automation without external dependencies.
//!
//! Subcommands:
//!
//! * `lint` — the repo's source-analysis pass (see [`lint`] module docs).
//!   Exits nonzero when any rule is violated.

mod lint;

use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    match args.next().as_deref() {
        Some("lint") => {
            let roots: Vec<String> = args.collect();
            lint::run(&roots)
        }
        Some(other) => {
            eprintln!("unknown xtask subcommand: {other}");
            eprintln!("usage: cargo xtask lint [ROOT_DIR...]");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint [ROOT_DIR...]");
            ExitCode::FAILURE
        }
    }
}
