//! Guard-escape fixture: the page guard pinned on line 7 is still live at
//! the lock acquisition (line 8) and the sleeper call (line 9) — two
//! findings. The guard in `well_behaved` is dropped before the submit and
//! produces none.

fn scan_chunk(&self) {
    let g = self.pool.pin(key)?;
    let st = self.state.lock();
    (self.sleeper)(backoff);
    touch(g, st);
}

fn well_behaved(&self) {
    let g = self.pool.pin(key)?;
    use_page(&g);
    drop(g);
    self.queue.submit(req);
}
