//! Stale-suppression fixture: the tag on line 5 names a real rule and
//! carries a reason, but the code below it no longer violates anything —
//! it must be reported as stale rather than silently ignored.

// lint: allow(unwrap) refactored away: the call below no longer unwraps
fn f() {
    let v = submitted.unwrap_or_else(|_| fallback());
    use_value(v);
}
