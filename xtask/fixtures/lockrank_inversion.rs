//! Lock-rank fixture: `bad` acquires the PoolShard-ranked lock while the
//! ResmanState-ranked guard is still held — the inversion the runtime
//! checker would abort on, caught statically at the second acquisition
//! (line 16). `good` takes the same pair in declared order.

impl FixtureInner {
    fn new() -> Self {
        FixtureInner {
            state: Mutex::with_rank(State::default(), LockRank::ResmanState),
            shard: Mutex::with_rank(Shard::default(), LockRank::PoolShard),
        }
    }

    fn bad(&self) {
        let held = self.state.lock();
        let inner = self.shard.lock();
        use_both(held, inner);
    }

    fn good(&self) {
        let inner = self.shard.lock();
        let held = self.state.lock();
        use_both(held, inner);
    }
}
