//! Span-discipline fixture: io-path events carry page provenance and must
//! be emitted through `emit_tagged`. The plain emits on lines 9, 10, and
//! 15 (path-qualified) are violations; the tagged emits, the non-io kind
//! on line 11, and the suppressed retry on line 17 are clean.

fn record(t: &Tracer, chain: u64, page: u64, span: u64, bid: u64) {
    t.emit_tagged(EventKind::IoSubmitted, chain, page, 0, span, 0);
    t.emit_tagged(EventKind::IoBatchIssued, chain, page, 0, span, bid);
    t.emit(EventKind::IoSubmitted, chain, page, 0);
    t.emit(EventKind::IoCompleted, chain, page, 4096);
    t.emit(EventKind::PagePinned, chain, page, 4096);
}

fn qualified(t: &Tracer, chain: u64, page: u64) {
    t.emit(payg_obs::EventKind::IoBatchIssued, chain, page, 0);
    // lint: allow(span-discipline) synthetic retry in a fault drill, no query
    t.emit(EventKind::LoadRetried, chain, page, 1);
}
