//! Lexer/scope-tracker torture fixture. Every construct below is designed
//! to fool a line-based linter: rule trigger text inside string literals,
//! raw strings, multi-line comments, and nested `#[cfg(test)]` modules.
//! Exactly one finding is expected — the `safety` violation marked REAL.

/* A multi-line comment mentioning unsafe { transmute() }
   and x.unwrap() and std::thread::sleep(d) across
   several lines. None of it is code. */
fn strings() {
    let plain = "unsafe { not_code() } and x.unwrap()";
    let raw = r#"unsafe { "nested quote" } std::sync::Mutex"#;
    let hash2 = r##"still a string: r#"inner"# unsafe"##;
    let ch = 'u';
    let lifetime: &'static str = plain;
    use_all(plain, raw, hash2, ch, lifetime);
}

#[cfg(test)]
mod tests {
    fn exempt() {
        x.unwrap();
        unsafe { no_comment_needed_in_tests() }
    }

    #[cfg(test)]
    mod nested {
        fn also_exempt() {
            std::thread::sleep(d);
        }
    }
}

fn real_violation() {
    // REAL: the only expected finding — no safety comment above.
    unsafe { read_volatile(p) }
}
