//! Seeded lint-violation fixture. NEVER "fix" this file: the xtask lint
//! unit test `seeded_violation_fixture_fails` asserts that every rule
//! below is detected. It is linted as if it lived at
//! `crates/storage/src/fixture.rs` and is excluded from real lint runs
//! (fixtures/ trees are never collected).

use std::sync::Mutex; // raw-lock: must use crate::sync wrappers

static CELL: Mutex<Option<u32>> = Mutex::new(None);

fn unwrap_violation() -> u32 {
    CELL.lock().unwrap().expect("value present") // unwrap: typed error required
}

fn sleep_violation() {
    std::thread::sleep(std::time::Duration::from_millis(50)); // sleep: inject a sleeper
}

fn safety_violation(p: *const u32) -> u32 {
    unsafe { *p } // no safety comment anywhere near this block
}

struct RawCounterViolation {
    hits: std::sync::atomic::AtomicU64, // raw-counter: use payg_obs::Counter
}

fn stringly_error_violation(detail: String) -> StorageError {
    StorageError::Corrupt(detail) // stringly-error: use StorageError::corrupt()
}

fn pef_decode_violation(bytes: &[u8], out: &mut [u64]) -> usize {
    decode_partition(bytes, 0, 64, out).unwrap() // pef-decode: stay compressed-domain
}
