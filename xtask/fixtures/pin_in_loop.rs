// Seeded pin-in-loop violations: linted as if under crates/core/src/datavec/
// (see lint.rs tests). Must keep tripping the rule — this is the regression
// test that the lint detects per-chunk pinning.

fn per_chunk_pin(pool: &BufferPool, pages: u64) {
    for page_no in 0..pages {
        let guard = pool.pin(PageKey::new(chain, page_no));
        consume(guard);
    }
}

fn per_chunk_pin_while(pool: &BufferPool, mut page_no: u64) {
    while page_no > 0 {
        let guard = pool.pin(PageKey::new(chain, page_no));
        consume(guard);
        page_no -= 1;
    }
}

fn hoisted_pin_is_fine(pool: &BufferPool) {
    let guard = pool.pin(PageKey::new(chain, 0));
    for chunk in guard.bytes().chunks_exact(8) {
        consume(chunk);
    }
}

fn suppressed_repin(pool: &BufferPool, pages: u64) {
    for page_no in 0..pages {
        // lint: allow(pin-in-loop) boundary chunk straddles two pages: the second pin is the point
        let guard = pool.pin(PageKey::new(chain, page_no));
        consume(guard);
    }
}
