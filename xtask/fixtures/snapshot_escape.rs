//! Seeded snapshot-escape violations: raw fragment accessors used outside
//! the version module. The analyzer's regression test asserts the exact
//! findings below — two flagged reads, one suppressed, test code exempt.

pub fn bad_reads(partition: &Partition) {
    let m = partition.main();
    let d = partition.delta();
    use_frags(m, d);
}

pub fn pinned_reads(p: &Partition) {
    let m = p.main_frag();
    let d = p.delta_view();
    use_frags(m, d);
}

pub fn suppressed(p: &Partition) {
    // lint: allow(snapshot-escape) spec-change path republishes every version
    let m = p.main();
    drop(m);
}

#[cfg(test)]
mod tests {
    fn test_reads_are_exempt(p: &Partition) {
        let _ = p.main();
        let _ = p.delta();
    }
}
