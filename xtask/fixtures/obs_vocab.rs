//! Obs-vocabulary fixture against the real `payg_obs::names` table: an
//! undeclared wire name (line 8) and a labelled registration missing the
//! declared `kind` key (line 9). The declared-name uses on lines 7 and 10
//! are clean.

fn register(reg: &Registry, l: &[(&str, String)]) {
    reg.counter_labeled(names::POOL_LOADS, l).add(1);
    reg.counter("payg_fixture_bogus").add(1);
    reg.counter_labeled(names::POOL_LOAD_FAULTS, &[("pool", pool_label)]).add(1);
    reg.histogram(names::SCAN_NS).record(3);
}
