//! Obs-vocabulary fixture against the real `payg_obs::names` table: an
//! undeclared wire name (line 8), a labelled registration missing the
//! declared `kind` key (line 9), and one passing a `codec` key the gauge
//! does not declare (line 13). Lines 7, 10, 11, and 12 are clean.

fn register(reg: &Registry, l: &[(&str, String)]) {
    reg.counter_labeled(names::POOL_LOADS, l).add(1);
    reg.counter("payg_fixture_bogus").add(1);
    reg.counter_labeled(names::POOL_LOAD_FAULTS, &[("pool", pool_label)]).add(1);
    reg.histogram(names::SCAN_NS).record(3);
    reg.counter_labeled(names::POOL_PAGE_BYTES, &[("pool", p), ("codec", c)]).add(4);
    reg.gauge_labeled(names::PEF_CHUNK_BITS, &[("pool", p)]).set(5);
    reg.gauge_labeled(names::DICT_FSST_RATIO, &[("pool", p), ("codec", c)]).set(6);
}
