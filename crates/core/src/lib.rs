//! Page-loadable columns: the paper's primary contribution.
//!
//! A column in this engine is the triple the paper describes (§2):
//!
//! 1. an **encoded data vector** — one n-bit packed value identifier per row,
//! 2. an **order-preserving dictionary** — value identifiers assigned in the
//!    sort order of the values, and
//! 3. an optional **inverted index** — value identifier → row positions.
//!
//! Every structure exists in two access modes over one persisted format:
//!
//! * **Fully resident** ([`column::ResidentColumn`]): loaded entirely into
//!   contiguous memory on first access and registered with the resource
//!   manager as a *single* resource — HANA's default column behaviour.
//! * **Page loadable** ([`column::PagedColumn`]): accessed piecewise through
//!   the buffer pool; every loaded page is its own resource with the paged
//!   attribute disposition. This is the paper's page loadable column.
//!
//! The choice is made at build time via [`column::LoadPolicy`] and is
//! invisible to readers: both modes implement the same [`column::ColumnRead`]
//! operations.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod column;
pub mod config;
pub mod datavec;
pub mod dict;
pub mod error;
pub mod invidx;
pub mod meta;
pub mod scratch;
pub mod sync;
mod util;
pub mod value;

pub use column::{probe_shape, Column, ColumnBuilder, ColumnRead, IndexMode, LoadPolicy};
pub use config::PageConfig;
pub use datavec::{ScanOptions, ScanPartition};
pub use error::{CoreError, CoreResult};
pub use payg_encoding::dispatch::{ChainCodec, CodecKind, ProbeShape, ScanPath};
pub use scratch::ChainScratch;
pub use value::{DataType, Value, ValuePredicate};
