//! Page-size and layout configuration.

/// Page sizes (bytes) used when persisting column structures.
///
/// The paper uses 1 MB dictionary pages on a 100 M-row, 256 GB testbed; this
/// reproduction's default dataset is ~100× smaller, so default pages are
/// scaled down proportionally to keep the page *count* per column — and with
/// it the piecewise-loading behaviour — comparable. All sizes are tunable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageConfig {
    /// Pages of the data vector chain.
    pub datavec_page: usize,
    /// Pages of the dictionary chain (paper: 1 MB).
    pub dict_page: usize,
    /// Pages of the dictionary overflow chain (off-page string pieces).
    pub overflow_page: usize,
    /// Pages of the two helper-dictionary chains.
    pub helper_page: usize,
    /// Pages of the inverted-index chain.
    pub index_page: usize,
    /// Maximum on-page bytes per dictionary value; longer suffixes spill to
    /// the overflow chain (the paper's large-string split).
    pub inline_limit: usize,
    /// Compress dictionary value blocks with a trained FSST symbol table
    /// when it pays (sampled ratio < [`FSST_SKIP_RATIO`]). Point and set
    /// probes then run on compressed bytes in place.
    pub dict_fsst: bool,
    /// Encode inverted-index posting lists as partitioned Elias-Fano
    /// partitions instead of plain bit-packed arrays.
    pub pef_postings: bool,
}

/// Sampled compression ratio (compressed ÷ raw) at or above which FSST is
/// not applied: near-incompressible dictionaries stay plain, keeping the
/// decode off their lookup path.
pub const FSST_SKIP_RATIO: f64 = 0.95;

impl Default for PageConfig {
    fn default() -> Self {
        PageConfig {
            datavec_page: 16 * 1024,
            dict_page: 16 * 1024,
            overflow_page: 16 * 1024,
            helper_page: 4 * 1024,
            index_page: 16 * 1024,
            inline_limit: 512,
            dict_fsst: true,
            pef_postings: true,
        }
    }
}

impl PageConfig {
    /// A tiny-page configuration that forces many pages even on small test
    /// data, exercising every page-boundary code path.
    pub fn tiny() -> Self {
        PageConfig {
            datavec_page: 256,
            dict_page: 768,
            overflow_page: 128,
            helper_page: 512,
            index_page: 256,
            inline_limit: 24,
            dict_fsst: true,
            pef_postings: true,
        }
    }

    /// Validates invariants the writers rely on.
    pub fn validate(&self) -> Result<(), String> {
        if self.datavec_page < 8 {
            // One chunk at width 1 needs 8 bytes; the data-vector writer
            // additionally checks that a chunk at the column's actual width
            // fits its page.
            return Err(format!("datavec_page of {} bytes cannot hold any chunk", self.datavec_page));
        }
        if self.inline_limit == 0 {
            return Err("inline_limit must be at least 1".into());
        }
        // A dictionary page must always fit one 16-entry block even when
        // every entry is fully spilled: header (12) + one offset (4) +
        // block count (1) + 3 restart offsets (6) +
        // 16 × (7 fixed + 10 spill header + 12 pointer).
        const MIN_BLOCK_PAGE: usize = 12 + 4 + 1 + 6 + 16 * (7 + 10 + 12);
        if self.dict_page < MIN_BLOCK_PAGE {
            return Err(format!("dict_page must be at least {MIN_BLOCK_PAGE} bytes"));
        }
        if self.helper_page < MIN_BLOCK_PAGE {
            return Err(format!("helper_page must be at least {MIN_BLOCK_PAGE} bytes"));
        }
        if self.inline_limit + 64 > self.dict_page {
            return Err("inline_limit too close to dict_page size".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_validate() {
        PageConfig::default().validate().unwrap();
        PageConfig::tiny().validate().unwrap();
    }

    #[test]
    fn invalid_configs_rejected() {
        let c = PageConfig { inline_limit: 0, ..PageConfig::default() };
        assert!(c.validate().is_err());
        let c = PageConfig { dict_page: 100, ..PageConfig::default() };
        assert!(c.validate().is_err());
    }
}
