//! Typed values and their order-preserving key encoding.

use crate::{CoreError, CoreResult};
use payg_encoding::okey;

/// Column data types (the paper's generator uses INTEGER, DECIMAL, DOUBLE,
/// CHAR and VARCHAR; CHAR and VARCHAR share the string representation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Integer,
    /// Fixed-point decimal stored as a scaled 128-bit integer (scale 2:
    /// the stored value is in hundredths, e.g. cents).
    Decimal,
    /// IEEE-754 double, totally ordered (NaN sorts last).
    Double,
    /// UTF-8 string (CHAR / VARCHAR).
    Varchar,
}

/// A typed value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// INTEGER.
    Integer(i64),
    /// DECIMAL, scale 2 (`Decimal(1999)` is 19.99).
    Decimal(i128),
    /// DOUBLE.
    Double(f64),
    /// CHAR / VARCHAR.
    Varchar(String),
}

impl Value {
    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Integer(_) => DataType::Integer,
            Value::Decimal(_) => DataType::Decimal,
            Value::Double(_) => DataType::Double,
            Value::Varchar(_) => DataType::Varchar,
        }
    }

    /// Encodes the value as an order-preserving byte key (see
    /// [`payg_encoding::okey`]). Keys of one column compare like the values.
    pub fn to_key(&self) -> Vec<u8> {
        match self {
            Value::Integer(v) => okey::encode_i64(*v).to_vec(),
            Value::Decimal(v) => okey::encode_i128(*v).to_vec(),
            Value::Double(v) => okey::encode_f64(*v).to_vec(),
            Value::Varchar(s) => okey::encode_str(s).to_vec(),
        }
    }

    /// Decodes a key produced by [`Value::to_key`] back into a value of type
    /// `ty`.
    pub fn from_key(ty: DataType, key: &[u8]) -> CoreResult<Value> {
        Ok(match ty {
            DataType::Integer => Value::Integer(okey::decode_i64(key)?),
            DataType::Decimal => Value::Decimal(okey::decode_i128(key)?),
            DataType::Double => Value::Double(okey::decode_f64(key)?),
            DataType::Varchar => Value::Varchar(okey::decode_str(key)?),
        })
    }

    /// Validates that the value matches the column type `ty`.
    pub fn check_type(&self, ty: DataType) -> CoreResult<()> {
        if self.data_type() == ty {
            Ok(())
        } else {
            Err(CoreError::TypeMismatch { expected: ty, got: self.data_type() })
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Integer(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Varchar(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Varchar(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Integer(v) => write!(f, "{v}"),
            Value::Decimal(v) => write!(f, "{}.{:02}", v / 100, (v % 100).abs()),
            Value::Double(v) => write!(f, "{v}"),
            Value::Varchar(s) => write!(f, "{s}"),
        }
    }
}

/// A predicate on one column, expressed over values. The dictionary
/// translates it to a [`payg_encoding::VidSet`] (order preservation makes
/// value ranges contiguous vid ranges).
#[derive(Debug, Clone, PartialEq)]
pub enum ValuePredicate {
    /// `column = value`.
    Eq(Value),
    /// `lo <= column <= hi` (inclusive).
    Between(Value, Value),
    /// `column IN (values)`.
    In(Vec<Value>),
    /// `column LIKE 'prefix%'` — VARCHAR columns only. Order-preserving
    /// keys make a prefix predicate a contiguous key range, hence a
    /// contiguous vid range (the paper's footnote on LIKE-style searches).
    StartsWith(String),
}

impl ValuePredicate {
    /// Evaluates the predicate directly against a value (used by delta scans
    /// and tests as the reference semantics).
    pub fn matches(&self, v: &Value) -> bool {
        match self {
            ValuePredicate::Eq(x) => keys_eq(v, x),
            ValuePredicate::Between(lo, hi) => {
                let k = v.to_key();
                k >= lo.to_key() && k <= hi.to_key()
            }
            ValuePredicate::In(xs) => xs.iter().any(|x| keys_eq(v, x)),
            ValuePredicate::StartsWith(prefix) => {
                matches!(v, Value::Varchar(s) if s.as_bytes().starts_with(prefix.as_bytes()))
            }
        }
    }
}

/// The smallest byte string greater than every string with prefix `p`:
/// increment the last non-0xFF byte and truncate. `None` when no such
/// string exists (all bytes 0xFF ⇒ the range is unbounded above).
pub(crate) fn prefix_successor(p: &[u8]) -> Option<Vec<u8>> {
    let mut s = p.to_vec();
    while let Some(last) = s.last_mut() {
        if *last == 0xFF {
            s.pop();
        } else {
            *last += 1;
            return Some(s);
        }
    }
    None
}

fn keys_eq(a: &Value, b: &Value) -> bool {
    a.data_type() == b.data_type() && a.to_key() == b.to_key()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_roundtrip_every_type() {
        let cases = [
            Value::Integer(-42),
            Value::Decimal(-123456789012345),
            Value::Double(3.25),
            Value::Varchar("hello world".into()),
        ];
        for v in cases {
            let back = Value::from_key(v.data_type(), &v.to_key()).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn keys_order_like_values() {
        let ints = [Value::Integer(-5), Value::Integer(0), Value::Integer(7)];
        for w in ints.windows(2) {
            assert!(w[0].to_key() < w[1].to_key());
        }
        let strs = [Value::Varchar("a".into()), Value::Varchar("ab".into()), Value::Varchar("b".into())];
        for w in strs.windows(2) {
            assert!(w[0].to_key() < w[1].to_key());
        }
    }

    #[test]
    fn type_checks() {
        assert!(Value::Integer(1).check_type(DataType::Integer).is_ok());
        assert!(matches!(
            Value::Integer(1).check_type(DataType::Varchar),
            Err(CoreError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn predicates_match_reference_semantics() {
        let p = ValuePredicate::Between(Value::Integer(2), Value::Integer(5));
        assert!(!p.matches(&Value::Integer(1)));
        assert!(p.matches(&Value::Integer(2)));
        assert!(p.matches(&Value::Integer(5)));
        assert!(!p.matches(&Value::Integer(6)));
        let p = ValuePredicate::In(vec![Value::Varchar("x".into()), Value::Varchar("y".into())]);
        assert!(p.matches(&Value::Varchar("y".into())));
        assert!(!p.matches(&Value::Varchar("z".into())));
    }

    #[test]
    fn starts_with_predicate() {
        let p = ValuePredicate::StartsWith("ab".into());
        assert!(p.matches(&Value::Varchar("ab".into())));
        assert!(p.matches(&Value::Varchar("abc".into())));
        assert!(!p.matches(&Value::Varchar("aB".into())));
        assert!(!p.matches(&Value::Varchar("b".into())));
        assert!(!p.matches(&Value::Integer(1)), "non-varchar never matches");
        let empty = ValuePredicate::StartsWith(String::new());
        assert!(empty.matches(&Value::Varchar("anything".into())));
    }

    #[test]
    fn prefix_successor_cases() {
        assert_eq!(prefix_successor(b"ab"), Some(b"ac".to_vec()));
        assert_eq!(prefix_successor(b"a\xff"), Some(b"b".to_vec()));
        assert_eq!(prefix_successor(b"\xff\xff"), None);
        assert_eq!(prefix_successor(b""), None);
        // Every string with the prefix is below the successor.
        let succ = prefix_successor(b"foo").unwrap();
        assert!(b"foo".as_slice() < succ.as_slice());
        assert!(b"foozzzzzz".as_slice() < succ.as_slice());
        assert!(b"fop".as_slice() >= succ.as_slice());
    }

    #[test]
    fn decimal_display() {
        assert_eq!(Value::Decimal(1999).to_string(), "19.99");
        assert_eq!(Value::Decimal(-250).to_string(), "-2.50");
        assert_eq!(Value::Decimal(5).to_string(), "0.05");
    }
}
