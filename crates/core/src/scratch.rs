//! Build-time chain hygiene: an RAII scratch that discards uncommitted
//! page chains when a builder unwinds with an error.
//!
//! A column persists as several page chains created at staggered points
//! (dictionary + overflow + two helpers, data vector, inverted index). Any
//! `?` between the first `create_chain` and the final assembly used to
//! strand the chains already written: nothing referenced them, but the
//! store kept their pages forever. Builders now allocate through a
//! [`ChainScratch`] and call [`ChainScratch::commit`] exactly when
//! ownership transfers to the returned reader; dropping an uncommitted
//! scratch discards its chains from pool and store. This is what lets an
//! aborted delta merge claim "nothing left behind" — the merge side-build
//! can die at any point and every chain it touched is reclaimed.

use payg_storage::{BufferPool, ChainId, StorageResult};

/// Records page chains created during one build and reclaims them unless
/// the build reaches [`ChainScratch::commit`].
pub struct ChainScratch {
    pool: BufferPool,
    chains: Vec<ChainId>,
    committed: bool,
}

impl ChainScratch {
    /// An empty scratch tied to `pool` (and through it, the store).
    pub fn new(pool: &BufferPool) -> Self {
        ChainScratch { pool: pool.clone(), chains: Vec::new(), committed: false }
    }

    /// Creates a chain on the pool's store and records it for reclamation.
    pub fn create_chain(&mut self, page_size: usize) -> StorageResult<ChainId> {
        let chain = self.pool.store().create_chain(page_size)?;
        self.chains.push(chain);
        Ok(chain)
    }

    /// Adopts a chain created elsewhere (a sub-builder that already
    /// committed its own scratch) into this scratch's blast radius.
    pub fn adopt(&mut self, chain: ChainId) {
        self.chains.push(chain);
    }

    /// Transfers ownership of every recorded chain to the built structure:
    /// the scratch forgets them and its `Drop` becomes a no-op.
    pub fn commit(mut self) {
        self.committed = true;
    }
}

impl Drop for ChainScratch {
    fn drop(&mut self) {
        if !self.committed {
            for &chain in &self.chains {
                self.pool.discard_chain(chain);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_resman::ResourceManager;
    use payg_storage::{MemStore, PageStore};
    use std::sync::Arc;

    #[test]
    fn uncommitted_scratch_discards_its_chains() {
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn PageStore>, ResourceManager::new());
        {
            let mut scratch = ChainScratch::new(&pool);
            let c = scratch.create_chain(64).unwrap();
            store.append_page(c, &[1, 2, 3]).unwrap();
            assert_eq!(store.chains().len(), 1);
        }
        assert!(store.chains().is_empty(), "dropped scratch reclaims the chain");
    }

    #[test]
    fn committed_scratch_keeps_chains_and_adoptions() {
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn PageStore>, ResourceManager::new());
        let side = store.create_chain(64).unwrap();
        let mut scratch = ChainScratch::new(&pool);
        scratch.create_chain(64).unwrap();
        scratch.adopt(side);
        scratch.commit();
        assert_eq!(store.chains().len(), 2, "commit severs the reclamation");
    }

    #[test]
    fn adopted_chains_die_with_an_uncommitted_scratch() {
        let store = Arc::new(MemStore::new());
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn PageStore>, ResourceManager::new());
        let side = store.create_chain(64).unwrap();
        {
            let mut scratch = ChainScratch::new(&pool);
            scratch.adopt(side);
        }
        assert!(store.chains().is_empty());
    }
}
