//! The uniform read interface over both column kinds.

use crate::datavec::ScanOptions;
use crate::{CoreResult, DataType, Value, ValuePredicate};
use payg_encoding::VidSet;

/// Read operations every column supports regardless of load policy. Methods
/// mirror the paper's logical accesses: point decode, batch decode (late
/// materialization), predicate-to-vid translation via the dictionary, and
/// row search via the data vector or the inverted index.
pub trait ColumnRead {
    /// Number of rows.
    fn len(&self) -> u64;

    /// True when the column holds no rows.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's value type.
    fn data_type(&self) -> DataType;

    /// Dictionary cardinality (distinct values).
    fn cardinality(&self) -> u64;

    /// True when the column has an inverted index.
    fn has_index(&self) -> bool;

    /// Materializes the value at one row (data vector get + dictionary
    /// `findByValueID`).
    fn get_value(&self, rpos: u64) -> CoreResult<Value>;

    /// Materializes the values at the given rows (late materialization:
    /// decode vids first, then look each distinct vid up once).
    fn get_values(&self, rposs: &[u64]) -> CoreResult<Vec<Value>>;

    /// Decodes the value identifiers of a row range into `out`.
    fn get_vids(&self, from: u64, to: u64, out: &mut Vec<u64>) -> CoreResult<()>;

    /// Translates a value predicate to the matching identifier set via the
    /// dictionary (order preservation keeps ranges contiguous).
    fn vid_set_for(&self, pred: &ValuePredicate) -> CoreResult<VidSet>;

    /// Returns the ascending row positions in `from..to` matching `pred`,
    /// answered from the inverted index when one exists (Alg. 5) and by a
    /// data-vector scan otherwise (Alg. 1).
    fn find_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<Vec<u64>>;

    /// Materializes the dictionary key for `vid` (used by engines that
    /// compare keys without decoding values).
    fn key_by_vid(&self, vid: u64) -> CoreResult<Vec<u8>>;

    /// Counts rows in `from..to` matching `pred`.
    fn count_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<u64> {
        Ok(self.find_rows(pred, from, to)?.len() as u64)
    }

    /// [`ColumnRead::find_rows`] with an explicit parallelism budget. The
    /// result is bit-identical to the sequential scan; implementations that
    /// cannot parallelize fall back to it. Index-backed answers stay
    /// sequential — segmenting pays off on data-vector scans, where each
    /// partition touches disjoint pages.
    fn find_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        let _ = opts;
        self.find_rows(pred, from, to)
    }

    /// [`ColumnRead::count_rows`] with an explicit parallelism budget.
    fn count_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<u64> {
        Ok(self.find_rows_par(pred, from, to, opts)?.len() as u64)
    }
}
