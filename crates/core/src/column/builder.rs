//! Column construction: one persisted format, two access modes.

use crate::column::paged::{ColumnParts, IndexSlot};
use crate::column::{Column, IndexMode, LoadPolicy, PagedColumn, ResidentColumn};
use crate::datavec::PagedDataVector;
use crate::dict::{PagedDictBuildStats, PagedDictionary};
use crate::invidx::PagedInvertedIndex;
use crate::{CoreResult, DataType, PageConfig, Value};
use payg_encoding::{BitPackedVec, BitWidth};
use payg_resman::Disposition;
use payg_storage::{BufferPool, ChainId};
use std::collections::HashMap;
use std::sync::Arc;

/// Configures and builds one column (this is the engine's equivalent of the
/// `PAGE LOADABLE` clause at column creation).
pub struct ColumnBuilder {
    data_type: DataType,
    policy: LoadPolicy,
    index_mode: IndexMode,
    resident_disposition: Disposition,
}

/// The result of a build: the column plus layout statistics.
pub struct ColumnBuild {
    /// The constructed column.
    pub column: Column,
    /// Dictionary-chain statistics.
    pub dict_stats: PagedDictBuildStats,
    /// Pages in the data-vector chain.
    pub datavec_pages: u64,
    /// Pages in the inverted-index chain (0 when no index was requested).
    pub index_pages: u64,
}

impl ColumnBuilder {
    /// A builder for a column of `data_type`; defaults to a fully resident
    /// column without an inverted index.
    pub fn new(data_type: DataType) -> Self {
        ColumnBuilder {
            data_type,
            policy: LoadPolicy::FullyResident,
            index_mode: IndexMode::None,
            resident_disposition: Disposition::MidTerm,
        }
    }

    /// Sets the load policy.
    pub fn policy(mut self, policy: LoadPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Requests an eagerly built inverted index (or none).
    pub fn with_index(mut self, with_index: bool) -> Self {
        self.index_mode = if with_index { IndexMode::Eager } else { IndexMode::None };
        self
    }

    /// Sets the full index policy, including the adaptive (workload-driven)
    /// mode of the paper's §8. Adaptive mode applies to page-loadable
    /// columns; a fully resident column treats it as eager (its image is
    /// rebuilt wholesale on every load anyway).
    pub fn index_mode(mut self, mode: IndexMode) -> Self {
        self.index_mode = mode;
        self
    }

    /// Sets the eviction disposition a *resident* column registers with (the
    /// "higher unload priority" knob data aging uses for cold default
    /// columns, §4.1). Ignored for page-loadable columns, whose pages always
    /// use the paged-attribute disposition.
    pub fn resident_disposition(mut self, d: Disposition) -> Self {
        self.resident_disposition = d;
        self
    }

    /// Encodes, persists and constructs the column from row values.
    ///
    /// All values must match the builder's data type. The main-fragment
    /// invariants hold on the result: the dictionary is sorted and contains
    /// exactly the distinct values present; identifiers are assigned in key
    /// order.
    pub fn build(
        self,
        pool: &BufferPool,
        config: &PageConfig,
        values: &[Value],
    ) -> CoreResult<ColumnBuild> {
        for v in values {
            v.check_type(self.data_type)?;
        }
        // Dictionary-encode: sorted distinct keys, then per-row vids.
        let mut keys: Vec<Vec<u8>> = values.iter().map(Value::to_key).collect();
        keys.sort();
        keys.dedup();
        let vid_of: HashMap<&[u8], u64> = keys
            .iter()
            .enumerate()
            .map(|(i, k)| (k.as_slice(), i as u64))
            .collect();
        let width = BitWidth::for_cardinality(keys.len() as u64);
        let vids: Vec<u64> = values.iter().map(|v| vid_of[v.to_key().as_slice()]).collect();
        let packed = BitPackedVec::from_values_with_width(&vids, width);

        // Persist the three structures (shared by both access modes). Each
        // sub-build cleans up after its own failure; the scratch adopts the
        // ones that succeeded so a *later* failure reclaims them too.
        let mut scratch = crate::scratch::ChainScratch::new(pool);
        let (dict, dict_stats) = PagedDictionary::build(pool, config, &keys)?;
        for (_, chain) in dict.chains() {
            scratch.adopt(ChainId(chain));
        }
        let data = PagedDataVector::build(pool, config, &packed)?;
        scratch.adopt(ChainId(data.chain_id()));
        let effective_mode = match (self.index_mode, self.policy) {
            // Resident columns rebuild their whole image on load; adaptive
            // building degenerates to eager there.
            (IndexMode::Adaptive { .. }, LoadPolicy::FullyResident) => IndexMode::Eager,
            (m, _) => m,
        };
        let index = match effective_mode {
            IndexMode::None => IndexSlot::None,
            IndexMode::Eager => IndexSlot::Eager(PagedInvertedIndex::build(
                pool,
                config,
                &vids,
                keys.len() as u64,
            )?),
            IndexMode::Adaptive { threshold } => IndexSlot::Adaptive {
                threshold,
                searches: Default::default(),
                built: Default::default(),
            },
        };
        scratch.commit();
        let datavec_pages = data.pages();
        let index_pages = match &index {
            IndexSlot::Eager(i) => i.pages(),
            _ => 0,
        };

        let parts = Arc::new(ColumnParts {
            data_type: self.data_type,
            len: values.len() as u64,
            cardinality: keys.len() as u64,
            pool: pool.clone(),
            config: *config,
            data,
            dict,
            index,
        });
        let column = match self.policy {
            LoadPolicy::PageLoadable => Column::Paged(PagedColumn::new(parts)),
            LoadPolicy::FullyResident => {
                Column::Resident(ResidentColumn::new(parts, self.resident_disposition))
            }
        };
        Ok(ColumnBuild { column, dict_stats, datavec_pages, index_pages })
    }
}
