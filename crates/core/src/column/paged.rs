//! The page-loadable column.

use crate::column::read::ColumnRead;
use crate::datavec::ScanOptions;
use crate::dict::HandleCache;
use crate::invidx::PagedInvertedIndex;
use crate::{CoreResult, DataType, PageConfig, Value, ValuePredicate};
use payg_encoding::dispatch::{self, CodecKind, ProbeShape, ScanPath};
use payg_encoding::VidSet;
use payg_storage::BufferPool;
use std::collections::HashMap;
use std::sync::{Arc, OnceLock};

/// When (and whether) a column's inverted index exists (paper §8: the
/// inverted index is *non-critical* data — recoverable from the data
/// vector — so it can be built adaptively, driven by the workload, instead
/// of eagerly at every delta merge).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexMode {
    /// No inverted index; searches scan the data vector (Alg. 1).
    None,
    /// Built eagerly at delta merge (the paper's §3 default).
    Eager,
    /// Built lazily, from the paged data vector, once the column has served
    /// `threshold` searches — the paper's future-work proposal.
    Adaptive {
        /// Searches before the index is built.
        threshold: u64,
    },
}

/// Maps a value predicate to the probe shape the codec dispatch seam
/// understands: equality is a point probe, `In` is a set probe, and the
/// ordered predicates (`Between`, prefix) are range probes.
pub fn probe_shape(pred: &ValuePredicate) -> ProbeShape {
    match pred {
        ValuePredicate::Eq(_) => ProbeShape::Point,
        ValuePredicate::In(_) => ProbeShape::Set,
        ValuePredicate::Between(..) | ValuePredicate::StartsWith(_) => ProbeShape::Range,
    }
}

/// The index slot of a column under a given [`IndexMode`].
pub(crate) enum IndexSlot {
    None,
    Eager(PagedInvertedIndex),
    Adaptive {
        threshold: u64,
        /// Detached [`payg_obs::Counter`] (not a registry series): the count
        /// drives the build decision, it is not exported.
        searches: payg_obs::Counter,
        built: OnceLock<PagedInvertedIndex>,
    },
}

impl IndexSlot {
    /// The index if it currently exists (never triggers a build).
    pub(crate) fn current(&self) -> Option<&PagedInvertedIndex> {
        match self {
            IndexSlot::None => None,
            IndexSlot::Eager(i) => Some(i),
            IndexSlot::Adaptive { built, .. } => built.get(),
        }
    }
}

/// The persisted parts shared by both access modes.
pub(crate) struct ColumnParts {
    pub data_type: DataType,
    pub len: u64,
    pub cardinality: u64,
    pub pool: BufferPool,
    pub config: PageConfig,
    pub data: crate::datavec::PagedDataVector,
    pub dict: crate::dict::PagedDictionary,
    pub index: IndexSlot,
}

impl ColumnParts {
    /// The index for a search: counts the search, and builds the adaptive
    /// index from the data vector (critical data) once the threshold is
    /// crossed.
    pub(crate) fn index_for_search(&self) -> CoreResult<Option<&PagedInvertedIndex>> {
        match &self.index {
            IndexSlot::None => Ok(None),
            IndexSlot::Eager(i) => Ok(Some(i)),
            IndexSlot::Adaptive { threshold, searches, built } => {
                if let Some(i) = built.get() {
                    return Ok(Some(i));
                }
                let n = searches.add(1);
                if n < *threshold {
                    return Ok(None);
                }
                // Rebuild non-critical data from critical data (§8): decode
                // the whole data vector once and persist a fresh index chain.
                let vids: Vec<u64> = self.data.decode_all_direct()?.iter().collect();
                let index =
                    PagedInvertedIndex::build(&self.pool, &self.config, &vids, self.cardinality)?;
                Ok(Some(built.get_or_init(|| index)))
            }
        }
    }

    /// The store chains backing this column, labeled by role.
    pub(crate) fn chains(&self) -> Vec<(&'static str, u64)> {
        let mut out = vec![("data", self.data.chain_id())];
        out.extend(self.dict.chains());
        if let Some(i) = self.index.current() {
            out.push(("index", i.chain_id()));
        }
        out
    }
}

/// A column whose structures are loaded page by page on demand. Its
/// mandatory memory footprint is metadata only; everything else is pinned
/// through the buffer pool for exactly the duration of each access.
pub struct PagedColumn {
    parts: Arc<ColumnParts>,
}

impl PagedColumn {
    pub(crate) fn new(parts: Arc<ColumnParts>) -> Self {
        PagedColumn { parts }
    }

    pub(crate) fn parts(&self) -> &ColumnParts {
        &self.parts
    }

    fn cache(&self) -> HandleCache {
        HandleCache::new(self.parts.pool.clone())
    }

    /// Heap bytes of the always-resident metadata.
    pub fn meta_heap_bytes(&self) -> usize {
        self.parts.dict.meta_heap_bytes()
    }

    /// The codec of the dictionary's value-block chain.
    pub fn dict_codec(&self) -> CodecKind {
        self.parts.dict.codec_kind()
    }

    /// The codec of the inverted index's posting chain, if an index
    /// currently exists (adaptive indexes report `None` until built).
    pub fn index_codec(&self) -> Option<CodecKind> {
        self.parts.index.current().map(|i| i.codec_kind())
    }

    /// The strategy a row search for `pred` runs with: compressed-domain
    /// when an index exists and [`dispatch::choose`] picks it for the
    /// index's codec and the probe's shape, decode-then-scan otherwise.
    /// (Dictionary probes decide independently: FSST equality probes always
    /// compare compressed bytes inside `find`.)
    pub fn scan_path(&self, pred: &ValuePredicate) -> ScanPath {
        match self.parts.index.current() {
            Some(i) => dispatch::choose(i.codec_kind(), probe_shape(pred)),
            None => ScanPath::DecodeThenScan,
        }
    }

    /// The store chains backing this column, labeled by role (`data`,
    /// `dict*`, `index`) — lets EXPLAIN ANALYZE group traced page events
    /// back to the structure that owns the touched pages.
    pub fn chains(&self) -> Vec<(&'static str, u64)> {
        self.parts.chains()
    }

    fn vid_set_cached(&self, pred: &ValuePredicate, cache: &mut HandleCache) -> CoreResult<VidSet> {
        Ok(match pred {
            ValuePredicate::Eq(v) => {
                v.check_type(self.parts.data_type)?;
                match self.parts.dict.find(&v.to_key(), cache)? {
                    Ok(vid) => VidSet::Single(vid),
                    Err(_) => VidSet::from_vids(Vec::new()),
                }
            }
            ValuePredicate::Between(lo, hi) => {
                lo.check_type(self.parts.data_type)?;
                hi.check_type(self.parts.data_type)?;
                match self.parts.dict.vid_range(&lo.to_key(), &hi.to_key(), cache)? {
                    Some((lo, hi)) => VidSet::range(lo, hi),
                    None => VidSet::from_vids(Vec::new()),
                }
            }
            ValuePredicate::In(vs) => {
                let mut vids = Vec::new();
                for v in vs {
                    v.check_type(self.parts.data_type)?;
                    if let Ok(vid) = self.parts.dict.find(&v.to_key(), cache)? {
                        vids.push(vid);
                    }
                }
                VidSet::from_vids(vids)
            }
            ValuePredicate::StartsWith(prefix) => {
                Value::Varchar(String::new()).check_type(self.parts.data_type)?;
                let lo = match self.parts.dict.find(prefix.as_bytes(), cache)? {
                    Ok(v) | Err(v) => v,
                };
                let hi = match crate::value::prefix_successor(prefix.as_bytes()) {
                    Some(succ) => match self.parts.dict.find(&succ, cache)? {
                        Ok(v) | Err(v) => v,
                    },
                    None => self.parts.cardinality,
                };
                if lo < hi {
                    VidSet::range(lo, hi - 1)
                } else {
                    VidSet::from_vids(Vec::new())
                }
            }
        })
    }

    /// Shared body of `find_rows` / `find_rows_par`: translate the predicate,
    /// then answer from the index (always sequential — postings are vid-major,
    /// not row-major) or scan the data vector, segmented when `opts` allows.
    fn find_rows_impl(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        let mut cache = self.cache();
        let set = self.vid_set_cached(pred, &mut cache)?;
        let mut out = Vec::new();
        if set.is_empty() {
            return Ok(out);
        }
        match self.parts.index_for_search()? {
            // Alg. 5: answer from the paged inverted index. The codec
            // dispatch seam picks the traversal per postinglist: under PEF
            // point/set probes seek in the compressed domain — `next_geq`
            // leapfrogs every partition below `from` on its two-varint
            // header alone — while plain bit-packed postings (and range
            // shapes, where the whole list is emitted anyway) drain through
            // the classic decode path.
            Some(index) => {
                let path = dispatch::choose(index.codec_kind(), probe_shape(pred));
                // Flight recorder: one chunk-dispatch span covers the whole
                // index traversal; `detail` records which path `choose`
                // picked (1 = compressed-domain, 0 = decode-then-scan).
                let _span = self.parts.pool.registry().tracer().span(
                    payg_obs::SpanKind::ChunkDispatch,
                    matches!(path, ScanPath::CompressedDomain) as u64,
                );
                let mut it = index.iter();
                for vid in set.iter() {
                    match path {
                        ScanPath::CompressedDomain => {
                            let mut cur = it.next_row_pos_geq(vid, from)?;
                            while let Some(rpos) = cur {
                                if rpos >= to {
                                    break;
                                }
                                out.push(rpos);
                                cur = it.get_next_row_pos()?;
                            }
                        }
                        ScanPath::DecodeThenScan => {
                            if let Some(first) = it.get_first_row_pos(vid)? {
                                if first >= from && first < to {
                                    out.push(first);
                                }
                                while let Some(rpos) = it.get_next_row_pos()? {
                                    if rpos >= from && rpos < to {
                                        out.push(rpos);
                                    }
                                }
                            }
                        }
                    }
                }
                out.sort_unstable();
            }
            // Alg. 1: scan the paged data vector, loading only the pages
            // that overlap the row range — segmented across workers when
            // `opts` allows.
            None => {
                let to = to.min(self.parts.len);
                if opts.workers > 1 {
                    out = self.parts.data.par_search(from, to, &set, opts)?;
                } else {
                    self.parts.data.iter().search(from, to, &set, &mut out)?;
                }
            }
        }
        Ok(out)
    }

    /// COUNT body for the no-index case: translate the predicate, then run
    /// the non-materializing count kernel over the data vector — positions
    /// are never collected, each page contributes popcounts of its result
    /// bitmaps. Falls back to an index-driven `find_rows` when an index
    /// exists (postings are already positional).
    fn count_rows_impl(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<u64> {
        if let Some(n) = self.count_from_directory(pred, from, to)? {
            return Ok(n);
        }
        if self.parts.index_for_search()?.is_some() {
            return Ok(self.find_rows_impl(pred, from, to, opts)?.len() as u64);
        }
        let mut cache = self.cache();
        let set = self.vid_set_cached(pred, &mut cache)?;
        if set.is_empty() {
            return Ok(0);
        }
        let to = to.min(self.parts.len);
        if from >= to {
            return Ok(0);
        }
        if opts.workers > 1 {
            self.parts.data.par_count(from, to, &set, opts)
        } else {
            self.parts.data.iter().count(from, to, &set)
        }
    }

    /// Full-range counts with an inverted index come straight from the
    /// directory — no postinglist pages load. `None` when the shortcut does
    /// not apply.
    fn count_from_directory(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
    ) -> CoreResult<Option<u64>> {
        if let Some(index) = self.parts.index_for_search()? {
            if from == 0 && to >= self.parts.len {
                let mut cache = self.cache();
                let set = self.vid_set_cached(pred, &mut cache)?;
                let mut it = index.iter();
                let mut n = 0u64;
                for vid in set.iter() {
                    n += it.posting_count(vid)?;
                }
                return Ok(Some(n));
            }
        }
        Ok(None)
    }
}

impl ColumnRead for PagedColumn {
    fn len(&self) -> u64 {
        self.parts.len
    }

    fn data_type(&self) -> DataType {
        self.parts.data_type
    }

    fn cardinality(&self) -> u64 {
        self.parts.cardinality
    }

    fn has_index(&self) -> bool {
        self.parts.index.current().is_some()
    }

    fn get_value(&self, rpos: u64) -> CoreResult<Value> {
        let vid = self.parts.data.iter().get(rpos)?;
        let mut cache = self.cache();
        let key = self.parts.dict.key_by_vid(vid, &mut cache)?;
        Value::from_key(self.parts.data_type, &key)
    }

    fn get_values(&self, rposs: &[u64]) -> CoreResult<Vec<Value>> {
        // Late materialization: decode all vids first, then resolve the
        // *distinct* vids in ascending order — vid order is dictionary-page
        // order, so a batch touches each dictionary page once, front to
        // back (the access pattern §3.2.3's handle cache is built for).
        // `mget_at` visits row positions in sorted order internally, so the
        // data-vector side also decodes each chunk once and pins each page
        // once, whatever order the caller asked in.
        let mut vids = Vec::with_capacity(rposs.len());
        self.parts.data.iter().mget_at(rposs, &mut vids)?;
        let mut distinct: Vec<u64> = vids.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let mut cache = self.cache();
        let mut resolved: HashMap<u64, Value> = HashMap::with_capacity(distinct.len());
        for vid in distinct {
            let key = self.parts.dict.key_by_vid(vid, &mut cache)?;
            resolved.insert(vid, Value::from_key(self.parts.data_type, &key)?);
        }
        Ok(vids.into_iter().map(|vid| resolved[&vid].clone()).collect())
    }

    fn get_vids(&self, from: u64, to: u64, out: &mut Vec<u64>) -> CoreResult<()> {
        self.parts.data.iter().mget(from, to, out)
    }

    fn vid_set_for(&self, pred: &ValuePredicate) -> CoreResult<VidSet> {
        let mut cache = self.cache();
        self.vid_set_cached(pred, &mut cache)
    }

    fn find_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<Vec<u64>> {
        self.find_rows_impl(pred, from, to, ScanOptions::sequential())
    }

    fn find_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        self.find_rows_impl(pred, from, to, opts)
    }

    fn count_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<u64> {
        self.count_rows_impl(pred, from, to, opts)
    }

    fn key_by_vid(&self, vid: u64) -> CoreResult<Vec<u8>> {
        let mut cache = self.cache();
        self.parts.dict.key_by_vid(vid, &mut cache)
    }

    fn count_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<u64> {
        self.count_rows_impl(pred, from, to, ScanOptions::sequential())
    }
}
