//! Column assembly: data vector + dictionary + optional inverted index.
//!
//! Every column is persisted once (page chains for all three structures) and
//! accessed in one of two modes chosen at build time ([`LoadPolicy`]):
//!
//! * [`ResidentColumn`] — the paper's *default column*: on first access the
//!   whole column is loaded into contiguous memory (direct store reads, no
//!   buffer pool) and registered with the resource manager as a **single**
//!   resource; under pressure it is evicted whole.
//! * [`PagedColumn`] — the paper's *page loadable column*: reads pin
//!   individual pages through the buffer pool; the mandatory memory
//!   footprint is the metadata only.
//!
//! Both implement [`ColumnRead`]; the difference is invisible to queries.

mod builder;
mod paged;
mod read;
mod resident;

pub use builder::{ColumnBuild, ColumnBuilder};
pub use paged::{probe_shape, IndexMode, PagedColumn};
pub use read::ColumnRead;
pub use resident::ResidentColumn;

use crate::datavec::ScanOptions;
use crate::meta::{MetaReader, MetaWriter};
use crate::{CoreError, CoreResult, DataType, PageConfig, Value, ValuePredicate};
use payg_encoding::dispatch::{CodecKind, ScanPath};
use payg_encoding::VidSet;
use payg_resman::Disposition;
use payg_storage::{BufferPool, StorageError};
use std::sync::Arc;

/// Load behaviour chosen at column creation (paper §1: "the preferred
/// loading behavior of a column is specified at creation time").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadPolicy {
    /// Load the entire column into memory on first access (default column).
    FullyResident,
    /// Load pages on demand (PAGE LOADABLE column).
    PageLoadable,
}

/// A column in either load mode.
pub enum Column {
    /// A fully-resident (default) column.
    Resident(ResidentColumn),
    /// A page-loadable column.
    Paged(PagedColumn),
}

impl Column {
    /// The column's load policy.
    pub fn policy(&self) -> LoadPolicy {
        match self {
            Column::Resident(_) => LoadPolicy::FullyResident,
            Column::Paged(_) => LoadPolicy::PageLoadable,
        }
    }

    /// For resident columns: force the full load now (otherwise it happens
    /// on first access). No-op for paged columns.
    pub fn ensure_loaded(&self) -> CoreResult<()> {
        if let Column::Resident(c) = self {
            c.load()?;
        }
        Ok(())
    }

    /// For resident columns: drop the loaded image (it reloads on next
    /// access). No-op for paged columns, whose pages the resource manager
    /// evicts piecewise.
    pub fn unload(&self) {
        if let Column::Resident(c) = self {
            c.unload();
        }
    }

    /// The codec of the dictionary's persisted value-block chain. Both load
    /// modes share one persisted format, so this reports the on-disk codec
    /// even for resident columns (whose in-memory image is decoded).
    pub fn dict_codec(&self) -> CodecKind {
        match self {
            Column::Resident(c) => c.parts().dict.codec_kind(),
            Column::Paged(c) => c.parts().dict.codec_kind(),
        }
    }

    /// The codec of the persisted posting chain, if an index currently
    /// exists.
    pub fn index_codec(&self) -> Option<CodecKind> {
        match self {
            Column::Resident(c) => c.parts().index.current().map(|i| i.codec_kind()),
            Column::Paged(c) => c.parts().index.current().map(|i| i.codec_kind()),
        }
    }

    /// The store chains backing this column, labeled by role (`data`,
    /// `dict*`, `index`). Both load modes persist the same chains, so
    /// EXPLAIN ANALYZE can attribute traced page events either way.
    pub fn chains(&self) -> Vec<(&'static str, u64)> {
        match self {
            Column::Resident(c) => c.parts().chains(),
            Column::Paged(c) => c.parts().chains(),
        }
    }

    /// The strategy a row search for `pred` runs with. Resident columns
    /// always decode-then-scan — their image is already decompressed in
    /// memory — so only page-loadable columns consult the dispatch seam.
    pub fn scan_path(&self, pred: &ValuePredicate) -> ScanPath {
        match self {
            Column::Resident(_) => ScanPath::DecodeThenScan,
            Column::Paged(c) => c.scan_path(pred),
        }
    }

    /// Serializes everything needed to reopen this column over the same
    /// store after a process restart (catalog checkpoint): type, load
    /// policy, page geometry and the metadata of all three structures. The
    /// page chains themselves already live in the store.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let (parts, policy_tag, disposition) = match self {
            Column::Resident(c) => (c.parts(), 0u8, c.disposition()),
            Column::Paged(c) => (c.parts(), 1u8, Disposition::MidTerm),
        };
        let mut w = MetaWriter::new();
        w.u8(data_type_tag(parts.data_type));
        w.u8(policy_tag);
        w.u8(disposition_tag(disposition));
        w.u64(parts.len);
        w.u64(parts.cardinality);
        for v in [
            parts.config.datavec_page,
            parts.config.dict_page,
            parts.config.overflow_page,
            parts.config.helper_page,
            parts.config.index_page,
            parts.config.inline_limit,
        ] {
            w.u64(v as u64);
        }
        w.u64((parts.config.dict_fsst as u64) | ((parts.config.pef_postings as u64) << 1));
        w.bytes(&parts.dict.meta_bytes());
        w.bytes(&parts.data.meta_bytes());
        match &parts.index {
            paged::IndexSlot::None => w.u8(0),
            paged::IndexSlot::Eager(i) => {
                w.u8(1);
                w.bytes(&i.meta_bytes());
            }
            paged::IndexSlot::Adaptive { threshold, built, .. } => match built.get() {
                None => {
                    w.u8(2);
                    w.u64(*threshold);
                }
                Some(i) => {
                    w.u8(3);
                    w.u64(*threshold);
                    w.bytes(&i.meta_bytes());
                }
            },
        }
        w.finish()
    }

    /// Reopens a column from checkpointed metadata over `pool`'s store.
    pub fn open(pool: &BufferPool, bytes: &[u8]) -> CoreResult<Column> {
        let mut r = MetaReader::new(bytes);
        let data_type = data_type_from(r.u8()?)?;
        let policy_tag = r.u8()?;
        let disposition = disposition_from(r.u8()?)?;
        let len = r.u64()?;
        let cardinality = r.u64()?;
        let mut cfg_vals = [0u64; 6];
        for v in &mut cfg_vals {
            *v = r.u64()?;
        }
        let cfg_flags = r.u64()?;
        let config = PageConfig {
            datavec_page: cfg_vals[0] as usize,
            dict_page: cfg_vals[1] as usize,
            overflow_page: cfg_vals[2] as usize,
            helper_page: cfg_vals[3] as usize,
            index_page: cfg_vals[4] as usize,
            inline_limit: cfg_vals[5] as usize,
            dict_fsst: cfg_flags & 1 != 0,
            pef_postings: cfg_flags & 2 != 0,
        };
        let dict = crate::dict::PagedDictionary::open(pool, &r.bytes()?)?;
        let data = crate::datavec::PagedDataVector::open(pool, &r.bytes()?)?;
        let index = match r.u8()? {
            0 => paged::IndexSlot::None,
            1 => paged::IndexSlot::Eager(crate::invidx::PagedInvertedIndex::open(
                pool,
                &r.bytes()?,
            )?),
            2 => paged::IndexSlot::Adaptive {
                threshold: r.u64()?,
                searches: Default::default(),
                built: Default::default(),
            },
            3 => {
                let threshold = r.u64()?;
                let index = crate::invidx::PagedInvertedIndex::open(pool, &r.bytes()?)?;
                let built = std::sync::OnceLock::new();
                // A just-created OnceLock cannot already hold a value.
                let _ = built.set(index);
                paged::IndexSlot::Adaptive { threshold, searches: Default::default(), built }
            }
            t => {
                return Err(CoreError::Storage(StorageError::corrupt(format!(
                    "catalog: unknown index tag {t}"
                ))))
            }
        };
        r.expect_end()?;
        if data.len() != len || dict.cardinality() != cardinality {
            return Err(CoreError::Storage(StorageError::corrupt(
                "catalog: column metadata inconsistent with structures",
            )));
        }
        let parts = Arc::new(paged::ColumnParts {
            data_type,
            len,
            cardinality,
            pool: pool.clone(),
            config,
            data,
            dict,
            index,
        });
        Ok(match policy_tag {
            1 => Column::Paged(PagedColumn::new(parts)),
            0 => Column::Resident(ResidentColumn::new(parts, disposition)),
            t => {
                return Err(CoreError::Storage(StorageError::corrupt(format!(
                    "catalog: unknown policy tag {t}"
                ))))
            }
        })
    }
}

fn data_type_tag(t: DataType) -> u8 {
    match t {
        DataType::Integer => 0,
        DataType::Decimal => 1,
        DataType::Double => 2,
        DataType::Varchar => 3,
    }
}

fn data_type_from(t: u8) -> CoreResult<DataType> {
    Ok(match t {
        0 => DataType::Integer,
        1 => DataType::Decimal,
        2 => DataType::Double,
        3 => DataType::Varchar,
        _ => {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "catalog: unknown data type tag {t}"
            ))))
        }
    })
}

/// Maps dispositions to stable catalog tags.
pub fn disposition_tag(d: Disposition) -> u8 {
    match d {
        Disposition::NonSwappable => 0,
        Disposition::LongTerm => 1,
        Disposition::MidTerm => 2,
        Disposition::ShortTerm => 3,
        Disposition::Temporary => 4,
        Disposition::PagedAttribute => 5,
    }
}

/// Inverse of [`disposition_tag`].
pub fn disposition_from(t: u8) -> CoreResult<Disposition> {
    Ok(match t {
        0 => Disposition::NonSwappable,
        1 => Disposition::LongTerm,
        2 => Disposition::MidTerm,
        3 => Disposition::ShortTerm,
        4 => Disposition::Temporary,
        5 => Disposition::PagedAttribute,
        _ => {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "catalog: unknown disposition tag {t}"
            ))))
        }
    })
}

impl ColumnRead for Column {
    fn len(&self) -> u64 {
        match self {
            Column::Resident(c) => c.len(),
            Column::Paged(c) => c.len(),
        }
    }

    fn data_type(&self) -> DataType {
        match self {
            Column::Resident(c) => c.data_type(),
            Column::Paged(c) => c.data_type(),
        }
    }

    fn cardinality(&self) -> u64 {
        match self {
            Column::Resident(c) => c.cardinality(),
            Column::Paged(c) => c.cardinality(),
        }
    }

    fn has_index(&self) -> bool {
        match self {
            Column::Resident(c) => c.has_index(),
            Column::Paged(c) => c.has_index(),
        }
    }

    fn get_value(&self, rpos: u64) -> CoreResult<Value> {
        match self {
            Column::Resident(c) => c.get_value(rpos),
            Column::Paged(c) => c.get_value(rpos),
        }
    }

    fn get_values(&self, rposs: &[u64]) -> CoreResult<Vec<Value>> {
        match self {
            Column::Resident(c) => c.get_values(rposs),
            Column::Paged(c) => c.get_values(rposs),
        }
    }

    fn get_vids(&self, from: u64, to: u64, out: &mut Vec<u64>) -> CoreResult<()> {
        match self {
            Column::Resident(c) => c.get_vids(from, to, out),
            Column::Paged(c) => c.get_vids(from, to, out),
        }
    }

    fn vid_set_for(&self, pred: &ValuePredicate) -> CoreResult<VidSet> {
        match self {
            Column::Resident(c) => c.vid_set_for(pred),
            Column::Paged(c) => c.vid_set_for(pred),
        }
    }

    fn find_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<Vec<u64>> {
        match self {
            Column::Resident(c) => c.find_rows(pred, from, to),
            Column::Paged(c) => c.find_rows(pred, from, to),
        }
    }

    fn key_by_vid(&self, vid: u64) -> CoreResult<Vec<u8>> {
        match self {
            Column::Resident(c) => c.key_by_vid(vid),
            Column::Paged(c) => c.key_by_vid(vid),
        }
    }

    fn count_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<u64> {
        match self {
            Column::Resident(c) => c.count_rows(pred, from, to),
            Column::Paged(c) => c.count_rows(pred, from, to),
        }
    }

    fn find_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        match self {
            Column::Resident(c) => c.find_rows_par(pred, from, to, opts),
            Column::Paged(c) => c.find_rows_par(pred, from, to, opts),
        }
    }

    fn count_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<u64> {
        match self {
            Column::Resident(c) => c.count_rows_par(pred, from, to, opts),
            Column::Paged(c) => c.count_rows_par(pred, from, to, opts),
        }
    }
}
