//! The fully-resident (default) column.

use crate::column::paged::ColumnParts;
use crate::column::read::ColumnRead;
use crate::datavec::{par_search_resident, ScanOptions};
use crate::dict::InMemoryDict;
use crate::invidx::InMemoryInvertedIndex;
use crate::sync::{LockRank, Mutex};
use crate::{CoreError, CoreResult, DataType, Value, ValuePredicate};
use payg_encoding::scan;
use payg_encoding::{BitPackedVec, VidSet};
use payg_obs::{names, Counter};
use payg_resman::{Disposition, ResourceId};
use std::collections::HashMap;
use std::sync::Arc;

/// The contiguous in-memory image of a loaded column.
struct Image {
    data: BitPackedVec,
    dict: InMemoryDict,
    index: Option<InMemoryInvertedIndex>,
}

impl Image {
    fn heap_bytes(&self) -> usize {
        self.data.heap_bytes()
            + self.dict.heap_bytes()
            + self.index.as_ref().map_or(0, |i| i.heap_bytes())
    }
}

struct Loaded {
    image: Arc<Image>,
    rid: ResourceId,
}

/// A default column: the entire column loads into memory on first access
/// (direct store reads — the paper's expensive full-column load) and
/// registers as **one** resource. The resource manager may evict it whole;
/// the next access reloads it whole. This is the comparator (`T_b`) for
/// every experiment.
pub struct ResidentColumn {
    parts: Arc<ColumnParts>,
    disposition: Disposition,
    state: Arc<Mutex<Option<Loaded>>>,
    /// Detached per-column counter behind [`ResidentColumn::load_count`];
    /// the registry's `column_full_loads` series (shared by every column on
    /// the pool's registry) is bumped alongside it.
    load_count: Counter,
    full_loads: Counter,
}

impl ResidentColumn {
    pub(crate) fn new(parts: Arc<ColumnParts>, disposition: Disposition) -> Self {
        let full_loads = parts.pool.registry().counter(names::COLUMN_FULL_LOADS);
        ResidentColumn {
            parts,
            disposition,
            state: Arc::new(Mutex::with_rank(None, LockRank::CoreColumn)),
            load_count: Counter::new(),
            full_loads,
        }
    }

    /// Loads the column if not loaded; returns the resident image.
    fn image(&self) -> CoreResult<Arc<Image>> {
        let resman = self.parts.pool.resource_manager().clone();
        let mut st = self.state.lock();
        if let Some(l) = st.as_ref() {
            resman.touch(l.rid);
            return Ok(Arc::clone(&l.image));
        }
        // Full column load: every structure is read in its entirety.
        let data = self.parts.data.decode_all_direct()?;
        let dict = InMemoryDict::from_sorted_keys(self.parts.dict.materialize_all_direct()?);
        let index = if self.parts.index.current().is_some() {
            // Non-critical data: rebuilt from the critical structures (§8).
            let vids: Vec<u64> = data.iter().collect();
            Some(InMemoryInvertedIndex::build(&vids, self.parts.cardinality))
        } else {
            None
        };
        let image = Arc::new(Image { data, dict, index });
        let state_weak = Arc::downgrade(&self.state);
        let rid = resman.register(image.heap_bytes(), self.disposition, move || {
            if let Some(state) = state_weak.upgrade() {
                *state.lock() = None;
            }
        });
        *st = Some(Loaded { image: Arc::clone(&image), rid });
        self.load_count.inc();
        self.full_loads.inc();
        Ok(image)
    }

    pub(crate) fn parts(&self) -> &ColumnParts {
        &self.parts
    }

    pub(crate) fn disposition(&self) -> Disposition {
        self.disposition
    }

    /// Forces the full load now.
    pub fn load(&self) -> CoreResult<()> {
        self.image().map(|_| ())
    }

    /// True when the column is currently memory resident.
    pub fn is_loaded(&self) -> bool {
        self.state.lock().is_some()
    }

    /// Drops the resident image voluntarily (reloaded on next access).
    pub fn unload(&self) {
        let mut st = self.state.lock();
        if let Some(l) = st.take() {
            self.parts.pool.resource_manager().deregister(l.rid);
        }
    }

    /// How many times the column has been (re)loaded — each one is the
    /// paper's expensive whole-column load.
    pub fn load_count(&self) -> u64 {
        self.load_count.get()
    }

    fn vid_set_from_image(&self, image: &Image, pred: &ValuePredicate) -> CoreResult<VidSet> {
        Ok(match pred {
            ValuePredicate::Eq(v) => {
                v.check_type(self.parts.data_type)?;
                match image.dict.find(&v.to_key()) {
                    Ok(vid) => VidSet::Single(vid),
                    Err(_) => VidSet::from_vids(Vec::new()),
                }
            }
            ValuePredicate::Between(lo, hi) => {
                lo.check_type(self.parts.data_type)?;
                hi.check_type(self.parts.data_type)?;
                let lo_vid = match image.dict.find(&lo.to_key()) {
                    Ok(v) | Err(v) => v,
                };
                let hi_vid = match image.dict.find(&hi.to_key()) {
                    Ok(v) => v + 1,
                    Err(v) => v,
                };
                if lo_vid < hi_vid {
                    VidSet::range(lo_vid, hi_vid - 1)
                } else {
                    VidSet::from_vids(Vec::new())
                }
            }
            ValuePredicate::In(vs) => {
                let mut vids = Vec::new();
                for v in vs {
                    v.check_type(self.parts.data_type)?;
                    if let Ok(vid) = image.dict.find(&v.to_key()) {
                        vids.push(vid);
                    }
                }
                VidSet::from_vids(vids)
            }
            ValuePredicate::StartsWith(prefix) => {
                Value::Varchar(String::new()).check_type(self.parts.data_type)?;
                let lo = match image.dict.find(prefix.as_bytes()) {
                    Ok(v) | Err(v) => v,
                };
                let hi = match crate::value::prefix_successor(prefix.as_bytes()) {
                    Some(succ) => match image.dict.find(&succ) {
                        Ok(v) | Err(v) => v,
                    },
                    None => self.parts.cardinality,
                };
                if lo < hi {
                    VidSet::range(lo, hi - 1)
                } else {
                    VidSet::from_vids(Vec::new())
                }
            }
        })
    }

    /// Shared body of `find_rows` / `find_rows_par`: index postings stay
    /// sequential; the packed-vector scan segments across chunk-aligned
    /// ranges when `opts` allows.
    fn find_rows_impl(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        let image = self.image()?;
        if from > to || to > self.parts.len {
            return Err(CoreError::RowOutOfBounds { rpos: to, len: self.parts.len });
        }
        let set = self.vid_set_from_image(&image, pred)?;
        let mut out = Vec::new();
        if set.is_empty() {
            return Ok(out);
        }
        match &image.index {
            Some(index) => {
                for vid in set.iter() {
                    for rpos in index.postings(vid)? {
                        if rpos >= from && rpos < to {
                            out.push(rpos);
                        }
                    }
                }
                out.sort_unstable();
            }
            None if opts.workers > 1 => {
                out = par_search_resident(&image.data, from, to, &set, opts.workers);
            }
            None => scan::search(&image.data, from, to, &set, &mut out),
        }
        Ok(out)
    }
}

impl Drop for ResidentColumn {
    /// Deregisters the resident image's budget when the column is dropped
    /// while loaded — retired main fragments must not strand resman bytes.
    fn drop(&mut self) {
        self.unload();
    }
}

impl ColumnRead for ResidentColumn {
    fn len(&self) -> u64 {
        self.parts.len
    }

    fn data_type(&self) -> DataType {
        self.parts.data_type
    }

    fn cardinality(&self) -> u64 {
        self.parts.cardinality
    }

    fn has_index(&self) -> bool {
        self.parts.index.current().is_some()
    }

    fn get_value(&self, rpos: u64) -> CoreResult<Value> {
        let image = self.image()?;
        if rpos >= self.parts.len {
            return Err(CoreError::RowOutOfBounds { rpos, len: self.parts.len });
        }
        let vid = image.data.get(rpos);
        Value::from_key(self.parts.data_type, image.dict.key(vid))
    }

    fn get_values(&self, rposs: &[u64]) -> CoreResult<Vec<Value>> {
        let image = self.image()?;
        let mut resolved: HashMap<u64, Value> = HashMap::new();
        let mut out = Vec::with_capacity(rposs.len());
        for &rpos in rposs {
            if rpos >= self.parts.len {
                return Err(CoreError::RowOutOfBounds { rpos, len: self.parts.len });
            }
            let vid = image.data.get(rpos);
            let v = match resolved.get(&vid) {
                Some(v) => v.clone(),
                None => {
                    let v = Value::from_key(self.parts.data_type, image.dict.key(vid))?;
                    resolved.insert(vid, v.clone());
                    v
                }
            };
            out.push(v);
        }
        Ok(out)
    }

    fn get_vids(&self, from: u64, to: u64, out: &mut Vec<u64>) -> CoreResult<()> {
        let image = self.image()?;
        if from > to || to > self.parts.len {
            return Err(CoreError::RowOutOfBounds { rpos: to, len: self.parts.len });
        }
        image.data.mget(from, to, out);
        Ok(())
    }

    fn vid_set_for(&self, pred: &ValuePredicate) -> CoreResult<VidSet> {
        let image = self.image()?;
        self.vid_set_from_image(&image, pred)
    }

    fn find_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<Vec<u64>> {
        self.find_rows_impl(pred, from, to, ScanOptions::sequential())
    }

    fn find_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        self.find_rows_impl(pred, from, to, opts)
    }

    fn key_by_vid(&self, vid: u64) -> CoreResult<Vec<u8>> {
        let image = self.image()?;
        if vid >= self.parts.cardinality {
            return Err(CoreError::VidOutOfBounds { vid, cardinality: self.parts.cardinality });
        }
        Ok(image.dict.key(vid).to_vec())
    }

    fn count_rows(&self, pred: &ValuePredicate, from: u64, to: u64) -> CoreResult<u64> {
        let image = self.image()?;
        if let Some(index) = &image.index {
            if from == 0 && to >= self.parts.len {
                let set = self.vid_set_from_image(&image, pred)?;
                let mut n = 0u64;
                for vid in set.iter() {
                    n += index.posting_count(vid)?;
                }
                return Ok(n);
            }
            return Ok(self.find_rows(pred, from, to)?.len() as u64);
        }
        // No index: COUNT never materializes positions — the scan kernel
        // popcounts per-chunk result bitmaps in place.
        if from > to || to > self.parts.len {
            return Err(CoreError::RowOutOfBounds { rpos: to, len: self.parts.len });
        }
        let set = self.vid_set_from_image(&image, pred)?;
        Ok(payg_encoding::kernels::count_matches(&image.data, from, to.min(self.parts.len), &set))
    }

    fn count_rows_par(
        &self,
        pred: &ValuePredicate,
        from: u64,
        to: u64,
        opts: ScanOptions,
    ) -> CoreResult<u64> {
        let image = self.image()?;
        if image.index.is_none() && from <= to && to <= self.parts.len {
            let set = self.vid_set_from_image(&image, pred)?;
            let _ = opts; // resident counts are CPU-trivial: stay sequential
            return Ok(payg_encoding::kernels::count_matches(&image.data, from, to, &set));
        }
        drop(image);
        self.count_rows(pred, from, to)
    }
}
