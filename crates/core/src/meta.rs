//! A small binary codec for persisted metadata (catalog checkpoints).
//!
//! Hand-rolled little-endian, length-prefixed encoding — the catalog is a
//! handful of kilobytes, written rarely; a serialization framework would
//! not earn its dependency (see DESIGN.md §6). Every read is validated so a
//! corrupt catalog surfaces as [`crate::CoreError`], never as a panic.

use crate::{CoreError, CoreResult};
use payg_storage::{ChainId, ChainRef, StorageError};

/// Appends primitive values to a byte buffer.
#[derive(Debug, Default)]
pub struct MetaWriter {
    buf: Vec<u8>,
}

impl MetaWriter {
    /// An empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a `u8`.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.buf.extend_from_slice(b);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// Writes a length-prefixed `u64` slice.
    pub fn u64s(&mut self, vs: &[u64]) {
        self.u64(vs.len() as u64);
        for &v in vs {
            self.u64(v);
        }
    }
}

/// Reads primitive values back, validating bounds.
pub struct MetaReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

fn corrupt(what: &str) -> CoreError {
    CoreError::Storage(StorageError::corrupt(format!("catalog: {what}")))
}

impl<'a> MetaReader<'a> {
    /// A reader over `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        MetaReader { buf, pos: 0 }
    }

    /// Remaining unread bytes.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> CoreResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(corrupt("truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> CoreResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> CoreResult<u64> {
        Ok(crate::util::le_u64(self.take(8)?))
    }

    /// Reads a `u64` length prefix validated to fit `usize`.
    pub fn read_len(&mut self) -> CoreResult<usize> {
        let v = self.u64()?;
        // A length can never exceed what remains in the buffer (elements
        // are at least one byte) — reject absurd values early.
        if v > self.remaining() as u64 * 8 + 64 {
            return Err(corrupt("implausible length"));
        }
        Ok(v as usize)
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> CoreResult<Vec<u8>> {
        let n = self.read_len()?;
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CoreResult<String> {
        String::from_utf8(self.bytes()?).map_err(|_| corrupt("invalid utf-8"))
    }

    /// Reads a length-prefixed `u64` vector.
    pub fn u64s(&mut self) -> CoreResult<Vec<u64>> {
        let n = self.read_len()?;
        let mut out = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            out.push(self.u64()?);
        }
        Ok(out)
    }

    /// Asserts the reader is fully consumed.
    pub fn expect_end(&self) -> CoreResult<()> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(corrupt("trailing bytes"))
        }
    }
}

/// Writes a [`ChainRef`].
pub fn write_chain(w: &mut MetaWriter, c: &ChainRef) {
    w.u64(c.chain.0);
    w.u64(c.pages);
    w.u64(c.page_size as u64);
}

/// Reads a [`ChainRef`].
pub fn read_chain(r: &mut MetaReader) -> CoreResult<ChainRef> {
    Ok(ChainRef {
        chain: ChainId(r.u64()?),
        pages: r.u64()?,
        page_size: r.u64()? as usize,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_primitives() {
        let mut w = MetaWriter::new();
        w.u8(7);
        w.u64(u64::MAX);
        w.bytes(b"hello");
        w.str("wörld");
        w.u64s(&[1, 2, 3]);
        let buf = w.finish();
        let mut r = MetaReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert_eq!(r.bytes().unwrap(), b"hello");
        assert_eq!(r.str().unwrap(), "wörld");
        assert_eq!(r.u64s().unwrap(), vec![1, 2, 3]);
        r.expect_end().unwrap();
    }

    #[test]
    fn truncation_and_garbage_are_errors() {
        let mut w = MetaWriter::new();
        w.bytes(b"abcdef");
        let buf = w.finish();
        assert!(MetaReader::new(&buf[..buf.len() - 1]).bytes().is_err());
        // Absurd length prefix.
        let mut w = MetaWriter::new();
        w.u64(u64::MAX / 2);
        let buf = w.finish();
        assert!(MetaReader::new(&buf).bytes().is_err());
        // Trailing bytes detected.
        let mut w = MetaWriter::new();
        w.u8(1);
        w.u8(2);
        let buf = w.finish();
        let mut r = MetaReader::new(&buf);
        r.u8().unwrap();
        assert!(r.expect_end().is_err());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = MetaWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let buf = w.finish();
        assert!(MetaReader::new(&buf).str().is_err());
    }
}
