//! Core errors.

use payg_encoding::EncodingError;
use payg_storage::StorageError;

/// Errors surfaced by column structures.
#[derive(Debug)]
pub enum CoreError {
    /// A storage-layer failure (I/O, missing chain, injected fault, …).
    Storage(StorageError),
    /// A persisted encoding failed validation.
    Encoding(EncodingError),
    /// A row position beyond the column length.
    RowOutOfBounds {
        /// The offending position.
        rpos: u64,
        /// The column's row count.
        len: u64,
    },
    /// A value identifier beyond the dictionary cardinality.
    VidOutOfBounds {
        /// The offending identifier.
        vid: u64,
        /// The dictionary cardinality.
        cardinality: u64,
    },
    /// A value of the wrong type for this column.
    TypeMismatch {
        /// The column's type.
        expected: crate::DataType,
        /// The offered value's type.
        got: crate::DataType,
    },
    /// A parallel scan stopped on its first failing page. The address names
    /// the page whose load or read failed; the remaining workers observed
    /// the shared cancellation flag and quit without finishing their
    /// partitions, so no partial result is returned.
    ScanAborted {
        /// The chain the failing page belongs to.
        chain: u64,
        /// Zero-based page number within the chain.
        page_no: u64,
        /// The failure that triggered the abort.
        source: Box<CoreError>,
    },
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Encoding(e) => write!(f, "encoding: {e}"),
            CoreError::RowOutOfBounds { rpos, len } => {
                write!(f, "row position {rpos} out of bounds (len {len})")
            }
            CoreError::VidOutOfBounds { vid, cardinality } => {
                write!(f, "value id {vid} out of bounds (cardinality {cardinality})")
            }
            CoreError::TypeMismatch { expected, got } => {
                write!(f, "type mismatch: column is {expected:?}, value is {got:?}")
            }
            CoreError::ScanAborted { chain, page_no, source } => {
                write!(f, "scan aborted at chain {chain} page {page_no}: {source}")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Storage(e) => Some(e),
            CoreError::Encoding(e) => Some(e),
            CoreError::ScanAborted { source, .. } => Some(source.as_ref()),
            _ => None,
        }
    }
}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<EncodingError> for CoreError {
    fn from(e: EncodingError) -> Self {
        CoreError::Encoding(e)
    }
}

/// Result alias for column operations.
pub type CoreResult<T> = Result<T, CoreError>;
