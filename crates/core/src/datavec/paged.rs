//! The page-loadable data vector (paper §3.1).
//!
//! Physical layout (§3.1.1): identifiers are uniformly n-bit packed into
//! chunks of exactly 64, and each page of the chain holds an integral number
//! of chunks. No per-page header is needed — the whole geometry (width,
//! length, chunks per page) lives in the in-memory metadata, so mapping a
//! row position to a logical page number is pure arithmetic. That mapping is
//! what lets the iterator load *only* the pages overlapping a requested row
//! range (§3.1.2).

use crate::datavec::guards::GuardCache;
use crate::{CoreError, CoreResult, PageConfig};
use payg_encoding::chunk::{self, bytes_per_chunk, CHUNK_LEN};
use payg_encoding::kernels::{self, KernelPredicate};
use payg_encoding::scan::{push_bitmap_positions, CompiledPredicate};
use payg_encoding::{BitPackedVec, BitWidth, VidSet};
use payg_obs::{names, Counter, Gauge, Histogram, Registry, ScanProfile};
use payg_storage::{BufferPool, ChainRef, PageKey, StorageError};
use std::sync::Arc;
use std::time::Instant;

/// Registry handles for scan activity, shared by every vector reporting
/// into the same registry (the `scan_*` names carry system-wide totals;
/// per-scan exactness comes from the iterator's [`ScanProfile`], which is
/// flushed into these on iterator drop).
pub(crate) struct ScanCounters {
    pub(crate) scans: Counter,
    pub(crate) chunks: Counter,
    pub(crate) guard_hits: Counter,
    pub(crate) pages_pinned: Counter,
    pub(crate) matches: Counter,
    pub(crate) pruned: Counter,
    pub(crate) dispatch_width: Gauge,
    pub(crate) scan_ns: Histogram,
}

impl ScanCounters {
    fn register(registry: &Registry) -> Self {
        ScanCounters {
            scans: registry.counter(names::SCAN_SCANS),
            chunks: registry.counter(names::SCAN_CHUNKS_SCANNED),
            guard_hits: registry.counter(names::SCAN_GUARD_CACHE_HITS),
            pages_pinned: registry.counter(names::SCAN_PAGES_PINNED),
            matches: registry.counter(names::SCAN_BITMAP_MATCHES),
            pruned: registry.counter(names::SCAN_PAGES_PRUNED),
            dispatch_width: registry.gauge(names::SCAN_DISPATCH_WIDTH),
            scan_ns: registry.histogram(names::SCAN_NS),
        }
    }
}

struct Meta {
    chain: ChainRef,
    width: BitWidth,
    len: u64,
    chunks_per_page: u64,
    /// Per-page (min, max) value-identifier summaries — the transient
    /// page-summary structure of §3.3 / footnote 2: scans skip pages whose
    /// summary does not overlap the predicate, without loading them.
    summaries: Vec<(u64, u64)>,
}

/// The page-loadable encoded data vector.
pub struct PagedDataVector {
    pool: BufferPool,
    meta: Arc<Meta>,
    pub(crate) scan: ScanCounters,
}

impl PagedDataVector {
    /// Persists a packed vector as a page chain.
    pub fn build(pool: &BufferPool, config: &PageConfig, vec: &BitPackedVec) -> CoreResult<Self> {
        let store = Arc::clone(pool.store());
        let width = vec.width();
        let mut scratch = crate::scratch::ChainScratch::new(pool);
        let chain = scratch.create_chain(config.datavec_page)?;
        let cpp = if width.bits() == 0 {
            0
        } else {
            let per_chunk = bytes_per_chunk(width);
            let cpp = config.datavec_page / per_chunk;
            if cpp == 0 {
                return Err(CoreError::Storage(StorageError::corrupt(format!(
                    "data-vector page of {} bytes cannot hold one chunk at {width} ({per_chunk} bytes)",
                    config.datavec_page
                ))));
            }
            cpp as u64
        };
        let mut pages = 0u64;
        let mut summaries: Vec<(u64, u64)> = Vec::new();
        if cpp > 0 {
            let mut page = Vec::with_capacity(config.datavec_page);
            let mut page_min = u64::MAX;
            let mut page_max = 0u64;
            let mut decoded = [0u64; CHUNK_LEN];
            for ci in 0..vec.chunk_count() {
                for &w in vec.chunk_words(ci) {
                    page.extend_from_slice(&w.to_le_bytes());
                }
                // Track the page's value range for the summary. The trailing
                // chunk's zero padding is excluded.
                chunk::decode_chunk(vec.chunk_words(ci), width, &mut decoded);
                let valid = (vec.len() - ci * CHUNK_LEN as u64).min(CHUNK_LEN as u64) as usize;
                for &v in &decoded[..valid] {
                    page_min = page_min.min(v);
                    page_max = page_max.max(v);
                }
                if (ci + 1) % cpp == 0 {
                    store.append_page(chain, &page)?;
                    pages += 1;
                    page.clear();
                    summaries.push((page_min, page_max));
                    (page_min, page_max) = (u64::MAX, 0);
                }
            }
            if !page.is_empty() {
                store.append_page(chain, &page)?;
                pages += 1;
                summaries.push((page_min, page_max));
            }
        }
        scratch.commit();
        Ok(PagedDataVector {
            scan: ScanCounters::register(pool.registry()),
            pool: pool.clone(),
            meta: Arc::new(Meta {
                chain: ChainRef { chain, pages, page_size: config.datavec_page },
                width,
                len: vec.len(),
                chunks_per_page: cpp,
                summaries,
            }),
        })
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.meta.len
    }

    /// True when the vector holds no rows.
    pub fn is_empty(&self) -> bool {
        self.meta.len == 0
    }

    /// The uniform bit width.
    pub fn width(&self) -> BitWidth {
        self.meta.width
    }

    /// Number of pages in the chain.
    pub fn pages(&self) -> u64 {
        self.meta.chain.pages
    }

    /// The store chain id holding this vector's pages — for attributing
    /// traced page events back to the structure that owns them.
    pub fn chain_id(&self) -> u64 {
        self.meta.chain.chain.0
    }

    /// The logical page number holding `rpos` (`None` at width 0, where no
    /// pages exist).
    pub fn page_of(&self, rpos: u64) -> Option<u64> {
        if self.meta.chunks_per_page == 0 {
            return None;
        }
        Some(chunk::chunk_of(rpos) / self.meta.chunks_per_page)
    }

    /// Rows covered by one full page (0 at width 0, where no pages exist).
    pub fn rows_per_page(&self) -> u64 {
        self.meta.chunks_per_page * CHUNK_LEN as u64
    }

    /// The store address of logical page `page_no`.
    pub fn page_key(&self, page_no: u64) -> PageKey {
        PageKey::new(self.meta.chain.chain, page_no)
    }

    /// The buffer pool this vector reads through.
    pub fn pool(&self) -> &BufferPool {
        &self.pool
    }

    /// Creates a stateful read iterator (§3.1.2). The iterator holds a small
    /// bounded set of pinned pages (a [`GuardCache`]) and repositions —
    /// pinning on first touch, releasing on way replacement — as accesses
    /// cross page boundaries, so warm access patterns that revisit recent
    /// pages pay no buffer-pool traffic.
    pub fn iter(&self) -> PagedDataVectorIterator<'_> {
        PagedDataVectorIterator {
            vec: self,
            guards: GuardCache::new(),
            scratch: Vec::new(),
            bitmaps: Vec::new(),
            profile: ScanProfile::default(),
        }
    }

    /// Like [`PagedDataVectorIterator::search`] over a fresh iterator, but
    /// returns the scan's [`ScanProfile`] alongside the matches: pool
    /// traffic (cold loads vs warm hits), guard-cache behaviour, kernel
    /// work, and wall-clock time. The duration is also recorded in the
    /// registry's `scan_ns` histogram.
    pub fn search_profiled(
        &self,
        from: u64,
        to: u64,
        set: &VidSet,
    ) -> CoreResult<(Vec<u64>, ScanProfile)> {
        let before = self.pool.metrics();
        let started = Instant::now();
        let mut out = Vec::new();
        let mut it = self.iter();
        it.search(from, to, set, &mut out)?;
        let mut p = it.profile();
        drop(it);
        p.elapsed_ns = started.elapsed().as_nanos() as u64;
        let after = self.pool.metrics();
        p.cold_loads = after.loads - before.loads;
        p.warm_hits = after.hits - before.hits;
        self.scan.scan_ns.record(p.elapsed_ns);
        Ok((out, p))
    }

    /// The (min, max) value summary of one page (§3.3's transient page
    /// summary).
    pub fn page_summary(&self, page_no: u64) -> (u64, u64) {
        self.meta.summaries[page_no as usize]
    }

    /// Alg. 1: full scan for every row position holding `vid`, loading one
    /// page at a time.
    pub fn find_by_vid(&self, vid: u64) -> CoreResult<Vec<u64>> {
        let mut out = Vec::new();
        self.iter().search(0, self.meta.len, &VidSet::Single(vid), &mut out)?;
        Ok(out)
    }

    /// Serializes the vector's metadata for a catalog checkpoint. The page
    /// chain itself already lives in the store; only the in-memory residue
    /// (geometry + summaries) needs persisting.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let mut w = crate::meta::MetaWriter::new();
        crate::meta::write_chain(&mut w, &self.meta.chain);
        w.u8(self.meta.width.bits() as u8);
        w.u64(self.meta.len);
        w.u64(self.meta.chunks_per_page);
        w.u64(self.meta.summaries.len() as u64);
        for &(lo, hi) in &self.meta.summaries {
            w.u64(lo);
            w.u64(hi);
        }
        w.finish()
    }

    /// Reopens a vector from checkpointed metadata over `pool`'s store.
    pub fn open(pool: &BufferPool, bytes: &[u8]) -> CoreResult<Self> {
        let mut r = crate::meta::MetaReader::new(bytes);
        let chain = crate::meta::read_chain(&mut r)?;
        let width = BitWidth::new(u32::from(r.u8()?))?;
        let len = r.u64()?;
        let chunks_per_page = r.u64()?;
        let n = r.read_len()?;
        let mut summaries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            summaries.push((r.u64()?, r.u64()?));
        }
        r.expect_end()?;
        if summaries.len() as u64 != chain.pages {
            return Err(CoreError::Storage(StorageError::corrupt(
                "data-vector summaries do not match page count",
            )));
        }
        Ok(PagedDataVector {
            scan: ScanCounters::register(pool.registry()),
            pool: pool.clone(),
            meta: Arc::new(Meta { chain, width, len, chunks_per_page, summaries }),
        })
    }

    /// Reads the whole chain directly from the store — no buffer pool, no
    /// paged resources — and reassembles the resident packed vector. This is
    /// the full-column-load path of default (fully resident) columns.
    pub fn decode_all_direct(&self) -> CoreResult<BitPackedVec> {
        let store = self.pool.store();
        let n = self.meta.width.bits() as usize;
        if n == 0 {
            return Ok(BitPackedVec::from_words(self.meta.width, self.meta.len, Vec::new())?);
        }
        let total_chunks = chunk::chunk_count(self.meta.len);
        let mut words = Vec::with_capacity(total_chunks as usize * n);
        let per_chunk = bytes_per_chunk(self.meta.width);
        let mut remaining = total_chunks;
        for p in 0..self.meta.chain.pages {
            let page = store.read_page(PageKey::new(self.meta.chain.chain, p))?;
            let on_page = remaining.min(self.meta.chunks_per_page) as usize;
            for ci in 0..on_page {
                let base = ci * per_chunk;
                payg_encoding::unaligned::extend_le_words(
                    &page[base..base + n * 8],
                    &mut words,
                );
            }
            remaining -= on_page as u64;
        }
        Ok(BitPackedVec::from_words(self.meta.width, self.meta.len, words)?)
    }

    fn check_range(&self, from: u64, to: u64) -> CoreResult<()> {
        if from > to || to > self.meta.len {
            return Err(CoreError::RowOutOfBounds { rpos: to, len: self.meta.len });
        }
        Ok(())
    }
}

/// Stateful iterator over a [`PagedDataVector`].
pub struct PagedDataVectorIterator<'a> {
    vec: &'a PagedDataVector,
    /// Iterator state: the pinned pages (paper: "it pins each new page after
    /// releasing the handle to the previous page during page reposition" —
    /// widened here to a small bounded guard cache so warm repositioning
    /// between nearby pages is pool-free).
    guards: GuardCache,
    /// Reusable word buffer for fused per-page kernel calls.
    scratch: Vec<u64>,
    /// Reusable per-page result-bitmap buffer (one word per chunk).
    bitmaps: Vec<u64>,
    /// Accumulated scan costs over this iterator's lifetime (guard-cache
    /// figures live in `guards` and are folded in by
    /// [`PagedDataVectorIterator::profile`]). Flushed to the registry's
    /// `scan_*` counters on drop.
    profile: ScanProfile,
}

impl PagedDataVectorIterator<'_> {
    /// Repositions onto `page_no`: a guard-cache hit is free, a miss pins
    /// through the pool (replacing — and thereby releasing — that way's
    /// previous occupant).
    fn reposition(&mut self, page_no: u64) -> CoreResult<&payg_storage::PageGuard> {
        let pool = &self.vec.pool;
        let chain = self.vec.meta.chain.chain;
        self.guards
            .get_or_pin(page_no, || pool.pin(PageKey::new(chain, page_no)))
            .map_err(CoreError::Storage)
    }

    /// Copies the words of chunk `chunk_no` into `words`, returning the word
    /// count (the bit width). Pins the owning page for the duration via the
    /// iterator state.
    fn chunk_words(&mut self, chunk_no: u64, words: &mut [u64; 64]) -> CoreResult<usize> {
        let n = self.vec.meta.width.bits() as usize;
        if n == 0 {
            return Ok(0);
        }
        let cpp = self.vec.meta.chunks_per_page;
        let page_no = chunk_no / cpp;
        let in_page = (chunk_no % cpp) as usize;
        let per_chunk = bytes_per_chunk(self.vec.meta.width);
        let guard = self.reposition(page_no)?;
        let base = in_page * per_chunk;
        let bytes = &guard[base..base + per_chunk];
        payg_encoding::unaligned::fill_le_words(bytes, &mut words[..n]);
        Ok(n)
    }

    /// Pins the page holding chunks `first_ci..=last_ci` once and copies
    /// their packed words into the reusable scratch buffer, ready for one
    /// fused kernel call. All chunks must live on the same page.
    fn load_chunk_run(&mut self, page_no: u64, first_ci: u64, last_ci: u64) -> CoreResult<()> {
        let per_chunk = bytes_per_chunk(self.vec.meta.width);
        let cpp = self.vec.meta.chunks_per_page;
        debug_assert!(first_ci / cpp == page_no && last_ci / cpp == page_no);
        let base = (first_ci % cpp) as usize * per_chunk;
        let len = (last_ci - first_ci + 1) as usize * per_chunk;
        // Field-split borrows: the guard borrows `self.guards`, the copy
        // target is the disjoint `self.scratch`.
        let pool = &self.vec.pool;
        let chain = self.vec.meta.chain.chain;
        let guard = self
            .guards
            .get_or_pin(page_no, || pool.pin(PageKey::new(chain, page_no)))
            .map_err(CoreError::Storage)?;
        let bytes = &guard[base..base + len];
        self.scratch.clear();
        payg_encoding::unaligned::extend_le_words(bytes, &mut self.scratch);
        Ok(())
    }

    /// Decodes the identifier at `rpos`.
    pub fn get(&mut self, rpos: u64) -> CoreResult<u64> {
        if rpos >= self.vec.meta.len {
            return Err(CoreError::RowOutOfBounds { rpos, len: self.vec.meta.len });
        }
        if self.vec.meta.width.bits() == 0 {
            return Ok(0);
        }
        let mut words = [0u64; 64];
        let n = self.chunk_words(chunk::chunk_of(rpos), &mut words)?;
        Ok(chunk::decode_slot(&words[..n], self.vec.meta.width, chunk::slot_of(rpos)))
    }

    /// Decodes identifiers for the row range `from..to` into `out`
    /// (cleared first), loading only the pages that overlap the range.
    pub fn mget(&mut self, from: u64, to: u64, out: &mut Vec<u64>) -> CoreResult<()> {
        self.vec.check_range(from, to)?;
        out.clear();
        if from == to {
            return Ok(());
        }
        out.reserve((to - from) as usize);
        if self.vec.meta.width.bits() == 0 {
            out.resize((to - from) as usize, 0);
            return Ok(());
        }
        let mut words = [0u64; 64];
        let mut decoded = [0u64; CHUNK_LEN];
        let first = chunk::chunk_of(from);
        let last = chunk::chunk_of(to - 1);
        for ci in first..=last {
            let n = self.chunk_words(ci, &mut words)?;
            chunk::decode_chunk(&words[..n], self.vec.meta.width, &mut decoded);
            let lo = if ci == first { chunk::slot_of(from) } else { 0 };
            let hi = if ci == last { chunk::slot_of(to - 1) + 1 } else { CHUNK_LEN };
            out.extend_from_slice(&decoded[lo..hi]);
        }
        Ok(())
    }

    /// `search(range-of-rows, set-of-vids)`: appends row positions in
    /// `from..to` whose identifier is in `set`. Pages outside the range are
    /// never loaded; surviving pages are pinned once and evaluated with a
    /// single bit-width-specialized kernel call each, producing per-chunk
    /// result bitmaps that are materialized into positions late.
    pub fn search(
        &mut self,
        from: u64,
        to: u64,
        set: &VidSet,
        out: &mut Vec<u64>,
    ) -> CoreResult<()> {
        self.vec.check_range(from, to)?;
        self.vec.scan.scans.inc();
        if from == to || set.is_empty() {
            return Ok(());
        }
        let pred = KernelPredicate::new(self.vec.meta.width, set);
        if pred.never_matches() {
            return Ok(());
        }
        if self.vec.meta.width.bits() == 0 || pred.always_matches() {
            if pred.always_matches() {
                out.extend(from..to);
            }
            return Ok(());
        }
        self.note_dispatch_width();
        let matched_from = out.len();
        self.for_each_chunk_run(from, to, set, |it, first_ci, last_ci| {
            it.bitmaps.clear();
            pred.scan_chunks(&it.scratch, &mut it.bitmaps);
            it.profile.chunks_scanned += it.bitmaps.len() as u64;
            for (k, &bm) in it.bitmaps.iter().enumerate() {
                if bm != 0 {
                    push_bitmap_positions(bm, (first_ci + k as u64) * CHUNK_LEN as u64, from, to, out);
                }
            }
            debug_assert_eq!(it.bitmaps.len() as u64, last_ci - first_ci + 1);
        })?;
        self.profile.bitmap_matches += (out.len() - matched_from) as u64;
        Ok(())
    }

    /// The seed's unfused scan path: one runtime-width
    /// [`CompiledPredicate`] evaluation per chunk, repositioning (through
    /// the guard cache) for every chunk. Kept as the reference
    /// implementation the fused kernels are benchmarked and
    /// equivalence-tested against.
    pub fn search_generic(
        &mut self,
        from: u64,
        to: u64,
        set: &VidSet,
        out: &mut Vec<u64>,
    ) -> CoreResult<()> {
        self.vec.check_range(from, to)?;
        self.vec.scan.scans.inc();
        if from == to || set.is_empty() {
            return Ok(());
        }
        if self.vec.meta.width.bits() == 0 {
            if set.contains(0) {
                out.extend(from..to);
            }
            return Ok(());
        }
        let pred = CompiledPredicate::new(self.vec.meta.width, set);
        let matched_from = out.len();
        let mut words = [0u64; 64];
        let cpp = self.vec.meta.chunks_per_page;
        let first = chunk::chunk_of(from);
        let last = chunk::chunk_of(to - 1);
        let mut ci = first;
        while ci <= last {
            // Page-summary pruning (§3.3): skip whole pages whose value
            // range cannot match, without loading them.
            let page_no = ci / cpp;
            let (pmin, pmax) = self.vec.meta.summaries[page_no as usize];
            if !set.overlaps(pmin, pmax) {
                ci = (page_no + 1) * cpp;
                self.profile.pages_pruned += 1;
                continue;
            }
            let n = self.chunk_words(ci, &mut words)?;
            let bm = pred.chunk_bitmap(&words[..n]);
            self.profile.chunks_scanned += 1;
            if bm != 0 {
                push_bitmap_positions(bm, ci * CHUNK_LEN as u64, from, to, out);
            }
            ci += 1;
        }
        self.profile.bitmap_matches += (out.len() - matched_from) as u64;
        Ok(())
    }

    /// Counts rows in `from..to` whose identifier is in `set` without
    /// materializing positions: each page's chunk run is evaluated with one
    /// fused kernel call and the result bitmaps are popcounted in place
    /// (boundary chunks masked to the row range).
    pub fn count(&mut self, from: u64, to: u64, set: &VidSet) -> CoreResult<u64> {
        self.vec.check_range(from, to)?;
        self.vec.scan.scans.inc();
        if from == to || set.is_empty() {
            return Ok(0);
        }
        let pred = KernelPredicate::new(self.vec.meta.width, set);
        if pred.never_matches() {
            return Ok(0);
        }
        if self.vec.meta.width.bits() == 0 || pred.always_matches() {
            return Ok(if pred.always_matches() { to - from } else { 0 });
        }
        self.note_dispatch_width();
        let mut total = 0u64;
        self.for_each_chunk_run(from, to, set, |it, first_ci, _last_ci| {
            it.bitmaps.clear();
            pred.scan_chunks(&it.scratch, &mut it.bitmaps);
            it.profile.chunks_scanned += it.bitmaps.len() as u64;
            for (k, &bm) in it.bitmaps.iter().enumerate() {
                let masked = bm & kernels::boundary_mask(first_ci + k as u64, from, to);
                total += u64::from(masked.count_ones());
            }
        })?;
        self.profile.bitmap_matches += total;
        Ok(total)
    }

    /// Applies `body` to every page-contiguous run of chunks overlapping
    /// `from..to` that survives page-summary pruning. Each run's packed
    /// words are loaded into `self.scratch` (one pin, one copy per page)
    /// before `body(self, first_ci, last_ci)` runs.
    fn for_each_chunk_run(
        &mut self,
        from: u64,
        to: u64,
        set: &VidSet,
        mut body: impl FnMut(&mut Self, u64, u64),
    ) -> CoreResult<()> {
        let cpp = self.vec.meta.chunks_per_page;
        let first = chunk::chunk_of(from);
        let last = chunk::chunk_of(to - 1);
        let mut ci = first;
        while ci <= last {
            // Page-summary pruning (§3.3): skip whole pages whose value
            // range cannot match, without loading them.
            let page_no = ci / cpp;
            let (pmin, pmax) = self.vec.meta.summaries[page_no as usize];
            let page_last = ((page_no + 1) * cpp - 1).min(last);
            if !set.overlaps(pmin, pmax) {
                ci = page_last + 1;
                self.profile.pages_pruned += 1;
                continue;
            }
            self.load_chunk_run(page_no, ci, page_last)?;
            body(self, ci, page_last);
            ci = page_last + 1;
        }
        Ok(())
    }

    /// Batch point-decode: materializes the identifier at every position in
    /// `rows` (any order, duplicates allowed) into `out`, in `rows` order.
    /// Positions are processed in sorted order internally, so each chunk is
    /// decoded once and each page is pinned at most once per visit — the
    /// batched-`mget` shape the paper's repositioning iterator serves.
    pub fn mget_at(&mut self, rows: &[u64], out: &mut Vec<u64>) -> CoreResult<()> {
        out.clear();
        if rows.is_empty() {
            return Ok(());
        }
        for &rpos in rows {
            if rpos >= self.vec.meta.len {
                return Err(CoreError::RowOutOfBounds { rpos, len: self.vec.meta.len });
            }
        }
        out.resize(rows.len(), 0);
        if self.vec.meta.width.bits() == 0 {
            return Ok(());
        }
        // Visit rows in ascending order regardless of input order.
        let mut order: Vec<u32> = (0..rows.len() as u32).collect();
        order.sort_unstable_by_key(|&i| rows[i as usize]);
        let mut words = [0u64; 64];
        let mut decoded = [0u64; CHUNK_LEN];
        let mut cached_chunk = u64::MAX;
        for &i in &order {
            let rpos = rows[i as usize];
            let ci = chunk::chunk_of(rpos);
            if ci != cached_chunk {
                let n = self.chunk_words(ci, &mut words)?;
                chunk::decode_chunk(&words[..n], self.vec.meta.width, &mut decoded);
                cached_chunk = ci;
            }
            out[i as usize] = decoded[chunk::slot_of(rpos)];
        }
        Ok(())
    }

    /// `search(list-of-rows, set-of-vids)`: appends the subset of `rows`
    /// (ascending) whose identifier is in `set`. Only pages containing
    /// listed rows are loaded.
    pub fn search_at_rows(
        &mut self,
        rows: &[u64],
        set: &VidSet,
        out: &mut Vec<u64>,
    ) -> CoreResult<()> {
        if rows.is_empty() || set.is_empty() {
            return Ok(());
        }
        if self.vec.meta.width.bits() == 0 {
            if set.contains(0) {
                out.extend_from_slice(rows);
            }
            return Ok(());
        }
        let mut words = [0u64; 64];
        let mut decoded = [0u64; CHUNK_LEN];
        let mut cached_chunk = u64::MAX;
        for &rpos in rows {
            if rpos >= self.vec.meta.len {
                return Err(CoreError::RowOutOfBounds { rpos, len: self.vec.meta.len });
            }
            let ci = chunk::chunk_of(rpos);
            if ci != cached_chunk {
                let n = self.chunk_words(ci, &mut words)?;
                chunk::decode_chunk(&words[..n], self.vec.meta.width, &mut decoded);
                cached_chunk = ci;
            }
            if set.contains(decoded[chunk::slot_of(rpos)]) {
                out.push(rpos);
            }
        }
        Ok(())
    }

    /// Credits one page pruned by an *outer* driver: the parallel scan
    /// workers consult the same page summaries before asking this iterator
    /// for a per-page range, so pages they skip never reach
    /// [`Self::search`]. Folding them in here keeps `pages_pruned` (and the
    /// registry's `scan_pages_pruned` counter, flushed on drop) identical
    /// across sequential and parallel scans of the same range.
    pub(crate) fn note_pruned(&mut self) {
        self.profile.pages_pruned += 1;
    }

    /// Records the bit width the specialized kernels dispatched on, in both
    /// this iterator's profile and the shared `scan_dispatch_width` gauge.
    fn note_dispatch_width(&mut self) {
        let bits = self.vec.meta.width.bits();
        self.profile.dispatch_width = self.profile.dispatch_width.max(bits);
        self.vec.scan.dispatch_width.set(u64::from(bits));
    }

    /// The scan costs accumulated by this iterator so far, with the
    /// guard-cache figures folded in: cache hits become `guard_cache_hits`,
    /// cache misses — each of which pinned a page through the pool — become
    /// `pages_pinned`.
    pub fn profile(&self) -> ScanProfile {
        let mut p = self.profile;
        let (hits, misses) = self.guards.stats();
        p.guard_cache_hits = hits;
        p.pages_pinned = misses;
        p
    }
}

impl Drop for PagedDataVectorIterator<'_> {
    /// Flushes the iterator's accumulated profile into the registry's
    /// `scan_*` counters so system-wide snapshots see per-scan costs without
    /// the callers having to thread profiles around.
    fn drop(&mut self) {
        let p = self.profile();
        let s = &self.vec.scan;
        for (counter, v) in [
            (&s.chunks, p.chunks_scanned),
            (&s.guard_hits, p.guard_cache_hits),
            (&s.pages_pinned, p.pages_pinned),
            (&s.matches, p.bitmap_matches),
            (&s.pruned, p.pages_pruned),
        ] {
            if v != 0 {
                counter.add(v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;

    fn pool() -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
    }

    fn sample(len: usize, card: u64, seed: u64) -> Vec<u64> {
        (0..len as u64)
            .map(|i| {
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    % card
            })
            .collect()
    }

    fn build(values: &[u64]) -> (BufferPool, PagedDataVector, BitPackedVec) {
        let pool = pool();
        let packed = BitPackedVec::from_values(values);
        let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
        (pool, paged, packed)
    }

    #[test]
    fn get_matches_resident_across_pages() {
        let values = sample(3000, 1000, 1);
        let (_pool, paged, packed) = build(&values);
        assert!(paged.pages() > 5, "tiny pages must force a multi-page chain");
        let mut it = paged.iter();
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(it.get(i as u64).unwrap(), v);
            assert_eq!(packed.get(i as u64), v);
        }
    }

    #[test]
    fn mget_matches_slice() {
        let values = sample(1000, 300, 2);
        let (_pool, paged, _) = build(&values);
        let mut it = paged.iter();
        let mut out = Vec::new();
        for (from, to) in [(0u64, 0u64), (0, 1000), (63, 65), (100, 500), (999, 1000)] {
            it.mget(from, to, &mut out).unwrap();
            assert_eq!(out, &values[from as usize..to as usize], "{from}..{to}");
        }
    }

    #[test]
    fn search_matches_naive_and_loads_only_needed_pages() {
        let values = sample(4000, 50, 3);
        let (pool, paged, _) = build(&values);
        let set = VidSet::range(10, 20);
        let mut out = Vec::new();
        // Restricted row range: only its pages load.
        let mut it = paged.iter();
        it.search(1000, 1200, &set, &mut out).unwrap();
        let expect: Vec<u64> =
            (1000..1200).filter(|&i| set.contains(values[i as usize])).collect();
        assert_eq!(out, expect);
        let loaded = pool.metrics().loads;
        assert!(
            loaded < paged.pages(),
            "range-restricted search loaded {loaded} of {} pages",
            paged.pages()
        );
        // Full scan agrees with the reference.
        out.clear();
        paged.iter().search(0, 4000, &set, &mut out).unwrap();
        let expect: Vec<u64> = (0..4000).filter(|&i| set.contains(values[i as usize])).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn search_at_rows_matches_naive() {
        let values = sample(2000, 128, 4);
        let (_pool, paged, _) = build(&values);
        let rows: Vec<u64> = (0..2000).step_by(13).collect();
        let set = VidSet::from_vids(vec![1, 5, 40, 90, 127]);
        let mut out = Vec::new();
        paged.iter().search_at_rows(&rows, &set, &mut out).unwrap();
        let expect: Vec<u64> = rows
            .iter()
            .copied()
            .filter(|&r| set.contains(values[r as usize]))
            .collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn find_by_vid_full_scan() {
        let values = sample(500, 10, 5);
        let (_pool, paged, _) = build(&values);
        for vid in 0..10 {
            let got = paged.find_by_vid(vid).unwrap();
            let expect: Vec<u64> =
                (0..500).filter(|&i| values[i as usize] == vid).collect();
            assert_eq!(got, expect, "vid {vid}");
        }
    }

    #[test]
    fn iterator_pins_are_bounded_by_the_guard_cache() {
        let values = sample(3000, 1000, 6);
        let (pool, paged, _) = build(&values);
        let resman = pool.resource_manager().clone();
        let mut it = paged.iter();
        let _ = it.get(0).unwrap();
        let _ = it.get(2999).unwrap();
        // Only the iterator's guard cache holds pins: everything else is
        // evictable, and the pin count never exceeds the cache ways.
        resman.set_paged_limits(Some(payg_resman::PoolLimits::new(0, usize::MAX)));
        resman.reactive_unload();
        let resident = pool.resident_pages();
        assert!(
            (1..=crate::datavec::GUARD_CACHE_WAYS).contains(&resident),
            "iterator pins {resident} pages, beyond its guard cache"
        );
        // The pinned pages are still readable, with no reloads.
        let loads = pool.metrics().loads;
        let _ = it.get(2999).unwrap();
        let _ = it.get(0).unwrap();
        assert_eq!(pool.metrics().loads, loads, "guard-cache hits reload nothing");
    }

    #[test]
    fn warm_search_pins_each_page_once() {
        let values = sample(4000, 500, 9);
        let (pool, paged, _) = build(&values);
        let set = VidSet::range(0, 499);
        let pins = |pool: &BufferPool| {
            let m = pool.metrics();
            m.hits + m.loads
        };
        let mut it = paged.iter();
        let mut out = Vec::new();
        it.search(0, 4000, &set, &mut out).unwrap();
        assert_eq!(out.len(), 4000);
        let pins_cold = pins(&pool);
        assert!(pins_cold <= paged.pages() + 1, "one pin per page on a full scan");
        // A warm re-scan with the same iterator re-pins only the pages that
        // fell out of the guard cache — never one pin per chunk.
        out.clear();
        it.search(0, 4000, &set, &mut out).unwrap();
        assert_eq!(out.len(), 4000);
        let pins_warm = pins(&pool) - pins_cold;
        assert!(
            pins_warm <= paged.pages() + 1,
            "warm re-scan issued {pins_warm} pins for {} pages",
            paged.pages()
        );
    }

    #[test]
    fn count_and_mget_at_match_naive() {
        let values = sample(3000, 300, 10);
        let (_pool, paged, _) = build(&values);
        let mut it = paged.iter();
        for set in [VidSet::Single(7), VidSet::range(20, 80), VidSet::from_vids(vec![0, 150, 299])] {
            for (from, to) in [(0u64, 3000u64), (63, 65), (100, 2500), (2999, 3000), (64, 64)] {
                let expect =
                    (from..to).filter(|&i| set.contains(values[i as usize])).count() as u64;
                assert_eq!(it.count(from, to, &set).unwrap(), expect, "{set:?} {from}..{to}");
            }
        }
        // mget_at returns values in input order, including duplicates and
        // unsorted positions.
        let rows = vec![2999u64, 0, 64, 63, 64, 1500, 2, 2];
        let mut out = Vec::new();
        it.mget_at(&rows, &mut out).unwrap();
        let expect: Vec<u64> = rows.iter().map(|&r| values[r as usize]).collect();
        assert_eq!(out, expect);
        assert!(it.mget_at(&[3000], &mut out).is_err());
    }

    #[test]
    fn search_generic_agrees_with_fused_search() {
        let values = sample(2500, 97, 11);
        let (_pool, paged, _) = build(&values);
        for set in [VidSet::Single(13), VidSet::range(10, 40), VidSet::from_vids(vec![0, 50, 96])] {
            for (from, to) in [(0u64, 2500u64), (63, 65), (1, 2499), (130, 130)] {
                let mut fused = Vec::new();
                paged.iter().search(from, to, &set, &mut fused).unwrap();
                let mut generic = Vec::new();
                paged.iter().search_generic(from, to, &set, &mut generic).unwrap();
                assert_eq!(fused, generic, "{set:?} {from}..{to}");
            }
        }
    }

    #[test]
    fn single_distinct_value_has_no_pages() {
        let values = vec![0u64; 1000];
        let (_pool, paged, _) = build(&values);
        assert_eq!(paged.pages(), 0);
        assert_eq!(paged.width().bits(), 0);
        let mut it = paged.iter();
        assert_eq!(it.get(999).unwrap(), 0);
        let mut out = Vec::new();
        it.search(10, 20, &VidSet::Single(0), &mut out).unwrap();
        assert_eq!(out, (10..20).collect::<Vec<u64>>());
        out.clear();
        it.search(10, 20, &VidSet::Single(1), &mut out).unwrap();
        assert!(out.is_empty());
        it.mget(5, 8, &mut out).unwrap();
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn out_of_bounds_is_an_error() {
        let values = sample(100, 10, 7);
        let (_pool, paged, _) = build(&values);
        let mut it = paged.iter();
        assert!(matches!(it.get(100), Err(CoreError::RowOutOfBounds { .. })));
        let mut out = Vec::new();
        assert!(it.mget(50, 101, &mut out).is_err());
        assert!(it.search(0, 101, &VidSet::Single(0), &mut out).is_err());
        assert!(it.search_at_rows(&[100], &VidSet::Single(0), &mut out).is_err());
    }

    #[test]
    fn page_of_arithmetic() {
        let values = sample(3000, 256, 8); // 8-bit → 512 bytes/chunk? no: 8 bit = 8 words = 64 B
        let (_pool, paged, _) = build(&values);
        // tiny page = 256 B; 8-bit chunks are 64 B → 4 chunks (256 rows) per page.
        assert_eq!(paged.page_of(0), Some(0));
        assert_eq!(paged.page_of(255), Some(0));
        assert_eq!(paged.page_of(256), Some(1));
        assert_eq!(paged.pages(), 3000u64.div_ceil(256));
    }
}

#[cfg(test)]
mod summary_tests {
    use super::*;
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;

    /// A clustered layout (values sorted by row) makes summaries selective.
    #[test]
    fn summaries_prune_page_loads_on_clustered_data() {
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let values: Vec<u64> = (0..4096u64).map(|i| i / 16).collect(); // sorted, card 256
        let packed = BitPackedVec::from_values(&values);
        let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
        assert!(paged.pages() > 4);
        // Summaries are tight on clustered data.
        let (min0, max0) = paged.page_summary(0);
        let (minl, maxl) = paged.page_summary(paged.pages() - 1);
        assert!(max0 < minl, "clustered pages have disjoint ranges");
        assert_eq!(min0, 0);
        assert_eq!(maxl, 255);
        // A point search touches only the page(s) whose summary matches.
        let mut out = Vec::new();
        paged.iter().search(0, 4096, &VidSet::Single(200), &mut out).unwrap();
        let expect: Vec<u64> = (0..4096).filter(|&i| values[i as usize] == 200).collect();
        assert_eq!(out, expect);
        let loads = pool.metrics().loads;
        assert!(
            loads <= 2,
            "summary pruning must load at most the matching page(s), loaded {loads} of {}",
            paged.pages()
        );
        // A disjoint predicate loads nothing at all.
        let before = pool.metrics().loads;
        out.clear();
        paged.iter().search(0, 4096, &VidSet::Single(9999), &mut out).unwrap();
        assert!(out.is_empty());
        assert_eq!(pool.metrics().loads, before, "no page loads for a non-overlapping predicate");
    }

    /// Pruning never changes results on unclustered data (false positives
    /// are pruned by the scan itself, as the paper notes).
    #[test]
    fn pruning_preserves_results_on_random_data() {
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let values: Vec<u64> = (0..2000u64)
            .map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15) % 97)
            .collect();
        let packed = BitPackedVec::from_values(&values);
        let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
        for set in [VidSet::Single(13), VidSet::range(90, 96), VidSet::from_vids(vec![0, 50, 96])] {
            let mut out = Vec::new();
            paged.iter().search(0, 2000, &set, &mut out).unwrap();
            let expect: Vec<u64> =
                (0..2000).filter(|&i| set.contains(values[i as usize])).collect();
            assert_eq!(out, expect, "{set:?}");
        }
    }
}
