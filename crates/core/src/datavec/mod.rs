//! Encoded data vectors (paper §3.1).
//!
//! The data vector holds one n-bit packed value identifier per row. The
//! fully-resident form is [`payg_encoding::BitPackedVec`] (re-exported here);
//! the page-loadable form is [`PagedDataVector`], which persists the same
//! 64-identifier chunks across a page chain and reads them through a
//! stateful, repositioning iterator.

mod guards;
mod paged;
mod parallel;

pub use guards::{GuardCache, GUARD_CACHE_WAYS};
pub use paged::{PagedDataVector, PagedDataVectorIterator};
pub use parallel::{par_search_resident, scan_partitions, ScanOptions, ScanPartition};
pub use payg_encoding::BitPackedVec;
