//! Parallel segmented scans over data vectors.
//!
//! A scan splits its row range into page-aligned [`ScanPartition`]s *after*
//! page-summary pruning (§3.3): pages whose (min, max) summary cannot match
//! the predicate are excluded before the split, so workers divide only the
//! pages that will actually be read. Each worker drives its own stateful,
//! repositioning iterator — holding a small bounded set of pinned pages via
//! its guard cache, in the spirit of §3.1.2's single-pin iterator — plus
//! asynchronous read-ahead for its upcoming surviving pages. When the pool's
//! cold-path I/O stage is active, read-ahead is an adaptive window of
//! prefetch submissions whose depth tracks completion latency versus
//! consumption rate ([`StagedReadAhead`]); otherwise each worker falls back
//! to one legacy read-ahead slot for its next surviving page.
//! Per-segment results are concatenated in partition order, which makes the
//! output bit-identical to the sequential scan.
//!
//! Faults abort cooperatively: workers poll a shared cancellation flag at
//! every page boundary, the first failing worker raises it, and the scan
//! surfaces one [`CoreError::ScanAborted`] naming the failing (chain, page)
//! while the remaining workers stop instead of finishing doomed partitions.

use crate::datavec::PagedDataVector;
use crate::{CoreError, CoreResult};
use payg_encoding::chunk::CHUNK_LEN;
use payg_encoding::{scan, BitPackedVec, VidSet};
use payg_obs::{QueryCtx, ScanProfile, SpanKind};
use payg_storage::Prefetcher;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// How a scan may parallelize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanOptions {
    /// Maximum worker threads (1 = sequential on the calling thread).
    pub workers: usize,
    /// Whether each worker runs an async read-ahead slot for its next page.
    /// Only affects paged scans.
    pub prefetch: bool,
}

impl ScanOptions {
    /// Sequential scan on the calling thread (the default).
    pub const fn sequential() -> Self {
        ScanOptions { workers: 1, prefetch: false }
    }

    /// Parallel scan with `workers` threads and read-ahead enabled.
    pub fn with_workers(workers: usize) -> Self {
        ScanOptions { workers: workers.max(1), prefetch: true }
    }
}

impl Default for ScanOptions {
    fn default() -> Self {
        Self::sequential()
    }
}

/// One worker's share of a segmented scan: a row range whose interior
/// boundaries fall on page (paged) or chunk (resident) boundaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScanPartition {
    /// First row (inclusive).
    pub from: u64,
    /// One past the last row.
    pub to: u64,
}

impl ScanPartition {
    /// Rows covered.
    pub fn rows(&self) -> u64 {
        self.to - self.from
    }
}

/// Splits the scan range `from..to` over `vec`'s page chain into at most
/// `workers` partitions. Pages whose summary does not overlap `set` are
/// pruned *first*; the surviving pages are divided into contiguous groups of
/// near-equal size, so workers are balanced by pages actually read, not by
/// raw row count. Returns no partitions when every page is pruned.
pub fn scan_partitions(
    vec: &PagedDataVector,
    from: u64,
    to: u64,
    set: Option<&VidSet>,
    workers: usize,
) -> Vec<ScanPartition> {
    if from >= to {
        return Vec::new();
    }
    let rpp = vec.rows_per_page();
    if rpp == 0 {
        // Width 0: no pages exist, the scan is pure arithmetic.
        return vec![ScanPartition { from, to }];
    }
    let first = from / rpp;
    let last = (to - 1) / rpp;
    let surviving: Vec<u64> = (first..=last)
        .filter(|&p| {
            set.is_none_or(|s| {
                let (lo, hi) = vec.page_summary(p);
                s.overlaps(lo, hi)
            })
        })
        .collect();
    if surviving.is_empty() {
        return Vec::new();
    }
    let w = workers.max(1).min(surviving.len());
    let base = surviving.len() / w;
    let rem = surviving.len() % w;
    let mut parts = Vec::with_capacity(w);
    let mut idx = 0;
    for i in 0..w {
        let take = base + usize::from(i < rem);
        let group = &surviving[idx..idx + take];
        idx += take;
        parts.push(ScanPartition {
            from: from.max(group[0] * rpp),
            to: to.min((group[group.len() - 1] + 1) * rpp),
        });
    }
    parts
}

/// Wraps a worker's failure in [`CoreError::ScanAborted`], naming the page
/// the scan died on. Storage errors that carry their own page address
/// (checksum mismatches, quarantine hits, failed single-flight loads) name
/// it directly; anything else is attributed to the page the worker was
/// scanning when the error surfaced.
fn scan_abort(vec: &PagedDataVector, page_no: u64, source: CoreError) -> CoreError {
    let key = match &source {
        CoreError::Storage(e) => e.page_key().unwrap_or_else(|| vec.page_key(page_no)),
        _ => vec.page_key(page_no),
    };
    CoreError::ScanAborted { chain: key.chain.0, page_no: key.page_no, source: Box::new(source) }
}

/// Deadline-aware read-ahead window for a scan worker when the pool's
/// cold-path I/O stage is active. Instead of one blocking read-ahead slot,
/// the worker keeps up to `depth` surviving pages submitted ahead of its
/// cursor via [`payg_storage::BufferPool::prefetch_submit`] — adjacent
/// submissions coalesce into ranged reads inside the stage. The depth
/// adapts to completion latency versus consumption rate: arriving at a page
/// that is *still not resident* means the stage is losing the race, so the
/// window doubles (up to [`Self::MAX_DEPTH`]); a long streak of warm
/// arrivals means the window is outrunning the scan, so it shrinks back.
struct StagedReadAhead {
    /// Surviving pages to keep submitted ahead of the scan cursor.
    depth: u64,
    /// First page number not yet considered for submission.
    cursor: u64,
    /// Consecutive pages found resident on arrival.
    warm_streak: u32,
}

impl StagedReadAhead {
    const INITIAL_DEPTH: u64 = 2;
    const MAX_DEPTH: u64 = 32;
    /// Warm arrivals in a row before the window halves.
    const SHRINK_AFTER: u32 = 8;

    fn new() -> Self {
        StagedReadAhead { depth: Self::INITIAL_DEPTH, cursor: 0, warm_streak: 0 }
    }

    /// Feed the adaptation signal: was the page the worker just arrived at
    /// already resident?
    fn observe(&mut self, resident: bool) {
        if resident {
            self.warm_streak += 1;
            if self.warm_streak >= Self::SHRINK_AFTER && self.depth > Self::INITIAL_DEPTH {
                self.depth = (self.depth / 2).max(Self::INITIAL_DEPTH);
                self.warm_streak = 0;
            }
        } else {
            self.warm_streak = 0;
            self.depth = (self.depth * 2).min(Self::MAX_DEPTH);
        }
    }

    /// Submit prefetches so that up to `depth` surviving pages beyond
    /// `page` (bounded by `last`) are in flight. Pages already considered
    /// (below the cursor) are never re-submitted; a submission the stage
    /// sheds under queue pressure is simply dropped — the demand pin will
    /// load it.
    fn top_up(
        &mut self,
        vec: &PagedDataVector,
        page: u64,
        last: u64,
        survives: &impl Fn(u64) -> bool,
    ) {
        let mut ahead = 0u64;
        for p in (page + 1)..=last {
            if ahead == self.depth {
                break;
            }
            if !survives(p) {
                continue;
            }
            ahead += 1;
            if p < self.cursor {
                continue;
            }
            self.cursor = p + 1;
            let key = vec.page_key(p);
            if !vec.pool().is_resident(key) {
                vec.pool().prefetch_submit(key);
            }
        }
    }
}

/// Scans one partition page by page with a private repositioning iterator
/// (one pin) and, when enabled, a private read-ahead slot for the next
/// surviving page. Before each page the worker polls the scan-wide `cancel`
/// flag — first error wins: the worker that hits a bad page raises the flag
/// and returns [`CoreError::ScanAborted`] naming it, and every other worker
/// quits at its next page boundary instead of finishing doomed work.
/// Returns the matches alongside the worker's own [`ScanProfile`].
fn scan_partition_worker(
    vec: &PagedDataVector,
    part: ScanPartition,
    set: &VidSet,
    prefetch: bool,
    cancel: &AtomicBool,
) -> CoreResult<(Vec<u64>, ScanProfile)> {
    let mut out = Vec::new();
    let rpp = vec.rows_per_page();
    let mut it = vec.iter();
    if rpp == 0 {
        // Width 0: no pages exist, the scan is pure arithmetic.
        it.search(part.from, part.to, set, &mut out)?;
        return Ok((out, it.profile()));
    }
    let survives = |p: u64| {
        let (lo, hi) = vec.page_summary(p);
        set.overlaps(lo, hi)
    };
    // Read-ahead strategy. With the cold-path I/O stage active the worker
    // keeps an *adaptive window* of prefetch submissions ahead of its
    // cursor (see `StagedReadAhead`); otherwise it falls back to the legacy
    // single read-ahead slot, which spawns lazily so a warm scan (every
    // page resident) never pays for the thread.
    let staged = prefetch && vec.pool().io_stage_active();
    let mut window = StagedReadAhead::new();
    let mut slot: Option<Prefetcher> = None;
    let first = part.from / rpp;
    let last = (part.to - 1) / rpp;
    for page in first..=last {
        if cancel.load(Ordering::Relaxed) {
            break;
        }
        if !survives(page) {
            // Credit the pruned page to the iterator so profiles (and the
            // registry's scan counters) match the sequential scan's.
            it.note_pruned();
            continue;
        }
        // Read ahead: start loading upcoming surviving pages before scanning
        // this one, so the store latency overlaps the predicate work. The
        // pool's single-flight load states make our later pin join that load
        // instead of duplicating it.
        if staged {
            window.observe(vec.pool().is_resident(vec.page_key(page)));
            window.top_up(vec, page, last, &survives);
        } else if prefetch {
            if let Some(next) = (page + 1..=last).find(|&p| survives(p)) {
                let key = vec.page_key(next);
                if !vec.pool().is_resident(key) {
                    slot.get_or_insert_with(|| vec.pool().prefetcher()).request(key);
                }
            }
        }
        let lo = part.from.max(page * rpp);
        let hi = part.to.min((page + 1) * rpp);
        if let Err(e) = it.search(lo, hi, set, &mut out) {
            cancel.store(true, Ordering::Relaxed);
            return Err(scan_abort(vec, page, e));
        }
    }
    Ok((out, it.profile()))
}

/// [`scan_partition_worker`]'s COUNT twin: popcounts one partition page by
/// page, polling `cancel` at every page boundary. Page-summary pruning
/// happens inside [`crate::datavec::PagedDataVectorIterator::count`], which
/// sees each page's full chunk run.
fn count_partition_worker(
    vec: &PagedDataVector,
    part: ScanPartition,
    set: &VidSet,
    cancel: &AtomicBool,
) -> CoreResult<u64> {
    let rpp = vec.rows_per_page();
    let mut it = vec.iter();
    if rpp == 0 {
        return it.count(part.from, part.to, set);
    }
    let mut total = 0u64;
    let first = part.from / rpp;
    let last = (part.to - 1) / rpp;
    for page in first..=last {
        if cancel.load(Ordering::Relaxed) {
            break;
        }
        let lo = part.from.max(page * rpp);
        let hi = part.to.min((page + 1) * rpp);
        match it.count(lo, hi, set) {
            Ok(n) => total += n,
            Err(e) => {
                cancel.store(true, Ordering::Relaxed);
                return Err(scan_abort(vec, page, e));
            }
        }
    }
    Ok(total)
}

impl PagedDataVector {
    /// Parallel `search(range-of-rows, set-of-vids)`: identical results to
    /// [`crate::datavec::PagedDataVectorIterator::search`] over the same
    /// range, computed by up to `opts.workers` segment workers. Each worker
    /// holds one pinned page (plus one read-ahead slot when enabled); pruned
    /// pages are skipped before partitioning. A failing page aborts the
    /// whole scan with [`CoreError::ScanAborted`] — see the module docs.
    pub fn par_search(
        &self,
        from: u64,
        to: u64,
        set: &VidSet,
        opts: ScanOptions,
    ) -> CoreResult<Vec<u64>> {
        self.par_search_profiled(from, to, set, opts).map(|(out, _)| out)
    }

    /// [`PagedDataVector::par_search`] plus the merged [`ScanProfile`] of
    /// every segment worker: per-worker kernel figures are summed
    /// (`dispatch_width` and `elapsed_ns` take the maximum), the cold/warm
    /// pool split is measured as this pool's metrics delta around the scan,
    /// and the wall-clock duration is recorded in the registry's `scan_ns`
    /// histogram.
    pub fn par_search_profiled(
        &self,
        from: u64,
        to: u64,
        set: &VidSet,
        opts: ScanOptions,
    ) -> CoreResult<(Vec<u64>, ScanProfile)> {
        if from > to || to > self.len() {
            return Err(CoreError::RowOutOfBounds { rpos: to, len: self.len() });
        }
        let mut out = Vec::new();
        let mut profile = ScanProfile::default();
        if from == to || set.is_empty() {
            return Ok((out, profile));
        }
        let before = self.pool().metrics();
        // Flight recorder: each worker's partition runs under its own
        // scan-partition span, parented to whatever query span the caller
        // has open. The context must be captured here — thread locals do
        // not follow `std::thread::scope`.
        let tracer = self.pool().registry().tracer();
        let ctx = QueryCtx::current(tracer);
        let started = Instant::now();
        if self.width().bits() == 0 {
            let mut it = self.iter();
            it.search(from, to, set, &mut out)?;
            profile = it.profile();
        } else {
            // Cold scans are I/O-bound: more workers than cores still helps,
            // because they overlap page-load latency. A fully-resident range
            // is CPU-bound, so extra workers beyond the actual cores only add
            // scheduling overhead — cap them.
            let mut workers = opts.workers;
            if workers > 1 {
                let rpp = self.rows_per_page();
                let all_resident = ((from / rpp)..=((to - 1) / rpp))
                    .all(|p| self.pool().is_resident(self.page_key(p)));
                if all_resident {
                    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
                    workers = workers.min(cores);
                }
            }
            let parts = scan_partitions(self, from, to, Some(set), workers);
            let cancel = AtomicBool::new(false);
            let cancel = &cancel;
            match parts.as_slice() {
                [] => {}
                [only] => {
                    let _span = ctx.enter(tracer, SpanKind::ScanPartition, only.from);
                    let (segment, p) =
                        scan_partition_worker(self, *only, set, opts.prefetch, cancel)?;
                    out = segment;
                    profile = p;
                }
                many => std::thread::scope(|s| -> CoreResult<()> {
                    let handles: Vec<_> = many
                        .iter()
                        .map(|&part| {
                            s.spawn(move || {
                                let _span =
                                    ctx.enter(tracer, SpanKind::ScanPartition, part.from);
                                scan_partition_worker(self, part, set, opts.prefetch, cancel)
                            })
                        })
                        .collect();
                    // Joining in partition order keeps the concatenation
                    // ascending — bit-identical to the sequential scan.
                    for h in handles {
                        let (segment, p) =
                            h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))?;
                        out.extend(segment);
                        profile.merge(&p);
                    }
                    Ok(())
                })?,
            }
        }
        profile.elapsed_ns = started.elapsed().as_nanos() as u64;
        let after = self.pool().metrics();
        profile.cold_loads = after.loads - before.loads;
        profile.warm_hits = after.hits - before.hits;
        profile.io_batches = after.io_physical_reads - before.io_physical_reads;
        profile.io_coalesced_pages = after.io_coalesced - before.io_coalesced;
        profile.io_queue_sheds = after.io_shed - before.io_shed;
        self.scan.scan_ns.record(profile.elapsed_ns);
        Ok((out, profile))
    }

    /// Parallel COUNT over `from..to`: identical to
    /// `par_search(..).len()` but positions are never materialized — each
    /// worker popcounts its partition's result bitmaps in place
    /// ([`crate::datavec::PagedDataVectorIterator::count`]) and the
    /// per-partition counts are summed.
    pub fn par_count(
        &self,
        from: u64,
        to: u64,
        set: &VidSet,
        opts: ScanOptions,
    ) -> CoreResult<u64> {
        if from > to || to > self.len() {
            return Err(CoreError::RowOutOfBounds { rpos: to, len: self.len() });
        }
        if from == to || set.is_empty() {
            return Ok(0);
        }
        if self.width().bits() == 0 {
            return self.iter().count(from, to, set);
        }
        let workers = opts.workers.max(1);
        let parts = scan_partitions(self, from, to, Some(set), workers);
        let cancel = AtomicBool::new(false);
        let cancel = &cancel;
        let tracer = self.pool().registry().tracer();
        let ctx = QueryCtx::current(tracer);
        match parts.as_slice() {
            [] => Ok(0),
            [only] => {
                let _span = ctx.enter(tracer, SpanKind::ScanPartition, only.from);
                count_partition_worker(self, *only, set, cancel)
            }
            many => std::thread::scope(|s| {
                let handles: Vec<_> = many
                    .iter()
                    .map(|&part| {
                        s.spawn(move || {
                            let _span = ctx.enter(tracer, SpanKind::ScanPartition, part.from);
                            count_partition_worker(self, part, set, cancel)
                        })
                    })
                    .collect();
                let mut total = 0u64;
                for h in handles {
                    total += h.join().unwrap_or_else(|e| std::panic::resume_unwind(e))?;
                }
                Ok(total)
            }),
        }
    }
}

/// Parallel scan over a fully-resident packed vector: identical results to
/// [`scan::search`] over `from..to`, computed by up to `workers` threads on
/// chunk-aligned segments.
pub fn par_search_resident(
    vec: &BitPackedVec,
    from: u64,
    to: u64,
    set: &VidSet,
    workers: usize,
) -> Vec<u64> {
    let mut out = Vec::new();
    if from >= to || set.is_empty() {
        return out;
    }
    let first = from / CHUNK_LEN as u64;
    let last = (to - 1) / CHUNK_LEN as u64;
    let chunks = last - first + 1;
    // Always CPU-bound (no I/O to overlap): workers beyond the actual cores
    // only add scheduling overhead.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let w = workers.max(1).min(cores).min(chunks as usize).min(u32::MAX as usize) as u64;
    if w <= 1 {
        scan::search(vec, from, to, set, &mut out);
        return out;
    }
    let base = chunks / w;
    let rem = chunks % w;
    let mut parts = Vec::with_capacity(w as usize);
    let mut chunk = first;
    for i in 0..w {
        let take = base + u64::from(i < rem);
        let begin = chunk;
        chunk += take;
        parts.push(ScanPartition {
            from: from.max(begin * CHUNK_LEN as u64),
            to: to.min(chunk * CHUNK_LEN as u64),
        });
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|part| {
                s.spawn(move || {
                    let mut local = Vec::new();
                    scan::search(vec, part.from, part.to, set, &mut local);
                    local
                })
            })
            .collect();
        for h in handles {
            out.extend(h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)));
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PageConfig;
    use payg_resman::ResourceManager;
    use payg_storage::{
        BufferPool, FaultPlan, FaultyStore, MemStore, PageKey, PageStore, PoolConfig, RetryPolicy,
    };
    use std::sync::Arc;

    fn sample(len: usize, card: u64, seed: u64) -> Vec<u64> {
        (0..len as u64)
            .map(|i| {
                seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(i)
                    .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                    % card
            })
            .collect()
    }

    fn build(values: &[u64]) -> (BufferPool, PagedDataVector, BitPackedVec) {
        let pool = BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new());
        let packed = BitPackedVec::from_values(values);
        let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
        (pool, paged, packed)
    }

    #[test]
    fn partitions_are_page_aligned_and_cover_the_range() {
        let values = sample(4000, 500, 11);
        let (_pool, paged, _) = build(&values);
        let rpp = paged.rows_per_page();
        assert!(rpp > 0);
        for workers in [1, 2, 3, 4, 7] {
            let parts = scan_partitions(&paged, 100, 3900, None, workers);
            assert!(parts.len() <= workers);
            assert_eq!(parts.first().unwrap().from, 100);
            assert_eq!(parts.last().unwrap().to, 3900);
            for pair in parts.windows(2) {
                assert_eq!(pair[0].to, pair[1].from, "contiguous without pruning");
                assert_eq!(pair[0].to % rpp, 0, "interior boundaries page-aligned");
            }
        }
    }

    #[test]
    fn pruned_pages_are_excluded_before_partitioning() {
        // Clustered values give disjoint page summaries.
        let values: Vec<u64> = (0..4096u64).map(|i| i / 16).collect();
        let (_pool, paged, _) = build(&values);
        let set = VidSet::range(0, 10); // only the first pages survive
        let parts = scan_partitions(&paged, 0, 4096, Some(&set), 4);
        let covered: u64 = parts.iter().map(|p| p.rows()).sum();
        assert!(covered < 4096, "pruning shrank the partitioned rows");
        // A fully disjoint predicate yields no partitions at all.
        assert!(scan_partitions(&paged, 0, 4096, Some(&VidSet::Single(9999)), 4).is_empty());
    }

    #[test]
    fn par_search_matches_sequential_paged() {
        let values = sample(6000, 97, 12);
        let (_pool, paged, _) = build(&values);
        for set in [VidSet::Single(13), VidSet::range(20, 60), VidSet::from_vids(vec![0, 50, 96])] {
            for (from, to) in [(0u64, 6000u64), (123, 5991), (64, 128), (0, 1)] {
                let mut seq = Vec::new();
                paged.iter().search(from, to, &set, &mut seq).unwrap();
                for workers in [1, 2, 4, 7] {
                    for prefetch in [false, true] {
                        let par = paged
                            .par_search(from, to, &set, ScanOptions { workers, prefetch })
                            .unwrap();
                        assert_eq!(par, seq, "workers={workers} prefetch={prefetch} {from}..{to}");
                    }
                }
            }
        }
    }

    #[test]
    fn par_search_matches_sequential_resident() {
        let values = sample(5000, 250, 13);
        let packed = BitPackedVec::from_values(&values);
        let set = VidSet::range(10, 100);
        for (from, to) in [(0u64, 5000u64), (77, 4800), (0, 63)] {
            let mut seq = Vec::new();
            scan::search(&packed, from, to, &set, &mut seq);
            for workers in [1, 2, 4, 9] {
                assert_eq!(par_search_resident(&packed, from, to, &set, workers), seq);
            }
        }
    }

    #[test]
    fn par_search_zero_width_and_bounds() {
        let values = vec![0u64; 1000];
        let (_pool, paged, _) = build(&values);
        let out = paged.par_search(10, 20, &VidSet::Single(0), ScanOptions::with_workers(4)).unwrap();
        assert_eq!(out, (10..20).collect::<Vec<u64>>());
        assert!(paged.par_search(0, 1001, &VidSet::Single(0), ScanOptions::with_workers(4)).is_err());
    }

    #[test]
    fn par_count_matches_par_search_len() {
        let values = sample(6000, 97, 15);
        let (_pool, paged, _) = build(&values);
        for set in [VidSet::Single(13), VidSet::range(20, 60), VidSet::from_vids(vec![0, 50, 96])] {
            for (from, to) in [(0u64, 6000u64), (123, 5991), (64, 128), (0, 1), (50, 50)] {
                let expect =
                    (from..to).filter(|&i| set.contains(values[i as usize])).count() as u64;
                for workers in [1, 4] {
                    let opts = ScanOptions { workers, prefetch: workers > 1 };
                    assert_eq!(
                        paged.par_count(from, to, &set, opts).unwrap(),
                        expect,
                        "workers={workers} {set:?} {from}..{to}"
                    );
                }
            }
        }
    }

    /// A paged vector over a [`FaultyStore`] with retries disabled, so one
    /// injected fault surfaces on the first pin.
    fn build_faulty(values: &[u64]) -> (Arc<FaultyStore<MemStore>>, BufferPool, PagedDataVector) {
        let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn PageStore>,
            ResourceManager::new(),
            PoolConfig { retry: RetryPolicy::NONE, ..PoolConfig::default() },
        );
        let packed = BitPackedVec::from_values(values);
        let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
        (store, pool, paged)
    }

    #[test]
    fn bad_page_aborts_the_parallel_scan_naming_its_address() {
        let values = sample(4000, 500, 21);
        let (store, pool, paged) = build_faulty(&values);
        assert!(paged.pages() > 4, "enough pages for a real fan-out");
        let bad = PageKey::new(paged.page_key(0).chain, 2);
        store.set_plan(FaultPlan::CorruptPages(vec![bad]));
        let set = VidSet::range(0, 499); // nothing prunes: every worker reads
        for prefetch in [false, true] {
            pool.clear();
            pool.clear_quarantine();
            let err = paged
                .par_search(0, 4000, &set, ScanOptions { workers: 4, prefetch })
                .map(|_| ())
                .unwrap_err();
            match err {
                CoreError::ScanAborted { chain, page_no, source } => {
                    assert_eq!((chain, page_no), (bad.chain.0, bad.page_no), "prefetch={prefetch}");
                    assert!(
                        matches!(*source, CoreError::Storage(_)),
                        "abort wraps the storage failure: {source}"
                    );
                }
                other => panic!("expected ScanAborted, got: {other}"),
            }
        }
        let err = paged.par_count(0, 4000, &set, ScanOptions::with_workers(4)).unwrap_err();
        assert!(
            matches!(err, CoreError::ScanAborted { page_no: 2, .. }),
            "count aborts the same way: {err}"
        );
        pool.assert_no_live_pins("after aborted parallel scans");
        // Recovery: with the fault cleared and the quarantine drained, the
        // same scan completes and matches the sequential result.
        store.set_plan(FaultPlan::None);
        pool.clear_quarantine();
        let mut seq = Vec::new();
        paged.iter().search(0, 4000, &set, &mut seq).unwrap();
        let par = paged.par_search(0, 4000, &set, ScanOptions::with_workers(4)).unwrap();
        assert_eq!(par, seq);
    }

    #[test]
    fn worker_side_pruning_is_credited_to_the_profile() {
        // Clustered values: only the first and last pages survive a
        // {0, max} predicate, so every interior page is pruned — by the
        // iterator in a sequential scan, by the worker loop in a parallel
        // one. Both must report the same pages_pruned.
        let values: Vec<u64> = (0..4096u64).map(|i| i / 16).collect();
        let (_pool, paged, _) = build(&values);
        let set = VidSet::from_vids(vec![0, 255]);
        let mut seq = Vec::new();
        let mut it = paged.iter();
        it.search(0, 4096, &set, &mut seq).unwrap();
        let seq_pruned = it.profile().pages_pruned;
        drop(it);
        assert!(seq_pruned > 0, "interior pages were pruned");
        for prefetch in [false, true] {
            let (out, profile) = paged
                .par_search_profiled(0, 4096, &set, ScanOptions { workers: 1, prefetch })
                .unwrap();
            assert_eq!(out, seq, "prefetch={prefetch}");
            assert_eq!(profile.pages_pruned, seq_pruned, "prefetch={prefetch}");
        }
    }

    #[test]
    fn parallel_workers_load_disjoint_pages_once() {
        let values = sample(4000, 500, 14);
        let (pool, paged, _) = build(&values);
        let set = VidSet::range(0, 499); // nothing prunes: every page loads
        let out = paged.par_search(0, 4000, &set, ScanOptions::with_workers(4)).unwrap();
        assert_eq!(out.len(), 4000);
        let m = pool.metrics();
        assert_eq!(m.loads, paged.pages(), "each page loaded exactly once across workers");
    }
}
