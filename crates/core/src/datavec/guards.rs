//! Pin-amortizing guard cache for warm scans.
//!
//! The seed iterator held exactly one pinned page and re-entered the buffer
//! pool on every page change. That is the right shape cold — it bounds the
//! iterator's memory charge to one page — but warm it makes `pin()` (a shard
//! lock + hash probe + resman accounting round-trip) the dominant cost of
//! access patterns that hop between a few pages (index-driven probes, sorted
//! `mget` batches, partition scans that revisit a boundary page).
//!
//! [`GuardCache`] keeps a small, fixed number of live [`PageGuard`]s,
//! direct-mapped by logical page number. A hit returns the held guard with
//! zero pool traffic; a miss pins through the pool and replaces the slot's
//! previous occupant (releasing that pin). The pin count is therefore bounded
//! by [`GUARD_CACHE_WAYS`] — still O(1) per iterator, just a slightly wider
//! window than the seed's single slot.

use payg_storage::PageGuard;

/// Number of direct-mapped slots a [`GuardCache`] holds. Sized for scan
/// shapes: a sequential scan needs 1, a scan plus read-ahead 2, and a
/// handful of ways absorbs index-probe hopping without letting one iterator
/// pin a meaningful fraction of a small pool.
pub const GUARD_CACHE_WAYS: usize = 8;

/// A small direct-mapped cache of live page pins keyed by logical page
/// number.
#[derive(Default)]
pub struct GuardCache {
    slots: [Option<(u64, PageGuard)>; GUARD_CACHE_WAYS],
    /// Touches served by an already-held guard (no pool traffic). Plain
    /// counters: the cache is single-owner, observability flushes them to
    /// the shared registry when the owning iterator is dropped.
    hits: u64,
    /// Touches that pinned through the pool.
    misses: u64,
}

impl GuardCache {
    /// An empty cache holding no pins.
    pub fn new() -> Self {
        Self::default()
    }

    /// The guard for `page_no`, pinning via `pin` only on a cache miss. The
    /// slot's previous guard (a different page mapping to the same way) is
    /// released on replacement. On pin failure the slot keeps its previous
    /// occupant and the error is returned unchanged.
    pub fn get_or_pin<E>(
        &mut self,
        page_no: u64,
        pin: impl FnOnce() -> Result<PageGuard, E>,
    ) -> Result<&PageGuard, E> {
        let way = (page_no % GUARD_CACHE_WAYS as u64) as usize;
        let hit = matches!(&self.slots[way], Some((no, _)) if *no == page_no);
        if hit {
            self.hits += 1;
        } else {
            let guard = pin()?;
            self.misses += 1;
            self.slots[way] = Some((page_no, guard));
        }
        match &self.slots[way] {
            Some((_, guard)) => Ok(guard),
            None => unreachable!("slot was just filled"),
        }
    }

    /// Number of live pins currently held.
    pub fn live_pins(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Lifetime `(hits, misses)` of this cache: touches served by a held
    /// guard vs touches that pinned through the pool.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Releases every held pin.
    pub fn clear(&mut self) {
        self.slots = Default::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_resman::ResourceManager;
    use payg_storage::{BufferPool, ChainId, MemStore, PageKey, PageStore};
    use std::sync::Arc;

    fn pool_with_pages(n: u64) -> (BufferPool, ChainId) {
        let store = Arc::new(MemStore::new());
        let chain = store.create_chain(64).unwrap();
        for p in 0..n {
            store.append_page(chain, &[p as u8; 64]).unwrap();
        }
        (BufferPool::new(store, ResourceManager::new()), chain)
    }

    #[test]
    fn hits_avoid_pool_traffic_and_misses_replace() {
        let (pool, chain) = pool_with_pages(20);
        let mut cache = GuardCache::new();
        // First touch of each page: a miss.
        for p in 0..3u64 {
            let g = cache.get_or_pin(p, || pool.pin(PageKey::new(chain, p))).unwrap();
            assert_eq!(g[0], p as u8);
        }
        assert_eq!(cache.live_pins(), 3);
        let loads = pool.metrics().loads;
        // Re-touching cached pages is free: no loads, no new pins.
        for p in 0..3u64 {
            let g = cache.get_or_pin(p, || pool.pin(PageKey::new(chain, p))).unwrap();
            assert_eq!(g[0], p as u8);
        }
        assert_eq!(pool.metrics().loads, loads);
        assert_eq!(cache.live_pins(), 3);
        // Page mapping to an occupied way replaces (and releases) it.
        let p = GUARD_CACHE_WAYS as u64; // same way as page 0
        let _ = cache.get_or_pin(p, || pool.pin(PageKey::new(chain, p))).unwrap();
        assert_eq!(cache.live_pins(), 3, "replacement keeps the pin count");
    }

    #[test]
    fn pin_count_is_bounded_by_ways() {
        let (pool, chain) = pool_with_pages(64);
        let mut cache = GuardCache::new();
        for p in 0..64u64 {
            cache.get_or_pin(p, || pool.pin(PageKey::new(chain, p))).unwrap();
        }
        assert_eq!(cache.live_pins(), GUARD_CACHE_WAYS);
        cache.clear();
        assert_eq!(cache.live_pins(), 0);
    }

    #[test]
    fn failed_pin_keeps_previous_occupant() {
        let (pool, chain) = pool_with_pages(4);
        let mut cache = GuardCache::new();
        cache.get_or_pin(1, || pool.pin(PageKey::new(chain, 1))).unwrap();
        let err: Result<&PageGuard, &str> = cache.get_or_pin(1 + GUARD_CACHE_WAYS as u64, || Err("nope"));
        assert!(err.is_err());
        let g = cache
            .get_or_pin(1, || pool.pin(PageKey::new(chain, 1)))
            .unwrap();
        assert_eq!(g[0], 1);
    }
}
