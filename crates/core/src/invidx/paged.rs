//! The page-loadable inverted index (paper §3.3, Fig. 3).
//!
//! One chain persists both vectors: postinglist pages first, then at most
//! one **mixed page** (trailing postinglist chunks followed by the first
//! directory chunks), then pure directory pages. Both vectors are n-bit
//! packed in 64-value chunks, so the logical page number and in-page offset
//! of any entry are pure arithmetic — the paper's Eq. 1 and Eq. 2. A lookup
//! therefore pins at most one directory page and one postinglist page.
//!
//! For unique columns the directory is the identity and is not stored; the
//! chain contains only postinglist pages.
//!
//! When [`PageConfig::pef_postings`] is on (and the fragment has fewer than
//! 2³² rows), the postinglist is stored as **partitioned Elias-Fano**
//! instead of bit-packed chunks: the vid-grouped row positions are mapped
//! through the monotone transform `vid · rows + rpos`, encoded 64 values
//! per partition, and packed into pages without straddling. Partitions are
//! variable-sized, so a plain-`u64` **skip table** (one chain offset per
//! partition) sits between the posting pages and the directory pages; a
//! lookup pins at most one skip page, one posting page and one directory
//! page. Seeks run in the compressed domain via
//! [`PagedIndexIterator::next_row_pos_geq`] — partition headers bound-skip
//! and at most one Elias-Fano bucket is scanned. The directory stays
//! bit-packed (it is random-accessed, not scanned), and there is no mixed
//! page in this layout.

use crate::{CoreError, CoreResult, PageConfig};
use payg_encoding::chunk::{bytes_per_chunk, CHUNK_LEN};
#[cfg(test)]
use payg_encoding::chunk::chunk_count;
use payg_encoding::dispatch::{ChainCodec, CodecKind};
use payg_encoding::pef::{PartitionRef, PARTITION_LEN};
use payg_encoding::{BitPackedVec, BitWidth};
use payg_obs::names;
use payg_storage::{BufferPool, ChainRef, PageGuard, PageKey};
use std::sync::Arc;

struct Meta {
    chain: ChainRef,
    cardinality: u64,
    rows: u64,
    /// Width of postinglist entries (row positions).
    wp: BitWidth,
    /// Width of directory entries (offsets, up to `rows` inclusive).
    wd: BitWidth,
    unique: bool,
    /// Postinglist chunks per full page.
    post_cpp: u64,
    /// Directory chunks per full (pure directory) page.
    dir_cpp: u64,
    /// Pages holding postinglist chunks (the last may be the mixed page).
    post_pages: u64,
    /// Directory chunks co-located on the mixed page (0 = no mixed page).
    mixed_dir_chunks: u64,
    /// Bytes of postinglist data on the mixed page (offset of its first
    /// directory chunk).
    mixed_post_bytes: usize,
    /// First pure directory page.
    dir_start_page: u64,
    /// Postinglist codec: `Plain` = bit-packed chunks, `Pef` = partitioned
    /// Elias-Fano over the `vid · rows + rpos` transform.
    codec: CodecKind,
    /// Skip-table pages (PEF only; they follow the posting pages).
    skip_pages: u64,
}

/// The page-loadable inverted index.
pub struct PagedInvertedIndex {
    pool: BufferPool,
    meta: Arc<Meta>,
}

impl PagedInvertedIndex {
    /// Builds and persists the index of `values` (per-row vids).
    /// `cardinality` is the dictionary size; the column is unique (identity
    /// directory, elided) exactly when `cardinality == values.len()`.
    pub fn build(pool: &BufferPool, config: &PageConfig, values: &[u64], cardinality: u64) -> CoreResult<Self> {
        let rows = values.len() as u64;
        let unique = cardinality == rows;
        let page = config.index_page;
        let store = Arc::clone(pool.store());
        let mut scratch = crate::scratch::ChainScratch::new(pool);
        let chain = scratch.create_chain(page)?;

        // Counting sort: postinglist = row positions grouped by vid.
        let mut offsets = vec![0u64; cardinality as usize + 1];
        for &v in values {
            offsets[v as usize + 1] += 1;
        }
        for i in 1..offsets.len() {
            offsets[i] += offsets[i - 1];
        }
        let mut cursors = offsets.clone();
        let mut postings = vec![0u64; values.len()];
        for (rpos, &v) in values.iter().enumerate() {
            postings[cursors[v as usize] as usize] = rpos as u64;
            cursors[v as usize] += 1;
        }

        let wp = BitWidth::for_cardinality(rows);
        let wd = BitWidth::for_max_value(rows);
        let post = BitPackedVec::from_values_with_width(&postings, wp);
        let dir = (!unique && cardinality > 0)
            .then(|| BitPackedVec::from_values_with_width(&offsets, wd));

        let bpc_p = bytes_per_chunk(wp);
        let bpc_d = bytes_per_chunk(wd);
        let post_cpp = page.checked_div(bpc_p).unwrap_or(0) as u64;
        let dir_cpp = page.checked_div(bpc_d).unwrap_or(0) as u64;
        // PEF needs the `vid · rows + rpos` transform to stay in u64, hence
        // the row-count guard; trivial postinglists stay bit-packed.
        let use_pef = config.pef_postings && wp.bits() > 0 && rows < (1u64 << 32);
        if (!use_pef && wp.bits() > 0 && post_cpp == 0) || (dir.is_some() && dir_cpp == 0) {
            return Err(CoreError::Storage(payg_storage::StorageError::corrupt(format!(
                "index page of {page} bytes cannot hold one chunk at {wp}/{wd}"
            ))));
        }

        let mut buf: Vec<u8> = Vec::with_capacity(page);
        let mut post_pages = 0u64;
        let mut skip_pages = 0u64;
        let mut dir_pages = 0u64;
        let mut mixed_dir_chunks = 0u64;
        let mut mixed_post_bytes = 0usize;
        let mut pef_post_bytes = 0u64;
        if use_pef {
            debug_assert_eq!(PARTITION_LEN, CHUNK_LEN);
            // Monotone transform: vid-grouped row positions become a single
            // non-decreasing sequence, so every 64-value run is a valid
            // Elias-Fano partition.
            let mut transformed = Vec::with_capacity(postings.len());
            for v in 0..cardinality as usize {
                for k in offsets[v]..offsets[v + 1] {
                    transformed.push(v as u64 * rows + postings[k as usize]);
                }
            }
            // Encode partitions into pages without straddling, recording
            // each partition's chain byte offset for the skip table.
            let mut part_locs: Vec<u64> =
                Vec::with_capacity(transformed.len().div_ceil(PARTITION_LEN));
            let mut enc = Vec::new();
            for part in transformed.chunks(PARTITION_LEN) {
                enc.clear();
                payg_encoding::pef::encode_partition(part, &mut enc);
                if !buf.is_empty() && buf.len() + enc.len() > page {
                    store.append_page(chain, &buf)?;
                    post_pages += 1;
                    buf.clear();
                }
                if enc.len() > page {
                    return Err(CoreError::Storage(payg_storage::StorageError::corrupt(
                        format!(
                            "index page of {page} bytes cannot hold a {}-byte pef partition",
                            enc.len()
                        ),
                    )));
                }
                part_locs.push(post_pages * page as u64 + buf.len() as u64);
                buf.extend_from_slice(&enc);
                pef_post_bytes += enc.len() as u64;
            }
            if !buf.is_empty() {
                store.append_page(chain, &buf)?;
                post_pages += 1;
                buf.clear();
            }
            // Skip table: plain little-endian u64 chain offsets, one per
            // partition, on their own pages after the posting pages.
            for group in part_locs.chunks((page / 8).max(1)) {
                let mut bytes = Vec::with_capacity(group.len() * 8);
                for &loc in group {
                    bytes.extend_from_slice(&loc.to_le_bytes());
                }
                store.append_page(chain, &bytes)?;
                skip_pages += 1;
            }
            // Pure directory pages; the PEF layout has no mixed page.
            if let Some(dir) = &dir {
                for ci in 0..dir.chunk_count() {
                    for &w in dir.chunk_words(ci) {
                        buf.extend_from_slice(&w.to_le_bytes());
                    }
                    if buf.len() + bpc_d > page {
                        store.append_page(chain, &buf)?;
                        dir_pages += 1;
                        buf.clear();
                    }
                }
                if !buf.is_empty() {
                    store.append_page(chain, &buf)?;
                    dir_pages += 1;
                    buf.clear();
                }
            }
        } else {
            // Bit-packed postinglist chunks, page by page.
            if wp.bits() > 0 {
                for ci in 0..post.chunk_count() {
                    for &w in post.chunk_words(ci) {
                        buf.extend_from_slice(&w.to_le_bytes());
                    }
                    if buf.len() + bpc_p > page {
                        store.append_page(chain, &buf)?;
                        post_pages += 1;
                        buf.clear();
                    }
                }
            }
            // `buf` now holds the trailing partial posting page (possibly empty).
            mixed_post_bytes = buf.len();
            if let Some(dir) = &dir {
                let dir_chunks = dir.chunk_count();
                let mut next_chunk = 0u64;
                if !buf.is_empty() {
                    // Fill the tail posting page with directory chunks → mixed page.
                    while next_chunk < dir_chunks && buf.len() + bpc_d <= page {
                        for &w in dir.chunk_words(next_chunk) {
                            buf.extend_from_slice(&w.to_le_bytes());
                        }
                        next_chunk += 1;
                    }
                    mixed_dir_chunks = next_chunk;
                    store.append_page(chain, &buf)?;
                    post_pages += 1;
                    buf.clear();
                }
                // Pure directory pages.
                while next_chunk < dir_chunks {
                    for &w in dir.chunk_words(next_chunk) {
                        buf.extend_from_slice(&w.to_le_bytes());
                    }
                    next_chunk += 1;
                    if buf.len() + bpc_d > page {
                        store.append_page(chain, &buf)?;
                        dir_pages += 1;
                        buf.clear();
                    }
                }
                if !buf.is_empty() {
                    store.append_page(chain, &buf)?;
                    dir_pages += 1;
                    buf.clear();
                }
            } else if !buf.is_empty() {
                store.append_page(chain, &buf)?;
                post_pages += 1;
                buf.clear();
            }
        }

        // Self-describing chain + per-codec build metrics, mirroring the
        // paged dictionary.
        let codec = if use_pef { CodecKind::Pef } else { CodecKind::Plain };
        store.set_chain_descriptor(chain, &ChainCodec { kind: codec, params: Vec::new() }.serialize())?;
        let registry = pool.registry();
        let label = pool.metrics_label();
        registry
            .counter_labeled(names::POOL_PAGE_BYTES, &[("pool", label), ("codec", codec.label())])
            .add((post_pages + skip_pages) * page as u64);
        if dir_pages > 0 {
            registry
                .counter_labeled(
                    names::POOL_PAGE_BYTES,
                    &[("pool", label), ("codec", CodecKind::Plain.label())],
                )
                .add(dir_pages * page as u64);
        }
        if use_pef && rows > 0 {
            // Average Elias-Fano bits per posting, ×100.
            registry
                .gauge_labeled(names::PEF_CHUNK_BITS, &[("pool", label)])
                .set(pef_post_bytes * 8 * 100 / rows);
        }

        let meta = Meta {
            chain: ChainRef { chain, pages: post_pages + skip_pages + dir_pages, page_size: page },
            cardinality,
            rows,
            wp,
            wd: if dir.is_some() { wd } else { BitWidth::ZERO },
            unique,
            post_cpp,
            dir_cpp,
            post_pages,
            mixed_dir_chunks,
            mixed_post_bytes: if mixed_dir_chunks > 0 { mixed_post_bytes } else { 0 },
            dir_start_page: post_pages + skip_pages,
            codec,
            skip_pages,
        };
        scratch.commit();
        Ok(PagedInvertedIndex { pool: pool.clone(), meta: Arc::new(meta) })
    }

    /// Serializes the index's metadata for a catalog checkpoint.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let m = &self.meta;
        let mut w = crate::meta::MetaWriter::new();
        crate::meta::write_chain(&mut w, &m.chain);
        w.u64(m.cardinality);
        w.u64(m.rows);
        w.u8(m.wp.bits() as u8);
        w.u8(m.wd.bits() as u8);
        w.u8(u8::from(m.unique));
        w.u64(m.post_cpp);
        w.u64(m.dir_cpp);
        w.u64(m.post_pages);
        w.u64(m.mixed_dir_chunks);
        w.u64(m.mixed_post_bytes as u64);
        w.u64(m.dir_start_page);
        w.u8(match m.codec {
            CodecKind::Plain => 0,
            CodecKind::Fsst => 1,
            CodecKind::Pef => 2,
        });
        w.u64(m.skip_pages);
        w.finish()
    }

    /// Reopens an index from checkpointed metadata over `pool`'s store.
    pub fn open(pool: &BufferPool, bytes: &[u8]) -> CoreResult<Self> {
        let mut r = crate::meta::MetaReader::new(bytes);
        let chain = crate::meta::read_chain(&mut r)?;
        let meta = Meta {
            chain,
            cardinality: r.u64()?,
            rows: r.u64()?,
            wp: BitWidth::new(u32::from(r.u8()?))?,
            wd: BitWidth::new(u32::from(r.u8()?))?,
            unique: r.u8()? != 0,
            post_cpp: r.u64()?,
            dir_cpp: r.u64()?,
            post_pages: r.u64()?,
            mixed_dir_chunks: r.u64()?,
            mixed_post_bytes: r.u64()? as usize,
            dir_start_page: r.u64()?,
            codec: match r.u8()? {
                2 => CodecKind::Pef,
                1 => CodecKind::Fsst,
                _ => CodecKind::Plain,
            },
            skip_pages: r.u64()?,
        };
        r.expect_end()?;
        Ok(PagedInvertedIndex { pool: pool.clone(), meta: Arc::new(meta) })
    }

    /// Dictionary cardinality.
    pub fn cardinality(&self) -> u64 {
        self.meta.cardinality
    }

    /// Rows indexed.
    pub fn rows(&self) -> u64 {
        self.meta.rows
    }

    /// True when the directory is elided (unique column).
    pub fn is_unique(&self) -> bool {
        self.meta.unique
    }

    /// Total pages in the chain.
    pub fn pages(&self) -> u64 {
        self.meta.chain.pages
    }

    /// True when the chain contains a mixed postinglist+directory page.
    pub fn has_mixed_page(&self) -> bool {
        self.meta.mixed_dir_chunks > 0
    }

    /// The codec the postinglist is stored in.
    pub fn codec_kind(&self) -> CodecKind {
        self.meta.codec
    }

    /// The store chain id holding this index's pages (postings, skip
    /// table, directory) — for attributing traced page events.
    pub fn chain_id(&self) -> u64 {
        self.meta.chain.chain.0
    }

    /// Creates a lookup iterator (`getFirstRowPos` / `getNextRowPos`).
    pub fn iter(&self) -> PagedIndexIterator<'_> {
        PagedIndexIterator {
            idx: self,
            post_guard: None,
            dir_guard: None,
            skip_guard: None,
            state: None,
            post_chunk: None,
            dir_chunk: None,
        }
    }

    /// Convenience: all postings of `vid` via a fresh iterator.
    pub fn postings(&self, vid: u64) -> CoreResult<Vec<u64>> {
        let mut out = Vec::new();
        let mut it = self.iter();
        if let Some(first) = it.get_first_row_pos(vid)? {
            out.push(first);
            while let Some(next) = it.get_next_row_pos()? {
                out.push(next);
            }
        }
        Ok(out)
    }

    /// Page number and byte offset of directory entry `e` — the paper's
    /// Eq. 1 / Eq. 2 in chunk-granular form.
    fn dir_location(&self, e: u64) -> (u64, usize, usize) {
        let di = e / CHUNK_LEN as u64;
        let slot = (e % CHUNK_LEN as u64) as usize;
        let bpc_d = bytes_per_chunk(self.meta.wd);
        if di < self.meta.mixed_dir_chunks {
            let page = self.meta.post_pages - 1; // the mixed page
            let offset = self.meta.mixed_post_bytes + di as usize * bpc_d;
            (page, offset, slot)
        } else {
            let rel = di - self.meta.mixed_dir_chunks;
            let page = self.meta.dir_start_page + rel / self.meta.dir_cpp;
            let offset = ((rel % self.meta.dir_cpp) as usize) * bpc_d;
            (page, offset, slot)
        }
    }

    /// Page number and byte offset of postinglist entry `k`.
    fn post_location(&self, k: u64) -> (u64, usize, usize) {
        let ci = k / CHUNK_LEN as u64;
        let slot = (k % CHUNK_LEN as u64) as usize;
        let bpc_p = bytes_per_chunk(self.meta.wp);
        let page = ci / self.meta.post_cpp;
        let offset = ((ci % self.meta.post_cpp) as usize) * bpc_p;
        (page, offset, slot)
    }
}

#[derive(Clone, Copy)]
struct IterState {
    /// Next postinglist offset to read.
    cur: u64,
    /// One past the last postinglist offset of the current vid.
    end: u64,
}

/// Stateful lookup iterator over a [`PagedInvertedIndex`].
///
/// Keeps at most one pinned directory page and one pinned postinglist page;
/// consecutive [`PagedIndexIterator::get_next_row_pos`] calls for the same
/// vid usually hit the already-pinned postinglist page.
pub struct PagedIndexIterator<'a> {
    idx: &'a PagedInvertedIndex,
    post_guard: Option<(u64, PageGuard)>,
    dir_guard: Option<(u64, PageGuard)>,
    skip_guard: Option<(u64, PageGuard)>,
    state: Option<IterState>,
    /// Decoded-chunk caches: consecutive reads within one chunk (the common
    /// `getNextRowPos` pattern) cost one array lookup instead of a decode.
    post_chunk: Option<(u64, [u64; CHUNK_LEN])>,
    dir_chunk: Option<(u64, [u64; CHUNK_LEN])>,
}

impl PagedIndexIterator<'_> {
    fn pin(
        pool: &BufferPool,
        chain: &ChainRef,
        slot: &mut Option<(u64, PageGuard)>,
        page_no: u64,
    ) -> CoreResult<()> {
        let stale = !matches!(slot, Some((cur, _)) if *cur == page_no);
        if stale {
            let g = pool.pin(PageKey::new(chain.chain, page_no)).map_err(CoreError::Storage)?;
            *slot = Some((page_no, g));
        }
        Ok(())
    }

    fn read_dir(&mut self, e: u64) -> CoreResult<u64> {
        let meta = &self.idx.meta;
        let chunk_no = e / CHUNK_LEN as u64;
        let slot = (e % CHUNK_LEN as u64) as usize;
        if let Some((c, buf)) = &self.dir_chunk {
            if *c == chunk_no {
                return Ok(buf[slot]);
            }
        }
        let (page, offset, _) = self.idx.dir_location(e);
        Self::pin(&self.idx.pool, &meta.chain, &mut self.dir_guard, page)?;
        let Some((_, guard)) = self.dir_guard.as_ref() else {
            unreachable!("pin above populated the guard slot")
        };
        let mut buf = [0u64; CHUNK_LEN];
        decode_packed_chunk(guard, offset, meta.wd, &mut buf);
        self.dir_chunk = Some((chunk_no, buf));
        Ok(buf[slot])
    }

    /// Chain byte offset of PEF partition `p`, read from the skip table.
    fn read_skip(&mut self, p: u64) -> CoreResult<u64> {
        let meta = &self.idx.meta;
        let epp = (meta.chain.page_size / 8).max(1) as u64;
        let page = meta.post_pages + p / epp;
        Self::pin(&self.idx.pool, &meta.chain, &mut self.skip_guard, page)?;
        let Some((_, guard)) = self.skip_guard.as_ref() else {
            unreachable!("pin above populated the guard slot")
        };
        let off = ((p % epp) * 8) as usize;
        Ok(crate::util::le_u64(&guard[off..off + 8]))
    }

    fn read_post(&mut self, k: u64) -> CoreResult<u64> {
        let meta = &self.idx.meta;
        if meta.wp.bits() == 0 {
            return Ok(0); // 0 or 1 rows: the only row position is 0
        }
        let chunk_no = k / CHUNK_LEN as u64;
        let slot = (k % CHUNK_LEN as u64) as usize;
        if let Some((c, buf)) = &self.post_chunk {
            if *c == chunk_no {
                return Ok(buf[slot]);
            }
        }
        let mut buf = [0u64; CHUNK_LEN];
        if meta.codec == CodecKind::Pef {
            let loc = self.read_skip(chunk_no)?;
            let page_size = self.idx.meta.chain.page_size as u64;
            let meta = &self.idx.meta;
            Self::pin(&self.idx.pool, &meta.chain, &mut self.post_guard, loc / page_size)?;
            let Some((_, guard)) = self.post_guard.as_ref() else {
                unreachable!("pin above populated the guard slot")
            };
            let n = (meta.rows - chunk_no * CHUNK_LEN as u64).min(CHUNK_LEN as u64) as usize;
            let part = PartitionRef::parse(&guard[..], (loc % page_size) as usize, n)?;
            part.read_into(&mut buf)?;
            // Undo the vid·rows+rpos transform once per cached chunk.
            for v in &mut buf[..n] {
                *v %= meta.rows;
            }
        } else {
            let (page, offset, _) = self.idx.post_location(k);
            Self::pin(&self.idx.pool, &meta.chain, &mut self.post_guard, page)?;
            let Some((_, guard)) = self.post_guard.as_ref() else {
                unreachable!("pin above populated the guard slot")
            };
            decode_packed_chunk(guard, offset, meta.wp, &mut buf);
        }
        self.post_chunk = Some((chunk_no, buf));
        Ok(buf[slot])
    }

    /// Positions the iterator on `vid` and returns its first row position
    /// (`None` when `vid` has no postings, which cannot happen for vids in
    /// a merged main fragment but is handled defensively).
    pub fn get_first_row_pos(&mut self, vid: u64) -> CoreResult<Option<u64>> {
        let meta = &self.idx.meta;
        if vid >= meta.cardinality {
            return Err(CoreError::VidOutOfBounds { vid, cardinality: meta.cardinality });
        }
        let (start, end) = if meta.unique {
            (vid, vid + 1)
        } else {
            (self.read_dir(vid)?, self.read_dir(vid + 1)?)
        };
        if start >= end {
            self.state = None;
            return Ok(None);
        }
        self.state = Some(IterState { cur: start + 1, end });
        Ok(Some(self.read_post(start)?))
    }

    /// Returns the next row position of the current vid, or `None` when the
    /// postinglist is exhausted (or no vid is positioned).
    pub fn get_next_row_pos(&mut self) -> CoreResult<Option<u64>> {
        let Some(state) = self.state else { return Ok(None) };
        if state.cur >= state.end {
            return Ok(None);
        }
        let rpos = self.read_post(state.cur)?;
        self.state = Some(IterState { cur: state.cur + 1, end: state.end });
        Ok(Some(rpos))
    }

    /// Seeks within `vid`'s postinglist: returns the smallest row position
    /// `>= rpos`, or `None` when the list has no such posting, positioning
    /// the iterator so `get_next_row_pos` continues after the match.
    ///
    /// Under the PEF codec this is a compressed-domain seek: partitions
    /// whose header bound lies below the target are skipped for the price
    /// of two varints, and at most one Elias-Fano bucket of the landing
    /// partition is scanned — nothing is bulk-decoded. Under the bit-packed
    /// codec it binary-searches the sorted postinglist slice.
    pub fn next_row_pos_geq(&mut self, vid: u64, rpos: u64) -> CoreResult<Option<u64>> {
        let meta = &self.idx.meta;
        if vid >= meta.cardinality {
            return Err(CoreError::VidOutOfBounds { vid, cardinality: meta.cardinality });
        }
        self.state = None;
        if rpos >= meta.rows {
            return Ok(None);
        }
        let (start, end) = if meta.unique {
            (vid, vid + 1)
        } else {
            (self.read_dir(vid)?, self.read_dir(vid + 1)?)
        };
        if start >= end {
            return Ok(None);
        }
        if meta.codec == CodecKind::Pef {
            let target = vid * meta.rows + rpos;
            let vid_end = (vid + 1) * meta.rows;
            let page_size = meta.chain.page_size as u64;
            let first_p = start / PARTITION_LEN as u64;
            let last_p = (end - 1) / PARTITION_LEN as u64;
            for p in first_p..=last_p {
                let loc = self.read_skip(p)?;
                let meta = &self.idx.meta;
                Self::pin(&self.idx.pool, &meta.chain, &mut self.post_guard, loc / page_size)?;
                let Some((_, guard)) = self.post_guard.as_ref() else {
                    unreachable!("pin above populated the guard slot")
                };
                let n = (meta.rows - p * PARTITION_LEN as u64).min(PARTITION_LEN as u64) as usize;
                let part = PartitionRef::parse(&guard[..], (loc % page_size) as usize, n)?;
                if part.last() < target {
                    continue; // header-only skip: no value here can match
                }
                let Some((slot, v)) = part.next_geq(target)? else { continue };
                let g = p * PARTITION_LEN as u64 + slot as u64;
                if g >= end || v >= vid_end {
                    return Ok(None); // first match belongs to a later vid
                }
                self.state = Some(IterState { cur: g + 1, end });
                return Ok(Some(v - vid * meta.rows));
            }
            return Ok(None);
        }
        // Bit-packed: binary search the sorted slice through the chunk cache.
        let mut lo = start;
        let mut hi = end;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.read_post(mid)? < rpos {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        if lo >= end {
            return Ok(None);
        }
        let v = self.read_post(lo)?;
        self.state = Some(IterState { cur: lo + 1, end });
        Ok(Some(v))
    }

    /// Number of postings of the positioned vid that remain unread.
    pub fn remaining(&self) -> u64 {
        self.state.map_or(0, |s| s.end.saturating_sub(s.cur))
    }

    /// Number of postings of `vid`, read from the directory alone — no
    /// postinglist pages are touched (the paper's COUNT path).
    pub fn posting_count(&mut self, vid: u64) -> CoreResult<u64> {
        let meta = &self.idx.meta;
        if vid >= meta.cardinality {
            return Err(CoreError::VidOutOfBounds { vid, cardinality: meta.cardinality });
        }
        if meta.unique {
            return Ok(1);
        }
        let start = self.read_dir(vid)?;
        let end = self.read_dir(vid + 1)?;
        Ok(end.saturating_sub(start))
    }
}

/// Decodes the full 64-value chunk starting at byte `offset` of a page.
fn decode_packed_chunk(page: &PageGuard, offset: usize, w: BitWidth, out: &mut [u64; CHUNK_LEN]) {
    let n = w.bits() as usize;
    let mut words = [0u64; 64];
    let bytes = &page[offset..offset + n * 8];
    payg_encoding::unaligned::fill_le_words(bytes, &mut words[..n]);
    payg_encoding::chunk::decode_chunk(&words[..n], w, out);
}

/// The paper's Eq. 1, kept verbatim for the equivalence test: logical page
/// number of the directory page containing `vid`'s offset, where `b` is the
/// mixed (or first directory) page, `v_first` the offsets on it and
/// `v_page` the offsets per full directory page.
#[cfg(test)]
fn eq1_page(b: u64, v_first: u64, vid: u64, v_page: u64) -> u64 {
    if vid < v_first {
        b
    } else {
        // The paper's 1-based formulation maps to 0-based chunks here: skip
        // past the `v_first` offsets on page b, then stride by `v_page`.
        b + 1 + (vid - v_first) / v_page
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invidx::InMemoryInvertedIndex;
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;

    fn pool() -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
    }

    fn sample(len: usize, card: u64, seed: u64) -> Vec<u64> {
        // Guarantee every vid occurs at least once (main-dictionary invariant).
        (0..len as u64)
            .map(|i| {
                if i < card {
                    i
                } else {
                    seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        .wrapping_add(i)
                        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                        % card
                }
            })
            .collect()
    }

    fn build(values: &[u64], card: u64) -> (BufferPool, PagedInvertedIndex) {
        build_with(values, card, &PageConfig::tiny())
    }

    fn build_with(
        values: &[u64],
        card: u64,
        config: &PageConfig,
    ) -> (BufferPool, PagedInvertedIndex) {
        let pool = pool();
        let idx = PagedInvertedIndex::build(&pool, config, values, card).unwrap();
        (pool, idx)
    }

    /// The legacy bit-packed postinglist layout (mixed page, Eq. 1 layout).
    fn bitpacked() -> PageConfig {
        PageConfig { pef_postings: false, ..PageConfig::tiny() }
    }

    #[test]
    fn postings_match_in_memory_reference() {
        let values = sample(3000, 40, 1);
        let (_pool, paged) = build(&values, 40);
        let reference = InMemoryInvertedIndex::build(&values, 40);
        assert!(paged.pages() > 3, "tiny pages must force a multi-page chain");
        for vid in 0..40 {
            assert_eq!(paged.postings(vid).unwrap(), reference.postings(vid).unwrap(), "vid {vid}");
        }
    }

    #[test]
    fn iterator_protocol() {
        let values = [1u64, 0, 1, 1, 2, 0];
        let (_pool, paged) = build(&values, 3);
        let mut it = paged.iter();
        assert_eq!(it.get_first_row_pos(1).unwrap(), Some(0));
        assert_eq!(it.remaining(), 2);
        assert_eq!(it.get_next_row_pos().unwrap(), Some(2));
        assert_eq!(it.get_next_row_pos().unwrap(), Some(3));
        assert_eq!(it.get_next_row_pos().unwrap(), None);
        // Repositioning resets state.
        assert_eq!(it.get_first_row_pos(2).unwrap(), Some(4));
        assert_eq!(it.get_next_row_pos().unwrap(), None);
        // Unpositioned iterator.
        let mut fresh = paged.iter();
        assert_eq!(fresh.get_next_row_pos().unwrap(), None);
        assert!(matches!(fresh.get_first_row_pos(3), Err(CoreError::VidOutOfBounds { .. })));
    }

    #[test]
    fn unique_index_has_no_directory_pages() {
        let rows = 2000u64;
        let values: Vec<u64> = (0..rows).map(|i| (i * 7) % rows).collect(); // permutation
        let (_pool, unique) = build_with(&values, rows, &bitpacked());
        assert!(unique.is_unique());
        assert!(!unique.has_mixed_page());
        let (_pool2, non_unique) = build_with(&sample(rows as usize, rows / 2, 2), rows / 2, &bitpacked());
        assert!(!non_unique.is_unique());
        // The unique chain stores only the postinglist.
        let post_only_pages =
            chunk_count(rows).div_ceil(unique.meta.post_cpp);
        assert_eq!(unique.pages(), post_only_pages);
        for vid in (0..rows).step_by(97) {
            let rpos = values.iter().position(|&v| v == vid).unwrap() as u64;
            assert_eq!(unique.postings(vid).unwrap(), vec![rpos]);
        }
    }

    #[test]
    fn sparse_column_uses_a_mixed_page() {
        // Few rows + small cardinality: postings and directory share a page.
        let values = sample(100, 5, 3);
        let (_pool, idx) = build_with(&values, 5, &bitpacked());
        assert!(idx.has_mixed_page());
        assert_eq!(idx.pages(), idx.meta.post_pages, "no pure directory pages");
        let reference = InMemoryInvertedIndex::build(&values, 5);
        for vid in 0..5 {
            assert_eq!(idx.postings(vid).unwrap(), reference.postings(vid).unwrap());
        }
    }

    #[test]
    fn lookup_pins_at_most_two_pages() {
        let values = sample(5000, 500, 4);
        let (pool, idx) = build_with(&values, 500, &bitpacked());
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits(Some(payg_resman::PoolLimits::new(0, usize::MAX)));
        let mut it = idx.iter();
        let _ = it.get_first_row_pos(250).unwrap();
        // Everything except the iterator's (≤2) pinned pages is evictable.
        resman.reactive_unload();
        assert!(pool.resident_pages() <= 2);
        // And a full lookup loads at most one directory + one posting page
        // beyond what is already resident.
        let loads_before = pool.metrics().loads;
        let mut it2 = idx.iter();
        let _ = it2.get_first_row_pos(251).unwrap();
        assert!(pool.metrics().loads - loads_before <= 2);
    }

    #[test]
    fn eq1_equivalence_with_chunk_arithmetic() {
        // Build an index whose directory spans the mixed page and several
        // pure pages, then check dir_location against the paper's Eq. 1.
        let values = sample(2100, 1500, 5);
        let (_pool, idx) = build_with(&values, 1500, &bitpacked());
        assert!(idx.has_mixed_page());
        let m = &idx.meta;
        let b = m.post_pages - 1;
        let v_first = m.mixed_dir_chunks * CHUNK_LEN as u64;
        let v_page = m.dir_cpp * CHUNK_LEN as u64;
        for e in 0..=m.cardinality {
            let (page, _, _) = idx.dir_location(e);
            assert_eq!(page, eq1_page(b, v_first, e, v_page), "entry {e}");
        }
    }

    #[test]
    fn pef_parity_with_bitpacked() {
        let values = sample(4000, 300, 11);
        let (pool, pef) = build(&values, 300);
        let (_pool2, packed) = build_with(&values, 300, &bitpacked());
        assert_eq!(pef.codec_kind(), CodecKind::Pef);
        assert_eq!(packed.codec_kind(), CodecKind::Plain);
        for vid in 0..300 {
            assert_eq!(pef.postings(vid).unwrap(), packed.postings(vid).unwrap(), "vid {vid}");
        }
        // The chain file self-describes the posting codec.
        let desc = pool.store().chain_descriptor(pef.meta.chain.chain).unwrap();
        assert_eq!(ChainCodec::deserialize(&desc).unwrap().kind, CodecKind::Pef);
        // Checkpoint metadata round-trips the codec and skip-table layout.
        let reopened = PagedInvertedIndex::open(&pool, &pef.meta_bytes()).unwrap();
        assert_eq!(reopened.codec_kind(), CodecKind::Pef);
        for vid in (0..300).step_by(37) {
            assert_eq!(reopened.postings(vid).unwrap(), packed.postings(vid).unwrap());
        }
    }

    #[test]
    fn pef_clustered_postings_use_fewer_pages() {
        // Clustered rows: each vid's postings are one consecutive run, the
        // favorable case for Elias-Fano.
        let rows = 20_000u64;
        let values: Vec<u64> = (0..rows).map(|i| i / 200).collect();
        let card = rows / 200;
        let (_p1, pef) = build(&values, card);
        let (_p2, packed) = build_with(&values, card, &bitpacked());
        assert_eq!(pef.codec_kind(), CodecKind::Pef);
        assert!(
            pef.pages() < packed.pages(),
            "pef chain ({} pages incl. skip table) must beat bit-packed ({} pages) on clustered rows",
            pef.pages(),
            packed.pages()
        );
        for vid in (0..card).step_by(7) {
            assert_eq!(pef.postings(vid).unwrap(), packed.postings(vid).unwrap());
        }
    }

    #[test]
    fn next_row_pos_geq_matches_naive_under_both_codecs() {
        let values = sample(3000, 80, 13);
        for config in [PageConfig::tiny(), bitpacked()] {
            let (_pool, idx) = build_with(&values, 80, &config);
            let mut it = idx.iter();
            for vid in (0..80).step_by(9) {
                let posts = idx.postings(vid).unwrap();
                for target in [0, 1, posts[0], posts[posts.len() / 2], *posts.last().unwrap(), 2999, 5000] {
                    let naive = posts.iter().copied().find(|&p| p >= target);
                    assert_eq!(
                        it.next_row_pos_geq(vid, target).unwrap(),
                        naive,
                        "vid {vid} target {target} codec {:?}",
                        idx.codec_kind()
                    );
                    // The seek positions the iterator for continuation.
                    if let Some(hit) = naive {
                        let after = posts.iter().copied().find(|&p| p > hit);
                        assert_eq!(it.get_next_row_pos().unwrap(), after);
                    }
                }
            }
        }
    }

    #[test]
    fn pef_lookup_pins_at_most_three_pages() {
        let values = sample(5000, 500, 4);
        let (pool, idx) = build(&values, 500);
        assert_eq!(idx.codec_kind(), CodecKind::Pef);
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits(Some(payg_resman::PoolLimits::new(0, usize::MAX)));
        let mut it = idx.iter();
        let _ = it.get_first_row_pos(250).unwrap();
        // Directory page + skip page + posting page.
        resman.reactive_unload();
        assert!(pool.resident_pages() <= 3);
        let loads_before = pool.metrics().loads;
        let mut it2 = idx.iter();
        let _ = it2.get_first_row_pos(251).unwrap();
        assert!(pool.metrics().loads - loads_before <= 3);
    }

    #[test]
    fn tiny_corpora() {
        // Single row.
        let (_p, idx) = build(&[0], 1);
        assert_eq!(idx.postings(0).unwrap(), vec![0]);
        // Single distinct value over many rows.
        let values = vec![0u64; 300];
        let (_p, idx) = build(&values, 1);
        assert_eq!(idx.postings(0).unwrap(), (0..300u64).collect::<Vec<_>>());
        // Two rows, two values (unique).
        let (_p, idx) = build(&[1, 0], 2);
        assert!(idx.is_unique());
        assert_eq!(idx.postings(0).unwrap(), vec![1]);
        assert_eq!(idx.postings(1).unwrap(), vec![0]);
    }
}
