//! Inverted indexes (paper §3.3).
//!
//! An inverted index of a dictionary-encoded data vector maps each value
//! identifier to its *postinglist* — the set of row positions holding that
//! identifier. Physically it is two vectors: the postinglist (row positions
//! grouped by vid) and the *directory* (offset of each vid's first posting).
//!
//! * [`InMemoryInvertedIndex`]: both vectors resident as packed vectors.
//! * [`PagedInvertedIndex`]: both persisted in **one** chain of index pages —
//!   postinglist pages, at most one *mixed* page, then directory pages
//!   (Fig. 3) — with an iterator that computes the logical page number of
//!   any directory or postinglist entry arithmetically (Eq. 1, Eq. 2) and
//!   therefore loads at most two pages per lookup.
//!
//! For **unique** columns every value appears in exactly one row, the
//! directory is the identity, and it is elided entirely.

mod in_memory;
mod paged;

pub use in_memory::InMemoryInvertedIndex;
pub use paged::{PagedIndexIterator, PagedInvertedIndex};
