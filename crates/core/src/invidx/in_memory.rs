//! The fully-resident inverted index.

use crate::{CoreError, CoreResult};
use payg_encoding::{BitPackedVec, BitWidth};

/// Memory-resident inverted index: a packed postinglist (row positions
/// grouped by vid) plus, for non-unique columns, a packed directory of
/// per-vid start offsets (with one trailing sentinel = row count).
#[derive(Debug, Clone)]
pub struct InMemoryInvertedIndex {
    cardinality: u64,
    rows: u64,
    postinglist: BitPackedVec,
    /// `cardinality + 1` offsets; `None` for unique columns (identity).
    directory: Option<BitPackedVec>,
}

impl InMemoryInvertedIndex {
    /// Builds from the per-row value identifiers. `cardinality` is the
    /// dictionary size; every vid in `0..cardinality` must occur at least
    /// once (main dictionaries only contain present values).
    pub fn build(values: &[u64], cardinality: u64) -> Self {
        let rows = values.len() as u64;
        let unique = cardinality == rows;
        // Counting sort of row positions by vid (stable: ascending rpos
        // within each vid).
        let mut counts = vec![0u64; cardinality as usize];
        for &v in values {
            counts[v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(cardinality as usize + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &c in &counts {
            acc += c;
            offsets.push(acc);
        }
        let mut cursors = offsets.clone();
        let mut postings = vec![0u64; values.len()];
        for (rpos, &v) in values.iter().enumerate() {
            postings[cursors[v as usize] as usize] = rpos as u64;
            cursors[v as usize] += 1;
        }
        let wp = BitWidth::for_cardinality(rows.max(1));
        let postinglist = BitPackedVec::from_values_with_width(&postings, wp);
        let directory = if unique {
            None
        } else {
            Some(BitPackedVec::from_values(&offsets))
        };
        InMemoryInvertedIndex { cardinality, rows, postinglist, directory }
    }

    /// Dictionary cardinality.
    pub fn cardinality(&self) -> u64 {
        self.cardinality
    }

    /// True when the directory is elided (unique column).
    pub fn is_unique(&self) -> bool {
        self.directory.is_none()
    }

    /// The postinglist offsets `start..end` for `vid`.
    pub fn posting_range(&self, vid: u64) -> CoreResult<(u64, u64)> {
        if vid >= self.cardinality {
            return Err(CoreError::VidOutOfBounds { vid, cardinality: self.cardinality });
        }
        Ok(match &self.directory {
            None => (vid, vid + 1),
            Some(dir) => (dir.get(vid), dir.get(vid + 1)),
        })
    }

    /// All row positions holding `vid`, ascending.
    pub fn postings(&self, vid: u64) -> CoreResult<Vec<u64>> {
        let (start, end) = self.posting_range(vid)?;
        let mut out = Vec::new();
        self.postinglist.mget(start, end, &mut out);
        Ok(out)
    }

    /// Number of postings of `vid` (directory lookup only).
    pub fn posting_count(&self, vid: u64) -> CoreResult<u64> {
        let (start, end) = self.posting_range(vid)?;
        Ok(end - start)
    }

    /// The first row position holding `vid`, if any occur.
    pub fn first_posting(&self, vid: u64) -> CoreResult<Option<u64>> {
        let (start, end) = self.posting_range(vid)?;
        Ok((start < end).then(|| self.postinglist.get(start)))
    }

    /// Number of rows indexed.
    pub fn rows(&self) -> u64 {
        self.rows
    }

    /// Heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.postinglist.heap_bytes()
            + self.directory.as_ref().map_or(0, |d| d.heap_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postings_match_naive() {
        let values = [2u64, 0, 1, 2, 2, 0, 3, 1];
        let idx = InMemoryInvertedIndex::build(&values, 4);
        assert!(!idx.is_unique());
        for vid in 0..4u64 {
            let expect: Vec<u64> = (0..values.len() as u64)
                .filter(|&i| values[i as usize] == vid)
                .collect();
            assert_eq!(idx.postings(vid).unwrap(), expect, "vid {vid}");
            assert_eq!(idx.first_posting(vid).unwrap(), expect.first().copied());
        }
        assert!(matches!(idx.postings(4), Err(CoreError::VidOutOfBounds { .. })));
    }

    #[test]
    fn unique_index_elides_directory() {
        // A permutation: every vid exactly once.
        let values = [3u64, 0, 2, 1, 4];
        let idx = InMemoryInvertedIndex::build(&values, 5);
        assert!(idx.is_unique());
        for vid in 0..5u64 {
            let rpos = values.iter().position(|&v| v == vid).unwrap() as u64;
            assert_eq!(idx.postings(vid).unwrap(), vec![rpos]);
        }
        // The unique index is postinglist-only.
        let non_unique = InMemoryInvertedIndex::build(&[0, 0, 1, 2, 2], 3);
        assert!(idx.heap_bytes() < non_unique.heap_bytes() * 2);
    }

    #[test]
    fn single_value_column() {
        let values = [0u64; 100];
        let idx = InMemoryInvertedIndex::build(&values, 1);
        assert_eq!(idx.postings(0).unwrap(), (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn empty_index() {
        let idx = InMemoryInvertedIndex::build(&[], 0);
        assert_eq!(idx.rows(), 0);
        assert!(idx.postings(0).is_err());
    }
}
