//! Byte-order helpers for on-page structures.
//!
//! Every on-disk integer in this crate is little-endian. These helpers
//! centralize the slice-to-array conversion so call sites carry no
//! `unwrap`; the bounds are the caller's responsibility (slicing panics
//! exactly where a framing bug would).

/// Reads a little-endian `u64` from the first 8 bytes of `b`.
pub(crate) fn le_u64(b: &[u8]) -> u64 {
    // lint: allow(unwrap) an 8-byte slice converts to [u8; 8] infallibly
    u64::from_le_bytes(b[..8].try_into().unwrap())
}

/// Reads a little-endian `u32` from the first 4 bytes of `b`.
pub(crate) fn le_u32(b: &[u8]) -> u32 {
    // lint: allow(unwrap) a 4-byte slice converts to [u8; 4] infallibly
    u32::from_le_bytes(b[..4].try_into().unwrap())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reads_prefix_of_longer_slices() {
        let bytes = [1u8, 0, 0, 0, 0, 0, 0, 0, 0xFF, 0xFF];
        assert_eq!(le_u64(&bytes), 1);
        assert_eq!(le_u32(&bytes), 1);
    }
}
