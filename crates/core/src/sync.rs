//! Synchronization alias layer (the only module allowed to name raw lock
//! types — enforced by `cargo xtask lint` rule `raw-lock`).
//!
//! Core-level locks (resident-image slot, permanent helper pins) are
//! coarse and never nest inside storage or resman locks, so they always
//! resolve to `payg-check`'s zero-overhead raw wrappers with lock-rank
//! tracking under `strict-invariants`. The modeled (`--cfg payg_check`)
//! wrappers are only needed by the storage/resman hot paths.

pub use payg_check::raw::{RawMutex as Mutex, RawMutexGuard as MutexGuard};
pub use payg_check::LockRank;
