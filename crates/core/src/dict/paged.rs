//! The page-loadable dictionary (paper §3.2).
//!
//! Physical layout:
//!
//! * **Dictionary chain** — pages of prefix-encoded value blocks (16 values
//!   per block). Page format:
//!   `first_idx: u64 | nblocks: u32 | offsets: [u32; nblocks] | blocks…`,
//!   where `first_idx` is the vid of the first value on the page. Because
//!   every block except the last holds exactly 16 values, vid → (block,
//!   slot) is pure arithmetic once the page is pinned.
//! * **Overflow chain** — off-page pieces of large values; a value block
//!   entry references them by logical pointer (`page_no`, `len`).
//! * **`ipDict_ValueId` helper chain** — one `u64` per dictionary page: the
//!   last vid stored on that page, packed as plain little-endian arrays.
//! * **`ipDict_Value` helper chain** — one separator (the last value) per
//!   dictionary page, stored as prefix-encoded blocks with the same page
//!   format as the dictionary chain (`first_idx` = separator index).
//!
//! A tiny in-memory residue — the last entry of *each helper page* — routes
//! a lookup to the single helper page it needs; everything else is pinned on
//! demand through the buffer pool. Helper chains are preloaded on the first
//! access to the dictionary (§3.2.3), and both lookups touch exactly one
//! dictionary page plus, for large values, the overflow pages of **one**
//! value.
//!
//! The per-page *transient structure* (§3.2.1) — the vector of block offsets
//! — is built when a page is loaded, charged to the paged pool, and
//! destroyed on eviction.
//!
//! When [`PageConfig::dict_fsst`] is on and a sampled compression ratio
//! clears [`crate::config::FSST_SKIP_RATIO`], the dictionary chain's value
//! blocks hold **FSST-compressed** keys: front-coding, overflow spill and
//! equality probes all run on compressed bytes (deterministic encoding makes
//! compressed equality ⇔ raw equality), and only ordering comparisons and
//! materialization decompress. The trained symbol table travels in the
//! checkpoint metadata *and* as the chain's format-2 codec descriptor. The
//! helper chains keep raw separators, so page routing is codec-blind.

use crate::{CoreError, CoreResult, PageConfig};
use payg_encoding::dispatch::{ChainCodec, CodecKind};
use payg_encoding::fsst::SymbolTable;
use payg_encoding::prefix::{OverflowRef, ValueBlock, ValueBlockBuilder, ValueBlockView, BLOCK_CAP};
use payg_encoding::EncodingError;
use payg_obs::names;
use payg_storage::{BufferPool, ChainRef, PageGuard, PageKey, StorageError};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Result of a key lookup: `Ok(vid)` on a hit, `Err(insertion_vid)` — the
/// number of dictionary keys strictly below the probe — on a miss.
pub type DictLookup = Result<u64, u64>;

/// Per-iterator page-handle cache (paper §3.2.3): pinned pages are reused
/// for the lifetime of the cache and released when it is dropped, keeping
/// the resource manager from unloading pages a batch lookup will revisit.
pub struct HandleCache {
    pool: BufferPool,
    map: HashMap<PageKey, PageGuard>,
}

impl HandleCache {
    /// Creates an empty cache over `pool`.
    pub fn new(pool: BufferPool) -> Self {
        HandleCache { pool, map: HashMap::new() }
    }

    /// Pins `key`, reusing a cached handle when present.
    pub fn pin(&mut self, key: PageKey) -> CoreResult<PageGuard> {
        if let Some(g) = self.map.get(&key) {
            g.touch();
            return Ok(g.clone());
        }
        let g = self.pool.pin(key).map_err(CoreError::Storage)?;
        self.map.insert(key, g.clone());
        Ok(g)
    }

    /// Number of cached handles.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no handles are cached.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Releases all cached handles.
    pub fn clear(&mut self) {
        self.map.clear();
    }
}

/// The transient structure registered to a dictionary page on load: the
/// block-offset vector plus the page's first index.
struct PageTransient {
    first_idx: u64,
    offsets: Vec<u32>,
}

impl PageTransient {
    fn parse(bytes: &[u8]) -> Result<(PageTransient, usize), StorageError> {
        if bytes.len() < 12 {
            return Err(StorageError::corrupt("dictionary page shorter than header"));
        }
        let first_idx = crate::util::le_u64(&bytes[0..8]);
        let nblocks = crate::util::le_u32(&bytes[8..12]) as usize;
        let need = 12 + nblocks * 4;
        if nblocks == 0 || bytes.len() < need {
            return Err(StorageError::corrupt(format!(
                "dictionary page header claims {nblocks} blocks but page has {} bytes",
                bytes.len()
            )));
        }
        let mut offsets = Vec::with_capacity(nblocks);
        for i in 0..nblocks {
            let off = crate::util::le_u32(&bytes[12 + i * 4..16 + i * 4]);
            if (off as usize) < need || off as usize >= bytes.len() {
                return Err(StorageError::corrupt(format!("block offset {off} out of page")));
            }
            offsets.push(off);
        }
        let heap = offsets.capacity() * 4;
        Ok((PageTransient { first_idx, offsets }, heap))
    }
}

struct Meta {
    cardinality: u64,
    dict_chain: ChainRef,
    overflow_chain: ChainRef,
    vid_helper_chain: ChainRef,
    value_helper_chain: ChainRef,
    /// Last vid of each *vid-helper page* (one entry per helper page).
    vid_helper_page_last: Vec<u64>,
    /// Last separator of each *value-helper page*.
    value_helper_page_last: Vec<Vec<u8>>,
    /// Dictionary pages (also the number of separators / helper entries).
    dict_pages: u64,
    /// The symbol table when the dictionary chain is FSST-compressed.
    fsst: Option<Arc<SymbolTable>>,
}

/// Build statistics reported by [`PagedDictionary::build`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagedDictBuildStats {
    /// Pages in the dictionary chain.
    pub dict_pages: u64,
    /// Pages in the overflow chain.
    pub overflow_pages: u64,
    /// Pages in the `ipDict_ValueId` helper chain.
    pub vid_helper_pages: u64,
    /// Pages in the `ipDict_Value` helper chain.
    pub value_helper_pages: u64,
}

/// The page-loadable, order-preserving dictionary.
pub struct PagedDictionary {
    pool: BufferPool,
    meta: Arc<Meta>,
    helpers_preloaded: AtomicBool,
    /// Guards held when the helper chains are pinned permanently
    /// (§6.2.2's "more effective to have these auxiliary dictionaries
    /// always loaded in memory").
    pinned_helpers: crate::sync::Mutex<Vec<PageGuard>>,
}

impl PagedDictionary {
    /// Persists `keys` (sorted, strictly increasing) as a paged dictionary
    /// and returns the reader plus build statistics.
    pub fn build(
        pool: &BufferPool,
        config: &PageConfig,
        keys: &[Vec<u8>],
    ) -> CoreResult<(Self, PagedDictBuildStats)> {
        debug_assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "dictionary keys must be strictly increasing"
        );
        let store = Arc::clone(pool.store());
        let mut scratch = crate::scratch::ChainScratch::new(pool);
        let overflow_chain = scratch.create_chain(config.overflow_page)?;
        let dict_chain = scratch.create_chain(config.dict_page)?;

        // Compressed-domain dictionary chain: train a symbol table on a key
        // sample and keep it only when it actually pays (the helper chains
        // always stay raw so routing comparisons never decode).
        let (fsst, fsst_per_mille) =
            if config.dict_fsst { train_dict_fsst(keys) } else { (None, 1000) };

        // Off-page allocator: splits a byte tail into overflow-page-sized
        // pieces, one page each. Errors escape via the side channel because
        // the block builder's allocator signature is infallible.
        let overflow_err: std::cell::RefCell<Option<StorageError>> = std::cell::RefCell::new(None);
        let overflow_pages = std::cell::Cell::new(0u64);
        let mut alloc_overflow = |bytes: &[u8]| -> Vec<OverflowRef> {
            let mut refs = Vec::new();
            for piece in bytes.chunks(config.overflow_page) {
                match store.append_page(overflow_chain, piece) {
                    Ok(page_no) => {
                        overflow_pages.set(overflow_pages.get() + 1);
                        refs.push(OverflowRef { page_no, len: piece.len() as u32 });
                    }
                    Err(e) => {
                        *overflow_err.borrow_mut() = Some(e);
                        return refs;
                    }
                }
            }
            refs
        };

        // Assemble dictionary pages block by block.
        let mut page_writer = PageAssembler::new(config.dict_page);
        let mut separators: Vec<Vec<u8>> = Vec::new();
        let mut page_last_vids: Vec<u64> = Vec::new();
        let mut dict_pages = 0u64;
        let block_budget = config.dict_page - PAGE_HEADER - 4;
        let mut enc = Vec::new();
        for group in keys.chunks(BLOCK_CAP) {
            let mut b = ValueBlockBuilder::new();
            for k in group {
                match &fsst {
                    Some(table) => {
                        enc.clear();
                        table.encode_into(k, &mut enc);
                        let inline = choose_inline(&b, &enc, block_budget, config)?;
                        // Compressed bytes are not memcmp-ordered, so skip
                        // the builder's order assertion; slot order still
                        // follows the raw key order.
                        b.push_unordered(&enc, inline, &mut alloc_overflow);
                    }
                    None => {
                        let inline = choose_inline(&b, k, block_budget, config)?;
                        b.push(k, inline, &mut alloc_overflow);
                    }
                }
                if let Some(e) = overflow_err.borrow_mut().take() {
                    return Err(CoreError::Storage(e));
                }
            }
            let block = b.finish();
            if let Some(full_page) = page_writer.push_block(&block)? {
                let (bytes, first_idx, count) = full_page;
                store.append_page(dict_chain, &bytes)?;
                dict_pages += 1;
                page_last_vids.push(first_idx + count - 1);
                separators.push(keys[(first_idx + count - 1) as usize].clone());
            }
        }
        if let Some((bytes, first_idx, count)) = page_writer.flush()? {
            store.append_page(dict_chain, &bytes)?;
            dict_pages += 1;
            page_last_vids.push(first_idx + count - 1);
            separators.push(keys[(first_idx + count - 1) as usize].clone());
        }

        // ipDict_ValueId: plain little-endian u64 arrays.
        let vid_helper_chain = scratch.create_chain(config.helper_page)?;
        let epp = config.helper_page / 8;
        let mut vid_helper_page_last = Vec::new();
        let mut vid_helper_pages = 0u64;
        for page_vids in page_last_vids.chunks(epp.max(1)) {
            // `chunks` never yields an empty slice, but make that local.
            let Some(&last) = page_vids.last() else { continue };
            let mut bytes = Vec::with_capacity(page_vids.len() * 8);
            for &v in page_vids {
                bytes.extend_from_slice(&v.to_le_bytes());
            }
            store.append_page(vid_helper_chain, &bytes)?;
            vid_helper_pages += 1;
            vid_helper_page_last.push(last);
        }

        // ipDict_Value: separator blocks, same page format as the dictionary.
        let value_helper_chain = scratch.create_chain(config.helper_page)?;
        let mut sep_writer = PageAssembler::new(config.helper_page);
        let mut value_helper_page_last: Vec<Vec<u8>> = Vec::new();
        let mut value_helper_pages = 0u64;
        let sep_block_budget = config.helper_page - PAGE_HEADER - 4;
        for group in separators.chunks(BLOCK_CAP) {
            let mut b = ValueBlockBuilder::new();
            for s in group {
                let inline = choose_inline(&b, s, sep_block_budget, config)?;
                b.push(s, inline, &mut alloc_overflow);
                if let Some(e) = overflow_err.borrow_mut().take() {
                    return Err(CoreError::Storage(e));
                }
            }
            let block = b.finish();
            if let Some((bytes, first_idx, count)) = sep_writer.push_block(&block)? {
                store.append_page(value_helper_chain, &bytes)?;
                value_helper_pages += 1;
                value_helper_page_last.push(separators[(first_idx + count - 1) as usize].clone());
            }
        }
        if let Some((bytes, first_idx, count)) = sep_writer.flush()? {
            store.append_page(value_helper_chain, &bytes)?;
            value_helper_pages += 1;
            value_helper_page_last.push(separators[(first_idx + count - 1) as usize].clone());
        }

        // Stamp the dictionary chain with its codec so format-2 chain files
        // are self-describing, and publish per-codec build-size metrics.
        let codec = match &fsst {
            Some(table) => ChainCodec { kind: CodecKind::Fsst, params: table.serialize() },
            None => ChainCodec::plain(),
        };
        store.set_chain_descriptor(dict_chain, &codec.serialize())?;
        let registry = pool.registry();
        let label = pool.metrics_label();
        registry
            .counter_labeled(names::POOL_PAGE_BYTES, &[("pool", label), ("codec", codec.kind.label())])
            .add(dict_pages * config.dict_page as u64
                + overflow_pages.get() * config.overflow_page as u64);
        registry
            .counter_labeled(
                names::POOL_PAGE_BYTES,
                &[("pool", label), ("codec", CodecKind::Plain.label())],
            )
            .add((vid_helper_pages + value_helper_pages) * config.helper_page as u64);
        if config.dict_fsst {
            registry
                .gauge_labeled(names::DICT_FSST_RATIO, &[("pool", label)])
                .set(fsst_per_mille);
        }

        let meta = Meta {
            cardinality: keys.len() as u64,
            dict_chain: ChainRef { chain: dict_chain, pages: dict_pages, page_size: config.dict_page },
            overflow_chain: ChainRef {
                chain: overflow_chain,
                pages: overflow_pages.get(),
                page_size: config.overflow_page,
            },
            vid_helper_chain: ChainRef {
                chain: vid_helper_chain,
                pages: vid_helper_pages,
                page_size: config.helper_page,
            },
            value_helper_chain: ChainRef {
                chain: value_helper_chain,
                pages: value_helper_pages,
                page_size: config.helper_page,
            },
            vid_helper_page_last,
            value_helper_page_last,
            dict_pages,
            fsst,
        };
        let stats = PagedDictBuildStats {
            dict_pages,
            overflow_pages: overflow_pages.get(),
            vid_helper_pages,
            value_helper_pages,
        };
        scratch.commit();
        Ok((
            PagedDictionary {
                pool: pool.clone(),
                meta: Arc::new(meta),
                helpers_preloaded: AtomicBool::new(false),
                pinned_helpers: crate::sync::Mutex::with_rank(Vec::new(), crate::sync::LockRank::CoreColumn),
            },
            stats,
        ))
    }

    /// Serializes the dictionary's metadata for a catalog checkpoint: the
    /// chain references plus the always-resident helper residue.
    pub fn meta_bytes(&self) -> Vec<u8> {
        let m = &self.meta;
        let mut w = crate::meta::MetaWriter::new();
        w.u64(m.cardinality);
        crate::meta::write_chain(&mut w, &m.dict_chain);
        crate::meta::write_chain(&mut w, &m.overflow_chain);
        crate::meta::write_chain(&mut w, &m.vid_helper_chain);
        crate::meta::write_chain(&mut w, &m.value_helper_chain);
        w.u64s(&m.vid_helper_page_last);
        w.u64(m.value_helper_page_last.len() as u64);
        for k in &m.value_helper_page_last {
            w.bytes(k);
        }
        w.u64(m.dict_pages);
        match &m.fsst {
            Some(table) => w.bytes(&table.serialize()),
            None => w.bytes(&[]),
        }
        w.finish()
    }

    /// Reopens a dictionary from checkpointed metadata over `pool`'s store.
    pub fn open(pool: &BufferPool, bytes: &[u8]) -> CoreResult<Self> {
        let mut r = crate::meta::MetaReader::new(bytes);
        let cardinality = r.u64()?;
        let dict_chain = crate::meta::read_chain(&mut r)?;
        let overflow_chain = crate::meta::read_chain(&mut r)?;
        let vid_helper_chain = crate::meta::read_chain(&mut r)?;
        let value_helper_chain = crate::meta::read_chain(&mut r)?;
        let vid_helper_page_last = r.u64s()?;
        let n = r.read_len()?;
        let mut value_helper_page_last = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            value_helper_page_last.push(r.bytes()?);
        }
        let dict_pages = r.u64()?;
        let fsst_bytes = r.bytes()?;
        let fsst = if fsst_bytes.is_empty() {
            None
        } else {
            Some(Arc::new(SymbolTable::deserialize(&fsst_bytes)?))
        };
        r.expect_end()?;
        Ok(PagedDictionary {
            pool: pool.clone(),
            meta: Arc::new(Meta {
                cardinality,
                dict_chain,
                overflow_chain,
                vid_helper_chain,
                value_helper_chain,
                vid_helper_page_last,
                value_helper_page_last,
                dict_pages,
                fsst,
            }),
            helpers_preloaded: AtomicBool::new(false),
            pinned_helpers: crate::sync::Mutex::with_rank(Vec::new(), crate::sync::LockRank::CoreColumn),
        })
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> u64 {
        self.meta.cardinality
    }

    /// The store chain ids backing this dictionary, labeled by role — for
    /// attributing traced page events back to the structure that owns them.
    pub fn chains(&self) -> [(&'static str, u64); 4] {
        [
            ("dict", self.meta.dict_chain.chain.0),
            ("dict-overflow", self.meta.overflow_chain.chain.0),
            ("dict-vid-helper", self.meta.vid_helper_chain.chain.0),
            ("dict-value-helper", self.meta.value_helper_chain.chain.0),
        ]
    }

    /// The codec the dictionary chain's value blocks are stored in.
    pub fn codec_kind(&self) -> CodecKind {
        if self.meta.fsst.is_some() {
            CodecKind::Fsst
        } else {
            CodecKind::Plain
        }
    }

    /// Heap bytes of the always-resident metadata (the in-memory residue of
    /// the hybrid representation).
    pub fn meta_heap_bytes(&self) -> usize {
        self.meta.vid_helper_page_last.len() * 8
            + self
                .meta
                .value_helper_page_last
                .iter()
                .map(|k| k.capacity() + std::mem::size_of::<Vec<u8>>())
                .sum::<usize>()
    }

    /// Creates a lookup iterator with its own page-handle cache.
    pub fn iter(&self) -> PagedDictIterator<'_> {
        PagedDictIterator { dict: self, cache: HandleCache::new(self.pool.clone()) }
    }

    /// `findByValueID` (Alg. 3): materializes the key encoded by `vid`.
    pub fn key_by_vid(&self, vid: u64, cache: &mut HandleCache) -> CoreResult<Vec<u8>> {
        if vid >= self.meta.cardinality {
            return Err(CoreError::VidOutOfBounds { vid, cardinality: self.meta.cardinality });
        }
        self.preload_helpers(cache)?;
        let dict_page = self.dict_page_for_vid(vid, cache)?;
        let guard = cache.pin(PageKey::new(self.meta.dict_chain.chain, dict_page))?;
        let t = page_transient(&guard)?;
        if vid < t.first_idx {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "vid {vid} routed to dictionary page {dict_page} starting at {}",
                t.first_idx
            ))));
        }
        let idx = (vid - t.first_idx) as usize;
        let (block_no, slot) = (idx / BLOCK_CAP, idx % BLOCK_CAP);
        if block_no >= t.offsets.len() {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "vid {vid} maps to block {block_no} of {} on page {dict_page}",
                t.offsets.len()
            ))));
        }
        let block = parse_block_view(&guard, t.offsets[block_no])?;
        if slot >= block.len() {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "vid {vid} maps to slot {slot} of a {}-entry block",
                block.len()
            ))));
        }
        let raw = self.with_overflow_fetch(cache, |fetch| block.materialize(slot, fetch))?;
        match &self.meta.fsst {
            Some(table) => Ok(table.decode(&raw)?),
            None => Ok(raw),
        }
    }

    /// `findByValue` (Alg. 2): finds the vid encoding `key`, or the
    /// insertion point on a miss.
    pub fn find(&self, key: &[u8], cache: &mut HandleCache) -> CoreResult<DictLookup> {
        if self.meta.cardinality == 0 {
            return Ok(Err(0));
        }
        self.preload_helpers(cache)?;
        // Route to the value-helper page: first page whose last separator is
        // >= key (the in-memory residue has one entry per helper page).
        let hp = self
            .meta
            .value_helper_page_last
            .partition_point(|last| last.as_slice() < key);
        if hp == self.meta.value_helper_page_last.len() {
            // Greater than every separator, hence every dictionary value.
            return Ok(Err(self.meta.cardinality));
        }
        // Find the first separator >= key on that helper page; the
        // separator's global index *is* the dictionary page number.
        let guard = cache.pin(PageKey::new(self.meta.value_helper_chain.chain, hp as u64))?;
        let t = page_transient(&guard)?;
        // Helper separators are always raw, so this search is codec-blind.
        let (block_no, pos) = self.lower_bound_on_page(&guard, &t, key, None, cache)?;
        let dict_page = match pos {
            Ok(i) | Err(i) => t.first_idx + (block_no * BLOCK_CAP + i) as u64,
        };
        debug_assert!(dict_page < self.meta.dict_pages);
        // Search the single dictionary page — in the compressed domain when
        // the chain carries FSST blocks (equality on compressed bytes,
        // ordering via decoded prefixes).
        let enc_key = self.meta.fsst.as_ref().map(|table| table.encode(key));
        let guard = cache.pin(PageKey::new(self.meta.dict_chain.chain, dict_page))?;
        let t = page_transient(&guard)?;
        let (block_no, pos) =
            self.lower_bound_on_page(&guard, &t, key, enc_key.as_deref(), cache)?;
        let global = |i: usize| t.first_idx + (block_no * BLOCK_CAP + i) as u64;
        Ok(match pos {
            Ok(i) => Ok(global(i)),
            Err(i) => Err(global(i)),
        })
    }

    /// Translates a value range (inclusive byte-key bounds) to the matching
    /// vid range `lo..=hi`, or `None` when empty. Order preservation makes
    /// this exactly two lookups.
    pub fn vid_range(
        &self,
        lo_key: &[u8],
        hi_key: &[u8],
        cache: &mut HandleCache,
    ) -> CoreResult<Option<(u64, u64)>> {
        let lo = match self.find(lo_key, cache)? {
            Ok(v) | Err(v) => v,
        };
        let hi = match self.find(hi_key, cache)? {
            Ok(v) => v + 1,
            Err(v) => v,
        };
        Ok(if lo < hi { Some((lo, hi - 1)) } else { None })
    }

    /// Reads the whole dictionary directly from the store — no buffer pool,
    /// no paged resources — and materializes every key. This is the
    /// full-column-load path of default (fully resident) columns.
    pub fn materialize_all_direct(&self) -> CoreResult<Vec<Vec<u8>>> {
        let store = self.pool.store();
        let mut keys = Vec::with_capacity(self.meta.cardinality as usize);
        let overflow = self.meta.overflow_chain.chain;
        for p in 0..self.meta.dict_pages {
            let page = store.read_page(PageKey::new(self.meta.dict_chain.chain, p))?;
            let (t, _) = PageTransient::parse(&page)?;
            for &off in &t.offsets {
                let (block, _) = ValueBlock::parse(&page[off as usize..])?;
                for i in 0..block.len() {
                    let mut io_err: Option<StorageError> = None;
                    let mut fetch = |r: &OverflowRef| -> payg_encoding::Result<Vec<u8>> {
                        match store.read_page(PageKey::new(overflow, r.page_no)) {
                            Ok(bytes) => Ok(bytes[..r.len as usize].to_vec()),
                            Err(e) => {
                                io_err = Some(e);
                                Err(EncodingError::CorruptBlock {
                                    reason: "i/o fetching overflow piece".into(),
                                })
                            }
                        }
                    };
                    match block.materialize(i, &mut fetch) {
                        Ok(k) => keys.push(match &self.meta.fsst {
                            Some(table) => table.decode(&k)?,
                            None => k,
                        }),
                        Err(e) => {
                            return Err(io_err
                                .take()
                                .map(CoreError::Storage)
                                .unwrap_or(CoreError::Encoding(e)))
                        }
                    }
                }
            }
        }
        if keys.len() as u64 != self.meta.cardinality {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "dictionary chain materialized {} keys, expected {}",
                keys.len(),
                self.meta.cardinality
            ))));
        }
        Ok(keys)
    }

    /// Finds the block and in-block position of the first entry `>= key` on
    /// a page: binary search over blocks by their first entry, then a block
    /// search. Returns `(block_no, Ok(slot))` on an exact hit and
    /// `(block_no, Err(slot))` for the insertion point. When `enc_key` is
    /// given the page's blocks hold FSST-compressed entries and both phases
    /// use the compressed-domain probes.
    fn lower_bound_on_page(
        &self,
        page: &PageGuard,
        t: &PageTransient,
        key: &[u8],
        enc_key: Option<&[u8]>,
        cache: &mut HandleCache,
    ) -> CoreResult<(usize, Result<usize, usize>)> {
        let table = self.meta.fsst.as_deref();
        // Rightmost block whose first entry is <= key.
        let mut lo = 0usize;
        let mut hi = t.offsets.len(); // exclusive
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            let block = parse_block_view(page, t.offsets[mid])?;
            let cmp = match (enc_key, table) {
                (Some(_), Some(table)) => self.with_overflow_fetch(cache, |fetch| {
                    block.compare_first_compressed(key, table, fetch)
                })?,
                _ => self.with_overflow_fetch(cache, |fetch| block.compare_first(key, fetch))?,
            };
            if cmp == std::cmp::Ordering::Greater {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let block = parse_block_view(page, t.offsets[lo])?;
        let pos = match (enc_key, table) {
            (Some(ek), Some(table)) => self.with_overflow_fetch(cache, |fetch| {
                block.find_compressed(key, ek, table, fetch)
            })?,
            _ => self.with_overflow_fetch(cache, |fetch| block.find(key, fetch))?,
        };
        match pos {
            Err(i) if i == block.len() && lo + 1 < t.offsets.len() => {
                // Key falls past this block: insertion is the next block's
                // first slot.
                Ok((lo + 1, Err(0)))
            }
            other => Ok((lo, other)),
        }
    }

    /// Routes a vid to its dictionary page through the paged
    /// `ipDict_ValueId` helper.
    fn dict_page_for_vid(&self, vid: u64, cache: &mut HandleCache) -> CoreResult<u64> {
        let hp = self.meta.vid_helper_page_last.partition_point(|&last| last < vid);
        debug_assert!(hp < self.meta.vid_helper_page_last.len(), "vid bounds checked by caller");
        let guard = cache.pin(PageKey::new(self.meta.vid_helper_chain.chain, hp as u64))?;
        let epp = self.meta.vid_helper_chain.page_size / 8;
        let start = hp * epp;
        let count = (self.meta.dict_pages as usize - start).min(epp);
        // Binary search the little-endian u64 array for the first last-vid
        // >= vid.
        let read = |i: usize| -> u64 { crate::util::le_u64(&guard[i * 8..i * 8 + 8]) };
        let mut lo = 0usize;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if read(mid) < vid {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        debug_assert!(lo < count, "vid {vid} beyond the last dictionary page");
        Ok((start + lo) as u64)
    }

    /// Pins every page of both helper chains for the dictionary's lifetime
    /// — the "always loaded" helper-dictionary variant the paper's §6.2.2
    /// recommends after observing the Fig. 6 burst. Pinned pages are immune
    /// to eviction until [`PagedDictionary::unpin_helpers`] (or drop).
    pub fn pin_helpers(&self) -> CoreResult<()> {
        let mut pins = self.pinned_helpers.lock();
        if !pins.is_empty() {
            return Ok(());
        }
        for chain in [&self.meta.vid_helper_chain, &self.meta.value_helper_chain] {
            for p in 0..chain.pages {
                pins.push(self.pool.pin(PageKey::new(chain.chain, p)).map_err(CoreError::Storage)?);
            }
        }
        self.helpers_preloaded.store(true, Ordering::Relaxed);
        Ok(())
    }

    /// Releases the permanent helper pins (pages become evictable again).
    pub fn unpin_helpers(&self) {
        self.pinned_helpers.lock().clear();
    }

    /// True when the helper chains are permanently pinned.
    pub fn helpers_pinned(&self) -> bool {
        !self.pinned_helpers.lock().is_empty()
    }

    /// Pre-loads both helper chains on the first access (§3.2.3). The pages
    /// become pool-resident (and individually evictable later); guards are
    /// not retained.
    fn preload_helpers(&self, cache: &mut HandleCache) -> CoreResult<()> {
        if self.helpers_preloaded.swap(true, Ordering::Relaxed) {
            return Ok(());
        }
        for p in 0..self.meta.vid_helper_chain.pages {
            cache.pin(PageKey::new(self.meta.vid_helper_chain.chain, p))?;
        }
        for p in 0..self.meta.value_helper_chain.pages {
            cache.pin(PageKey::new(self.meta.value_helper_chain.chain, p))?;
        }
        Ok(())
    }

    /// Runs `f` with an overflow-piece fetcher that pins pages through the
    /// handle cache, translating I/O failures out of the encoding layer.
    fn with_overflow_fetch<T>(
        &self,
        cache: &mut HandleCache,
        f: impl FnOnce(
            &mut dyn FnMut(&OverflowRef) -> payg_encoding::Result<Vec<u8>>,
        ) -> payg_encoding::Result<T>,
    ) -> CoreResult<T> {
        let chain = self.meta.overflow_chain.chain;
        let mut io_err: Option<CoreError> = None;
        let mut fetch = |r: &OverflowRef| -> payg_encoding::Result<Vec<u8>> {
            match cache.pin(PageKey::new(chain, r.page_no)) {
                Ok(g) => Ok(g[..r.len as usize].to_vec()),
                Err(e) => {
                    io_err = Some(e);
                    Err(EncodingError::CorruptBlock { reason: "i/o fetching overflow piece".into() })
                }
            }
        };
        match f(&mut fetch) {
            Ok(v) => Ok(v),
            Err(e) => Err(io_err.take().unwrap_or(CoreError::Encoding(e))),
        }
    }
}

/// A lookup iterator owning a handle cache (the paper's paged dictionary
/// iterator): batch lookups reuse pinned pages for the iterator's lifetime.
pub struct PagedDictIterator<'a> {
    dict: &'a PagedDictionary,
    cache: HandleCache,
}

impl PagedDictIterator<'_> {
    /// `findByValue`.
    pub fn find(&mut self, key: &[u8]) -> CoreResult<DictLookup> {
        self.dict.find(key, &mut self.cache)
    }

    /// `findByValueID`.
    pub fn key_by_vid(&mut self, vid: u64) -> CoreResult<Vec<u8>> {
        self.dict.key_by_vid(vid, &mut self.cache)
    }

    /// Number of pages currently pinned by this iterator.
    pub fn pinned_pages(&self) -> usize {
        self.cache.len()
    }
}

fn page_transient(guard: &PageGuard) -> CoreResult<Arc<PageTransient>> {
    guard
        .transient_or_build(|bytes| {
            let (t, heap) = PageTransient::parse(bytes)?;
            Ok((t, heap))
        })
        .map_err(CoreError::Storage)
}

fn parse_block_view<'a>(page: &'a PageGuard, offset: u32) -> CoreResult<ValueBlockView<'a>> {
    Ok(ValueBlockView::parse(&page[offset as usize..])?)
}

/// Trains an FSST symbol table on a sample of the (sorted) dictionary keys
/// and keeps it only when the sampled compression ratio clears
/// [`crate::config::FSST_SKIP_RATIO`]. Returns the table (when kept) and the
/// sampled ratio in per-mille, where 1000 means "evaluated but not applied".
fn train_dict_fsst(keys: &[Vec<u8>]) -> (Option<Arc<SymbolTable>>, u64) {
    if keys.is_empty() {
        return (None, 1000);
    }
    // Up to ~1024 keys spread evenly over the sorted order, so the sample
    // sees every key region rather than one lexicographic neighborhood.
    let step = (keys.len() / 1024).max(1);
    let sample: Vec<&[u8]> = keys.iter().step_by(step).map(|k| k.as_slice()).collect();
    let table = SymbolTable::train(&sample);
    let ratio = table.compression_ratio(&sample);
    if ratio < crate::config::FSST_SKIP_RATIO {
        let per_mille = (ratio * 1000.0).round().clamp(0.0, 1000.0) as u64;
        (Some(Arc::new(table)), per_mille)
    } else {
        (None, 1000)
    }
}

/// Picks the on-page inline budget for the next key of a block so that the
/// full 16-entry block is guaranteed to fit one page: the remaining block
/// budget bounds the entry, spilling more bytes off-page when needed. Only
/// impossible configurations (a page too small for even a fully spilled
/// entry) are rejected.
fn choose_inline(
    b: &ValueBlockBuilder,
    key: &[u8],
    block_budget: usize,
    config: &PageConfig,
) -> CoreResult<usize> {
    const FIXED: usize = 7; // prefix_len + onpage_len + flags
    const SPILL_FIXED: usize = 10; // nptr + total_len
    const PTR: usize = 12;
    const MIN_SPILLED: usize = 7 + 10 + 12; // inline-0, one-pointer entry
    let suffix_len = b.next_suffix_len(key);
    // Bytes already committed, including any restart-header growth this
    // entry triggers (projected = committed + FIXED + suffix).
    let committed = b.projected_len(key) - FIXED - suffix_len;
    // Reserve one minimal spilled entry (plus a possible restart-offset
    // slot) for every remaining block slot, so a large value early in the
    // block can never starve the later ones.
    let slots_after = BLOCK_CAP - 1 - b.len();
    let remaining = block_budget
        .saturating_sub(committed)
        .saturating_sub(slots_after * (MIN_SPILLED + 2));
    // Fully inline when the configured limit allows it and it fits.
    if suffix_len <= config.inline_limit && FIXED + suffix_len <= remaining {
        return Ok(suffix_len.max(1));
    }
    // Spill: entry costs FIXED + inline + SPILL_FIXED + PTR * nptr.
    let mut inline = config
        .inline_limit
        .min(suffix_len.saturating_sub(1))
        .min(remaining.saturating_sub(FIXED + SPILL_FIXED + PTR));
    loop {
        let tail = suffix_len - inline;
        let nptr = tail.div_ceil(config.overflow_page).max(1);
        let need = FIXED + inline + SPILL_FIXED + PTR * nptr;
        if need <= remaining {
            return Ok(inline);
        }
        let over = need - remaining;
        if inline >= over {
            inline -= over;
        } else {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "dictionary page of {} bytes cannot hold a 16-entry block: a {}-byte value \
                 needs {nptr} overflow pointers with {}-byte overflow pages; raise dict_page \
                 or overflow_page",
                config.dict_page,
                key.len(),
                config.overflow_page
            ))));
        }
    }
}

/// Assembles dictionary-format pages from finished blocks.
struct PageAssembler {
    page_size: usize,
    blocks: Vec<Vec<u8>>,
    bytes_used: usize,
    first_idx: u64,
    entries: u64,
    next_idx: u64,
}

const PAGE_HEADER: usize = 12; // first_idx u64 + nblocks u32

impl PageAssembler {
    fn new(page_size: usize) -> Self {
        PageAssembler {
            page_size,
            blocks: Vec::new(),
            bytes_used: PAGE_HEADER,
            first_idx: 0,
            entries: 0,
            next_idx: 0,
        }
    }

    /// Adds a block; returns a completed page `(bytes, first_idx, count)`
    /// when the block did not fit the current page.
    fn push_block(&mut self, block: &[u8]) -> CoreResult<Option<(Vec<u8>, u64, u64)>> {
        let entries = ValueBlockView::parse(block)?.len() as u64;
        let extra = 4 + block.len(); // offset slot + payload
        let mut flushed = None;
        if !self.blocks.is_empty() && self.bytes_used + extra > self.page_size {
            flushed = Some(self.assemble());
        }
        if PAGE_HEADER + extra > self.page_size {
            return Err(CoreError::Storage(StorageError::corrupt(format!(
                "value block of {} bytes exceeds page size {}",
                block.len(),
                self.page_size
            ))));
        }
        if self.blocks.is_empty() {
            self.first_idx = self.next_idx;
            self.bytes_used = PAGE_HEADER;
            self.entries = 0;
        }
        self.blocks.push(block.to_vec());
        self.bytes_used += extra;
        self.entries += entries;
        self.next_idx += entries;
        Ok(flushed)
    }

    /// Flushes the trailing partial page, if any.
    fn flush(&mut self) -> CoreResult<Option<(Vec<u8>, u64, u64)>> {
        if self.blocks.is_empty() {
            return Ok(None);
        }
        Ok(Some(self.assemble()))
    }

    fn assemble(&mut self) -> (Vec<u8>, u64, u64) {
        let nblocks = self.blocks.len();
        let mut page = Vec::with_capacity(self.bytes_used);
        page.extend_from_slice(&self.first_idx.to_le_bytes());
        page.extend_from_slice(&(nblocks as u32).to_le_bytes());
        let mut off = (PAGE_HEADER + nblocks * 4) as u32;
        for b in &self.blocks {
            page.extend_from_slice(&off.to_le_bytes());
            off += b.len() as u32;
        }
        for b in &self.blocks {
            page.extend_from_slice(b);
        }
        let result = (page, self.first_idx, self.entries);
        self.blocks.clear();
        self.bytes_used = PAGE_HEADER;
        self.entries = 0;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use payg_resman::ResourceManager;
    use payg_storage::MemStore;

    fn pool() -> BufferPool {
        BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
    }

    fn keys(n: usize) -> Vec<Vec<u8>> {
        (0..n).map(|i| format!("customer-{i:06}").into_bytes()).collect()
    }

    fn build(keys: &[Vec<u8>], config: &PageConfig) -> (BufferPool, PagedDictionary, PagedDictBuildStats) {
        let pool = pool();
        let (d, s) = PagedDictionary::build(&pool, config, keys).unwrap();
        (pool, d, s)
    }

    #[test]
    fn roundtrip_small_pages_many_chains() {
        let ks = keys(500);
        let (_pool, dict, stats) = build(&ks, &PageConfig::tiny());
        assert!(stats.dict_pages > 3, "tiny pages must force a multi-page chain");
        assert!(stats.vid_helper_pages >= 1);
        assert!(stats.value_helper_pages >= 1);
        let mut it = dict.iter();
        for (vid, k) in ks.iter().enumerate() {
            assert_eq!(it.find(k).unwrap(), Ok(vid as u64), "find {vid}");
            assert_eq!(&it.key_by_vid(vid as u64).unwrap(), k, "key_by_vid {vid}");
        }
    }

    #[test]
    fn misses_report_insertion_points() {
        let ks = keys(100);
        let (_pool, dict, _) = build(&ks, &PageConfig::tiny());
        let mut it = dict.iter();
        assert_eq!(it.find(b"customer-000050x").unwrap(), Err(51));
        assert_eq!(it.find(b"aaa").unwrap(), Err(0));
        assert_eq!(it.find(b"zzz").unwrap(), Err(100));
        // Between two keys.
        assert_eq!(it.find(b"customer-000000a").unwrap(), Err(1));
    }

    #[test]
    fn vid_range_translation() {
        let ks = keys(100);
        let (_pool, dict, _) = build(&ks, &PageConfig::tiny());
        let mut cache = HandleCache::new(_pool.clone());
        // Exact bounds.
        assert_eq!(
            dict.vid_range(b"customer-000010", b"customer-000020", &mut cache).unwrap(),
            Some((10, 20))
        );
        // Non-existent bounds snap inward.
        assert_eq!(
            dict.vid_range(b"customer-000010a", b"customer-000020a", &mut cache).unwrap(),
            Some((11, 20))
        );
        // Empty range.
        assert_eq!(dict.vid_range(b"x", b"y", &mut cache).unwrap(), None);
        assert_eq!(
            dict.vid_range(b"customer-000099x", b"customer-1", &mut cache).unwrap(),
            None
        );
        // Everything.
        assert_eq!(dict.vid_range(b"a", b"z", &mut cache).unwrap(), Some((0, 99)));
    }

    #[test]
    fn large_values_spill_and_materialize() {
        let mut ks: Vec<Vec<u8>> = Vec::new();
        for i in 0..40 {
            if i % 5 == 0 {
                // A value much larger than the tiny 256-byte dict page.
                let mut big = format!("big-{i:04}-").into_bytes();
                big.extend(std::iter::repeat_n(b'x', 700 + i));
                ks.push(big);
            } else {
                ks.push(format!("key-{i:04}").into_bytes());
            }
        }
        ks.sort();
        ks.dedup();
        // Big entries carry off-page pointer lists; a 16-entry block of them
        // needs a roomier page than tiny()'s 256 bytes.
        let mut config = PageConfig::tiny();
        config.dict_page = 2048;
        let (_pool, dict, stats) = build(&ks, &config);
        assert!(stats.overflow_pages > 0, "large values must spill off-page");
        let mut it = dict.iter();
        for (vid, k) in ks.iter().enumerate() {
            assert_eq!(&it.key_by_vid(vid as u64).unwrap(), k);
            assert_eq!(it.find(k).unwrap(), Ok(vid as u64));
        }
    }

    #[test]
    fn lookup_memory_footprint_is_piecewise() {
        let ks = keys(2000);
        let (pool, dict, stats) = build(&ks, &PageConfig::tiny());
        // One lookup loads: helper preload + one dict page (+ overflow).
        let mut it = dict.iter();
        let _ = it.key_by_vid(0).unwrap();
        let resident_after_one = pool.resident_pages() as u64;
        assert!(
            resident_after_one < stats.dict_pages / 2,
            "one lookup must not load most of the chain ({resident_after_one} of {})",
            stats.dict_pages
        );
    }

    #[test]
    fn iterator_handle_cache_reuses_pages() {
        let ks = keys(200);
        let (pool, dict, _) = build(&ks, &PageConfig::tiny());
        let mut it = dict.iter();
        let _ = it.key_by_vid(10).unwrap();
        let loads_before = pool.metrics().loads;
        // Same page again: the handle cache answers without pool traffic.
        let _ = it.key_by_vid(11).unwrap();
        assert_eq!(pool.metrics().loads, loads_before);
        assert!(it.pinned_pages() > 0);
    }

    #[test]
    fn helpers_preload_on_first_access() {
        let ks = keys(1000);
        let (pool, dict, stats) = build(&ks, &PageConfig::tiny());
        assert_eq!(pool.resident_pages(), 0);
        let mut it = dict.iter();
        let _ = it.find(&ks[500]).unwrap();
        let resident = pool.resident_pages() as u64;
        assert!(
            resident >= stats.vid_helper_pages + stats.value_helper_pages,
            "helper chains are preloaded on first access"
        );
    }

    #[test]
    fn empty_dictionary() {
        let (_pool, dict, stats) = build(&[], &PageConfig::tiny());
        assert_eq!(dict.cardinality(), 0);
        assert_eq!(stats.dict_pages, 0);
        let mut it = dict.iter();
        assert_eq!(it.find(b"anything").unwrap(), Err(0));
        assert!(matches!(it.key_by_vid(0), Err(CoreError::VidOutOfBounds { .. })));
    }

    #[test]
    fn single_key_dictionary() {
        let ks = vec![b"only".to_vec()];
        let (_pool, dict, _) = build(&ks, &PageConfig::tiny());
        let mut it = dict.iter();
        assert_eq!(it.find(b"only").unwrap(), Ok(0));
        assert_eq!(it.find(b"a").unwrap(), Err(0));
        assert_eq!(it.find(b"z").unwrap(), Err(1));
        assert_eq!(it.key_by_vid(0).unwrap(), b"only");
    }

    #[test]
    fn pinned_helpers_survive_eviction_and_speed_up_lookups() {
        let ks = keys(800);
        let pool = pool();
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits(Some(payg_resman::PoolLimits::new(0, usize::MAX)));
        let (dict, stats) = PagedDictionary::build(&pool, &PageConfig::tiny(), &ks).unwrap();
        dict.pin_helpers().unwrap();
        assert!(dict.helpers_pinned());
        // A full reactive unload cannot evict the pinned helper pages.
        resman.reactive_unload();
        assert!(
            pool.resident_pages() as u64 >= stats.vid_helper_pages + stats.value_helper_pages,
            "pinned helper pages survive eviction"
        );
        // Lookups after the purge work and reload only dictionary pages.
        let mut it = dict.iter();
        assert_eq!(it.find(&ks[700]).unwrap(), Ok(700));
        // Unpinning makes them evictable again.
        dict.unpin_helpers();
        drop(it);
        resman.reactive_unload();
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn fsst_matches_plain_and_shrinks_the_chain() {
        let ks = keys(1200);
        let (_p1, compressed, cstats) = build(&ks, &PageConfig::tiny());
        let plain_cfg = PageConfig { dict_fsst: false, ..PageConfig::tiny() };
        let (_p2, plain, pstats) = build(&ks, &plain_cfg);
        assert_eq!(compressed.codec_kind(), CodecKind::Fsst);
        assert_eq!(plain.codec_kind(), CodecKind::Plain);
        assert!(
            cstats.dict_pages < pstats.dict_pages,
            "fsst chain ({} pages) must be smaller than plain ({} pages)",
            cstats.dict_pages,
            pstats.dict_pages
        );
        let mut itc = compressed.iter();
        let mut itp = plain.iter();
        for (vid, k) in ks.iter().enumerate() {
            assert_eq!(itc.find(k).unwrap(), itp.find(k).unwrap(), "find {vid}");
            assert_eq!(itc.find(k).unwrap(), Ok(vid as u64));
            assert_eq!(itc.key_by_vid(vid as u64).unwrap(), *k);
        }
        // Misses agree on insertion points.
        for probe in [&b"customer-000500x"[..], b"aaa", b"zzz", b"customer-"] {
            assert_eq!(itc.find(probe).unwrap(), itp.find(probe).unwrap());
        }
        // Bulk materialization decodes back to the raw keys.
        assert_eq!(compressed.materialize_all_direct().unwrap(), ks);
    }

    #[test]
    fn fsst_descriptor_persisted_and_survives_reopen() {
        let ks = keys(600);
        let (pool, dict, _) = build(&ks, &PageConfig::tiny());
        assert_eq!(dict.codec_kind(), CodecKind::Fsst);
        // The chain file self-describes its codec.
        let desc = pool.store().chain_descriptor(dict.meta.dict_chain.chain).unwrap();
        let codec = ChainCodec::deserialize(&desc).unwrap();
        assert_eq!(codec.kind, CodecKind::Fsst);
        let table = SymbolTable::deserialize(&codec.params).unwrap();
        assert_eq!(table.decode(&table.encode(&ks[7])).unwrap(), ks[7]);
        // Checkpoint metadata round-trips the symbol table.
        let reopened = PagedDictionary::open(&pool, &dict.meta_bytes()).unwrap();
        assert_eq!(reopened.codec_kind(), CodecKind::Fsst);
        let mut it = reopened.iter();
        for vid in (0..600u64).step_by(53) {
            assert_eq!(it.find(&ks[vid as usize]).unwrap(), Ok(vid));
            assert_eq!(it.key_by_vid(vid).unwrap(), ks[vid as usize]);
        }
    }

    #[test]
    fn incompressible_keys_skip_fsst() {
        // High-entropy keys: the sampled ratio misses FSST_SKIP_RATIO, so
        // the chain stays plain even with the knob on.
        let mut ks: Vec<Vec<u8>> = (0..400u64)
            .map(|i| {
                let mut x = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut k = Vec::with_capacity(16);
                for _ in 0..2 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    k.extend_from_slice(&x.to_be_bytes());
                }
                k
            })
            .collect();
        ks.sort();
        ks.dedup();
        let (pool, dict, _) = build(&ks, &PageConfig::tiny());
        assert_eq!(dict.codec_kind(), CodecKind::Plain);
        // The descriptor still resolves, to the plain codec.
        let desc = pool.store().chain_descriptor(dict.meta.dict_chain.chain).unwrap();
        assert_eq!(ChainCodec::deserialize(&desc).unwrap().kind, CodecKind::Plain);
        let mut it = dict.iter();
        for (vid, k) in ks.iter().enumerate() {
            assert_eq!(it.find(k).unwrap(), Ok(vid as u64));
        }
    }

    #[test]
    fn fsst_spilled_values_roundtrip() {
        // Large compressible values spill compressed tails off-page; both
        // lookup directions must reassemble and decode them.
        let mut ks: Vec<Vec<u8>> = Vec::new();
        for i in 0..48 {
            let mut k = format!("order-{i:04}-").into_bytes();
            if i % 4 == 0 {
                for j in 0..260 {
                    k.extend_from_slice(format!("segment{:03}/", (i + j) % 97).as_bytes());
                }
            }
            ks.push(k);
        }
        ks.sort();
        ks.dedup();
        let mut config = PageConfig::tiny();
        config.dict_page = 2048;
        let (_pool, dict, stats) = build(&ks, &config);
        assert_eq!(dict.codec_kind(), CodecKind::Fsst);
        assert!(stats.overflow_pages > 0, "large values must still spill when compressed");
        let mut it = dict.iter();
        for (vid, k) in ks.iter().enumerate() {
            assert_eq!(it.find(k).unwrap(), Ok(vid as u64));
            assert_eq!(&it.key_by_vid(vid as u64).unwrap(), k);
        }
    }

    #[test]
    fn numeric_keys_roundtrip() {
        // Fixed-width order-preserving integer keys exercise short binary keys.
        let ks: Vec<Vec<u8>> =
            (0..300i64).map(|i| payg_encoding::okey::encode_i64(i * 7).to_vec()).collect();
        let (_pool, dict, _) = build(&ks, &PageConfig::tiny());
        let mut it = dict.iter();
        for (vid, k) in ks.iter().enumerate() {
            assert_eq!(it.find(k).unwrap(), Ok(vid as u64));
            assert_eq!(&it.key_by_vid(vid as u64).unwrap(), k);
        }
        assert_eq!(
            it.find(&payg_encoding::okey::encode_i64(8)).unwrap(),
            Err(2),
            "7 < 8 < 14 inserts at vid 2"
        );
    }
}
