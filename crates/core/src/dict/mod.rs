//! Order-preserving dictionaries (paper §3.2).
//!
//! Main-fragment dictionaries are created sorted during delta merge; value
//! identifiers are assigned in key order, so `vid` comparisons are value
//! comparisons. Keys are order-preserving byte strings (see
//! [`crate::value::Value::to_key`]), which lets one layout serve all column
//! types.
//!
//! * [`InMemoryDict`] is the fully-resident baseline: a sorted key vector
//!   with binary search.
//! * [`PagedDictionary`] is the page-loadable form: a chain of dictionary
//!   pages of prefix-encoded value blocks, an overflow chain for large
//!   values, and the two sparse helper dictionaries — `ipDict_ValueId`
//!   (last vid per page) and `ipDict_Value` (last value per page) — that
//!   route a lookup to the single dictionary page it needs.

mod in_memory;
mod paged;

pub use in_memory::InMemoryDict;
pub use paged::{DictLookup, HandleCache, PagedDictBuildStats, PagedDictionary};
