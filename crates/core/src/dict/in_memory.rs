//! The fully-resident dictionary.

/// A sorted, deduplicated, memory-resident dictionary: `vid` → key is an
/// index access, key → `vid` a binary search. This is the baseline the
/// paper's default columns use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InMemoryDict {
    keys: Vec<Vec<u8>>,
}

impl InMemoryDict {
    /// Builds from keys that are already sorted and deduplicated.
    ///
    /// # Panics
    /// Debug-panics when keys are not strictly increasing.
    pub fn from_sorted_keys(keys: Vec<Vec<u8>>) -> Self {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "keys must be strictly increasing");
        InMemoryDict { keys }
    }

    /// Builds from arbitrary keys (sorts and deduplicates).
    pub fn from_keys(mut keys: Vec<Vec<u8>>) -> Self {
        keys.sort();
        keys.dedup();
        InMemoryDict { keys }
    }

    /// Number of distinct values.
    pub fn cardinality(&self) -> u64 {
        self.keys.len() as u64
    }

    /// True when the dictionary holds no values.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// The key encoded by `vid`.
    ///
    /// # Panics
    /// Panics when `vid` is out of bounds.
    pub fn key(&self, vid: u64) -> &[u8] {
        &self.keys[vid as usize]
    }

    /// Finds `key`: `Ok(vid)` on a hit, `Err(insertion_vid)` on a miss
    /// (the number of dictionary keys strictly below `key`).
    pub fn find(&self, key: &[u8]) -> Result<u64, u64> {
        match self.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
            Ok(i) => Ok(i as u64),
            Err(i) => Err(i as u64),
        }
    }

    /// All keys in order.
    pub fn keys(&self) -> impl ExactSizeIterator<Item = &[u8]> {
        self.keys.iter().map(|k| k.as_slice())
    }

    /// Heap footprint in bytes (what the resident column registers with the
    /// resource manager).
    pub fn heap_bytes(&self) -> usize {
        self.keys.len() * std::mem::size_of::<Vec<u8>>()
            + self.keys.iter().map(|k| k.capacity()).sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> InMemoryDict {
        InMemoryDict::from_keys(vec![
            b"delta".to_vec(),
            b"alpha".to_vec(),
            b"echo".to_vec(),
            b"bravo".to_vec(),
            b"alpha".to_vec(), // duplicate
        ])
    }

    #[test]
    fn sorted_and_deduplicated() {
        let d = dict();
        assert_eq!(d.cardinality(), 4);
        let keys: Vec<&[u8]> = d.keys().collect();
        assert_eq!(keys, vec![&b"alpha"[..], b"bravo", b"delta", b"echo"]);
    }

    #[test]
    fn find_hits_and_insertion_points() {
        let d = dict();
        assert_eq!(d.find(b"alpha"), Ok(0));
        assert_eq!(d.find(b"echo"), Ok(3));
        assert_eq!(d.find(b"aaa"), Err(0));
        assert_eq!(d.find(b"charlie"), Err(2));
        assert_eq!(d.find(b"zulu"), Err(4));
    }

    #[test]
    fn vid_key_roundtrip() {
        let d = dict();
        for vid in 0..d.cardinality() {
            assert_eq!(d.find(d.key(vid)), Ok(vid));
        }
    }

    #[test]
    fn empty_dict() {
        let d = InMemoryDict::from_keys(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.find(b"x"), Err(0));
    }
}
