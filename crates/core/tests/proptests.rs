//! Property-based tests: paged structures ≡ resident references on random
//! data, and both column modes ≡ direct evaluation.

use payg_core::column::ColumnRead;
use payg_core::datavec::PagedDataVector;
use payg_core::dict::{HandleCache, PagedDictionary};
use payg_core::invidx::{InMemoryInvertedIndex, PagedInvertedIndex};
use payg_core::{ColumnBuilder, DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use payg_encoding::{BitPackedVec, VidSet};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore};
use proptest::prelude::*;
use std::sync::Arc;

fn pool() -> BufferPool {
    BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The paged dictionary answers exactly like a sorted vector.
    #[test]
    fn paged_dict_equals_sorted_vec(
        mut keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..120),
        probes in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..40), 1..20),
    ) {
        keys.sort();
        keys.dedup();
        let pool = pool();
        let (dict, _) = PagedDictionary::build(&pool, &PageConfig::tiny(), &keys).unwrap();
        let mut cache = HandleCache::new(pool.clone());
        for (vid, k) in keys.iter().enumerate() {
            prop_assert_eq!(&dict.key_by_vid(vid as u64, &mut cache).unwrap(), k);
        }
        for p in &probes {
            let got = dict.find(p, &mut cache).unwrap();
            let expect = keys.binary_search(p).map(|i| i as u64).map_err(|i| i as u64);
            prop_assert_eq!(got, expect);
        }
    }

    /// The paged data vector is indistinguishable from the packed vector.
    #[test]
    fn paged_datavec_equals_packed(
        values in prop::collection::vec(0u64..200, 1..400),
        probe in 0u64..200,
    ) {
        let pool = pool();
        let packed = BitPackedVec::from_values(&values);
        let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
        let mut it = paged.iter();
        for (i, &v) in values.iter().enumerate() {
            prop_assert_eq!(it.get(i as u64).unwrap(), v);
        }
        let mut got = Vec::new();
        it.search(0, values.len() as u64, &VidSet::Single(probe), &mut got).unwrap();
        let expect: Vec<u64> = (0..values.len() as u64)
            .filter(|&i| values[i as usize] == probe)
            .collect();
        prop_assert_eq!(got, expect);
    }

    /// The paged inverted index returns the same postings as the resident
    /// one for every vid.
    #[test]
    fn paged_index_equals_in_memory(
        raw in prop::collection::vec(0u64..30, 1..300),
    ) {
        // Re-map to a dense vid space (main-dictionary invariant).
        let mut distinct: Vec<u64> = raw.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let values: Vec<u64> = raw
            .iter()
            .map(|v| distinct.binary_search(v).unwrap() as u64)
            .collect();
        let card = distinct.len() as u64;
        let pool = pool();
        let paged = PagedInvertedIndex::build(&pool, &PageConfig::tiny(), &values, card).unwrap();
        let reference = InMemoryInvertedIndex::build(&values, card);
        for vid in 0..card {
            prop_assert_eq!(paged.postings(vid).unwrap(), reference.postings(vid).unwrap());
        }
    }

    /// Full column equivalence on random integer data: both load policies
    /// agree with direct evaluation for point reads and predicates.
    #[test]
    fn column_modes_agree(
        ints in prop::collection::vec(-50i64..50, 1..200),
        probe in -50i64..50,
        lo in -50i64..50,
        span in 0i64..40,
        use_index in any::<bool>(),
    ) {
        let values: Vec<Value> = ints.iter().map(|&i| Value::Integer(i)).collect();
        let pool = pool();
        let resident = ColumnBuilder::new(DataType::Integer)
            .policy(LoadPolicy::FullyResident)
            .with_index(use_index)
            .build(&pool, &PageConfig::tiny(), &values)
            .unwrap()
            .column;
        let paged = ColumnBuilder::new(DataType::Integer)
            .policy(LoadPolicy::PageLoadable)
            .with_index(use_index)
            .build(&pool, &PageConfig::tiny(), &values)
            .unwrap()
            .column;
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&resident.get_value(i as u64).unwrap(), v);
            prop_assert_eq!(&paged.get_value(i as u64).unwrap(), v);
        }
        for pred in [
            ValuePredicate::Eq(Value::Integer(probe)),
            ValuePredicate::Between(Value::Integer(lo), Value::Integer(lo + span)),
        ] {
            let expect: Vec<u64> = (0..values.len() as u64)
                .filter(|&i| pred.matches(&values[i as usize]))
                .collect();
            prop_assert_eq!(resident.find_rows(&pred, 0, values.len() as u64).unwrap(), expect.clone());
            prop_assert_eq!(paged.find_rows(&pred, 0, values.len() as u64).unwrap(), expect);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The paged dictionary stays correct across arbitrary page geometries:
    /// dictionary/overflow/helper page sizes all vary independently.
    #[test]
    fn paged_dict_correct_across_page_geometries(
        dict_page in 512usize..2048,
        overflow_page in 64usize..512,
        helper_page in 512usize..1024,
        inline_limit in 8usize..64,
        n_keys in 50usize..400,
    ) {
        let config = PageConfig {
            datavec_page: 256,
            dict_page,
            overflow_page,
            helper_page,
            index_page: 256,
            inline_limit,
            ..PageConfig::tiny()
        };
        prop_assume!(config.validate().is_ok());
        let keys: Vec<Vec<u8>> = (0..n_keys)
            .map(|i| {
                let mut k = format!("geom-{i:06}-").into_bytes();
                // Mix short keys and ones that must spill.
                if i % 9 == 0 {
                    k.extend(std::iter::repeat_n(b'x', 100 + i));
                }
                k
            })
            .collect();
        let pool = pool();
        // Some geometries are legitimately impossible (a 16-entry block of
        // heavily-spilled values cannot fit a small page with tiny overflow
        // pages); the builder rejects those with a clean, documented error.
        let (dict, _) = match PagedDictionary::build(&pool, &config, &keys) {
            Ok(d) => d,
            Err(e) => {
                prop_assert!(matches!(
                    e,
                    payg_core::CoreError::Storage(payg_storage::StorageError::Corrupt(_))
                ));
                return Ok(());
            }
        };
        let mut cache = HandleCache::new(pool.clone());
        for (vid, k) in keys.iter().enumerate().step_by(7) {
            prop_assert_eq!(&dict.key_by_vid(vid as u64, &mut cache).unwrap(), k);
            prop_assert_eq!(dict.find(k, &mut cache).unwrap(), Ok(vid as u64));
        }
        prop_assert_eq!(dict.find(b"zzzz", &mut cache).unwrap(), Err(n_keys as u64));
        prop_assert_eq!(dict.find(b"a", &mut cache).unwrap(), Err(0));
    }

    /// The paged data vector round-trips across page sizes, and summaries
    /// never change search results.
    #[test]
    fn paged_datavec_correct_across_page_sizes(
        datavec_page in 8usize..4096,
        values in prop::collection::vec(0u64..5000, 1..500),
        probe in 0u64..5000,
    ) {
        let config = PageConfig { datavec_page, ..PageConfig::tiny() };
        let packed = BitPackedVec::from_values(&values);
        let pool = pool();
        let built = PagedDataVector::build(&pool, &config, &packed);
        // Pages too small for one chunk are a clean config error.
        let Ok(paged) = built else { return Ok(()); };
        for (i, &v) in values.iter().enumerate().step_by(11) {
            prop_assert_eq!(paged.iter().get(i as u64).unwrap(), v);
        }
        let mut got = Vec::new();
        paged.iter().search(0, values.len() as u64, &VidSet::Single(probe), &mut got).unwrap();
        let expect: Vec<u64> = (0..values.len() as u64)
            .filter(|&i| values[i as usize] == probe)
            .collect();
        prop_assert_eq!(got, expect);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Parallel segmented scans are bit-identical to the sequential
    /// iterator at the data-vector level, across random bit widths, search
    /// ranges, vid sets and partition counts, with and without read-ahead.
    #[test]
    fn par_search_equals_sequential_datavec(
        bits in 1u32..16,
        n in 1usize..1500,
        seed in any::<u64>(),
        workers in 1usize..8,
        prefetch in any::<bool>(),
        set_kind in 0u8..3,
    ) {
        let mask = (1u64 << bits) - 1;
        let values: Vec<u64> = (0..n as u64)
            .map(|i| seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(i * 0x1000_0001) & mask)
            .collect();
        let packed = BitPackedVec::from_values_with_width(
            &values,
            payg_encoding::BitWidth::new(bits).unwrap(),
        );
        let paged = PagedDataVector::build(&pool(), &PageConfig::tiny(), &packed).unwrap();
        let probe = values[seed as usize % n];
        let set = match set_kind {
            0 => VidSet::Single(probe),
            1 => VidSet::range(probe / 2, probe.max(1)),
            _ => VidSet::from_vids(vec![probe, probe ^ 1, mask / 2]),
        };
        let from = seed % (n as u64 + 1);
        let to = from + (seed >> 7) % (n as u64 - from + 1);
        let mut seq = Vec::new();
        paged.iter().search(from, to, &set, &mut seq).unwrap();
        let par = paged
            .par_search(from, to, &set, payg_core::ScanOptions { workers, prefetch })
            .unwrap();
        prop_assert_eq!(&par, &seq);
        // And the resident parallel scan agrees with the resident reference.
        let mut res_seq = Vec::new();
        payg_encoding::scan::search(&packed, from, to, &set, &mut res_seq);
        prop_assert_eq!(&res_seq, &seq);
        let res_par =
            payg_core::datavec::par_search_resident(&packed, from, to, &set, workers);
        prop_assert_eq!(&res_par, &seq);
    }

    /// `find_rows_par` ≡ `find_rows` ≡ direct evaluation for paged and
    /// resident columns across random predicates and partition counts.
    #[test]
    fn find_rows_par_equals_sequential_columns(
        ints in prop::collection::vec(-60i64..60, 1..400),
        probe in -60i64..60,
        lo in -60i64..60,
        span in 0i64..50,
        workers in 2usize..7,
    ) {
        let values: Vec<Value> = ints.iter().map(|&i| Value::Integer(i)).collect();
        let pool = pool();
        let opts = payg_core::ScanOptions::with_workers(workers);
        for policy in [LoadPolicy::FullyResident, LoadPolicy::PageLoadable] {
            let col = ColumnBuilder::new(DataType::Integer)
                .policy(policy)
                .build(&pool, &PageConfig::tiny(), &values)
                .unwrap()
                .column;
            for pred in [
                ValuePredicate::Eq(Value::Integer(probe)),
                ValuePredicate::Between(Value::Integer(lo), Value::Integer(lo + span)),
                ValuePredicate::In(vec![Value::Integer(probe), Value::Integer(lo)]),
            ] {
                let expect: Vec<u64> = (0..values.len() as u64)
                    .filter(|&i| pred.matches(&values[i as usize]))
                    .collect();
                prop_assert_eq!(col.find_rows(&pred, 0, values.len() as u64).unwrap(), expect.clone());
                prop_assert_eq!(col.find_rows_par(&pred, 0, values.len() as u64, opts).unwrap(), expect.clone());
                prop_assert_eq!(
                    col.count_rows_par(&pred, 0, values.len() as u64, opts).unwrap(),
                    expect.len() as u64
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Checkpoint round-trip: a column reopened from its serialized
    /// metadata is observationally identical, for both policies and all
    /// index modes.
    #[test]
    fn column_checkpoint_roundtrip(
        ints in prop::collection::vec(-40i64..40, 1..200),
        paged_policy in any::<bool>(),
        index_mode in 0u8..3,
    ) {
        use payg_core::column::{Column, IndexMode};
        let values: Vec<Value> = ints.iter().map(|&i| Value::Integer(i)).collect();
        let pool = pool();
        let mode = match index_mode {
            0 => IndexMode::None,
            1 => IndexMode::Eager,
            _ => IndexMode::Adaptive { threshold: 2 },
        };
        let policy = if paged_policy { LoadPolicy::PageLoadable } else { LoadPolicy::FullyResident };
        let col = ColumnBuilder::new(DataType::Integer)
            .policy(policy)
            .index_mode(mode)
            .build(&pool, &PageConfig::tiny(), &values)
            .unwrap()
            .column;
        // Exercise a few searches first (may build an adaptive index).
        let pred = ValuePredicate::Eq(Value::Integer(ints[0]));
        for _ in 0..3 {
            let _ = col.find_rows(&pred, 0, values.len() as u64).unwrap();
        }
        let bytes = col.meta_bytes();
        let reopened = Column::open(&pool, &bytes).unwrap();
        prop_assert_eq!(reopened.policy(), col.policy());
        prop_assert_eq!(reopened.len(), col.len());
        prop_assert_eq!(reopened.cardinality(), col.cardinality());
        prop_assert_eq!(reopened.has_index(), col.has_index());
        for (i, v) in values.iter().enumerate() {
            prop_assert_eq!(&reopened.get_value(i as u64).unwrap(), v);
        }
        prop_assert_eq!(
            reopened.find_rows(&pred, 0, values.len() as u64).unwrap(),
            col.find_rows(&pred, 0, values.len() as u64).unwrap()
        );
        // Corrupting any byte must error or keep answers valid — never panic.
        let mut broken = bytes.clone();
        if !broken.is_empty() {
            broken[0] ^= 0xFF;
            let _ = Column::open(&pool, &broken);
        }
    }
}

/// `PageConfig::tiny()` compresses by default; this is the same geometry
/// with both codecs off, for compressed ≡ plain parity checks.
fn plain_config() -> PageConfig {
    PageConfig { dict_fsst: false, pef_postings: false, ..PageConfig::tiny() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// An FSST-compressed dictionary chain answers exactly like the plain
    /// front-coded build: same vid↔key mapping, same hit and miss probes.
    #[test]
    fn fsst_dict_equals_plain_dict(
        mut keys in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..150),
        probes in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..16),
    ) {
        keys.sort();
        keys.dedup();
        let pool = pool();
        let (fsst, _) = PagedDictionary::build(&pool, &PageConfig::tiny(), &keys).unwrap();
        let (plain, _) = PagedDictionary::build(&pool, &plain_config(), &keys).unwrap();
        let mut fc = HandleCache::new(pool.clone());
        let mut pc = HandleCache::new(pool.clone());
        for vid in 0..keys.len() as u64 {
            prop_assert_eq!(
                fsst.key_by_vid(vid, &mut fc).unwrap(),
                plain.key_by_vid(vid, &mut pc).unwrap()
            );
        }
        for p in probes.iter().chain(keys.iter()) {
            prop_assert_eq!(fsst.find(p, &mut fc).unwrap(), plain.find(p, &mut pc).unwrap());
        }
    }

    /// A PEF posting chain returns the same postings as the bit-packed
    /// build, and `next_row_pos_geq` plus the continuing drain agree with a
    /// naive filter at arbitrary row targets.
    #[test]
    fn pef_index_equals_bitpacked_index(
        raw in prop::collection::vec(0u64..30, 1..300),
        targets in prop::collection::vec(0u64..320, 1..6),
    ) {
        let mut distinct: Vec<u64> = raw.clone();
        distinct.sort_unstable();
        distinct.dedup();
        let values: Vec<u64> = raw
            .iter()
            .map(|v| distinct.binary_search(v).unwrap() as u64)
            .collect();
        let card = distinct.len() as u64;
        let pool = pool();
        let pef = PagedInvertedIndex::build(&pool, &PageConfig::tiny(), &values, card).unwrap();
        let plain = PagedInvertedIndex::build(&pool, &plain_config(), &values, card).unwrap();
        for vid in 0..card {
            prop_assert_eq!(pef.postings(vid).unwrap(), plain.postings(vid).unwrap());
        }
        let mut it = pef.iter();
        for &t in &targets {
            for vid in 0..card {
                let mut got = Vec::new();
                let mut cur = it.next_row_pos_geq(vid, t).unwrap();
                while let Some(rpos) = cur {
                    got.push(rpos);
                    cur = it.get_next_row_pos().unwrap();
                }
                let expect: Vec<u64> = values
                    .iter()
                    .enumerate()
                    .filter(|&(i, &v)| v == vid && i as u64 >= t)
                    .map(|(i, _)| i as u64)
                    .collect();
                prop_assert_eq!(got, expect);
            }
        }
    }

    /// Raw PEF lists round-trip, seek, and intersect exactly like sorted
    /// vectors — including lengths that leave a partial trailing partition.
    #[test]
    fn pef_list_matches_sorted_vec(
        mut a in prop::collection::vec(0u64..5000, 0..330),
        mut b in prop::collection::vec(0u64..5000, 0..330),
        targets in prop::collection::vec((0u64..340, 0u64..5200), 1..12),
    ) {
        use payg_encoding::pef::{intersect, PefList};
        a.sort_unstable();
        a.dedup();
        b.sort_unstable();
        b.dedup();
        let la = PefList::encode(&a);
        let lb = PefList::encode(&b);
        prop_assert_eq!(la.len(), a.len() as u64);
        prop_assert_eq!(la.values().unwrap(), a.clone());
        prop_assert_eq!(lb.values().unwrap(), b.clone());
        for &(from, t) in &targets {
            let expect = a
                .iter()
                .enumerate()
                .skip(from as usize)
                .find(|&(_, &v)| v >= t)
                .map(|(i, &v)| (i as u64, v));
            prop_assert_eq!(la.next_geq(from, t).unwrap(), expect);
        }
        let expect: Vec<u64> =
            a.iter().copied().filter(|v| b.binary_search(v).is_ok()).collect();
        prop_assert_eq!(intersect(&la, &lb).unwrap(), expect);
    }
}
