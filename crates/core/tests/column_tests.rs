//! Column-level tests: both load policies must be observationally identical.

use payg_core::column::{Column, ColumnRead};
use payg_core::{ColumnBuilder, DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use payg_resman::{Disposition, PoolLimits, ResourceManager};
use payg_storage::{BufferPool, MemStore};
use std::sync::Arc;

fn pool() -> BufferPool {
    BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
}

fn string_values(n: usize) -> Vec<Value> {
    (0..n)
        .map(|i| Value::Varchar(format!("material-{:03}", i % 57)))
        .collect()
}

fn int_values(n: usize) -> Vec<Value> {
    (0..n as i64).map(|i| Value::Integer((i * 37) % 101 - 50)).collect()
}

fn build(
    pool: &BufferPool,
    ty: DataType,
    values: &[Value],
    policy: LoadPolicy,
    index: bool,
) -> Column {
    ColumnBuilder::new(ty)
        .policy(policy)
        .with_index(index)
        .build(pool, &PageConfig::tiny(), values)
        .unwrap()
        .column
}

/// Every ColumnRead operation must agree across the two load policies and
/// with direct evaluation over the source values.
fn assert_equivalent(ty: DataType, values: &[Value], index: bool) {
    let pool = pool();
    let resident = build(&pool, ty, values, LoadPolicy::FullyResident, index);
    let paged = build(&pool, ty, values, LoadPolicy::PageLoadable, index);
    assert_eq!(resident.len(), values.len() as u64);
    assert_eq!(paged.len(), values.len() as u64);
    assert_eq!(resident.cardinality(), paged.cardinality());

    // Point reads.
    for rpos in (0..values.len() as u64).step_by(7) {
        let expect = &values[rpos as usize];
        assert_eq!(&resident.get_value(rpos).unwrap(), expect, "resident get {rpos}");
        assert_eq!(&paged.get_value(rpos).unwrap(), expect, "paged get {rpos}");
    }

    // Batch reads.
    let rows: Vec<u64> = (0..values.len() as u64).step_by(3).collect();
    let expect: Vec<Value> = rows.iter().map(|&r| values[r as usize].clone()).collect();
    assert_eq!(resident.get_values(&rows).unwrap(), expect);
    assert_eq!(paged.get_values(&rows).unwrap(), expect);

    // Predicates.
    let preds = vec![
        ValuePredicate::Eq(values[0].clone()),
        ValuePredicate::Eq(values[values.len() / 2].clone()),
        ValuePredicate::Between(values[1].clone(), values[values.len() / 3].clone()),
        ValuePredicate::In(vec![values[2].clone(), values[5].clone()]),
    ];
    for pred in preds {
        let expect: Vec<u64> = (0..values.len() as u64)
            .filter(|&i| pred.matches(&values[i as usize]))
            .collect();
        let got_r = resident.find_rows(&pred, 0, values.len() as u64).unwrap();
        let got_p = paged.find_rows(&pred, 0, values.len() as u64).unwrap();
        assert_eq!(got_r, expect, "resident {pred:?}");
        assert_eq!(got_p, expect, "paged {pred:?}");
        // Row-range restriction.
        let (from, to) = (values.len() as u64 / 4, values.len() as u64 / 2);
        let expect_range: Vec<u64> =
            expect.iter().copied().filter(|&r| r >= from && r < to).collect();
        assert_eq!(resident.find_rows(&pred, from, to).unwrap(), expect_range);
        assert_eq!(paged.find_rows(&pred, from, to).unwrap(), expect_range);
        assert_eq!(
            resident.count_rows(&pred, 0, values.len() as u64).unwrap(),
            expect.len() as u64
        );
        assert_eq!(
            paged.count_rows(&pred, 0, values.len() as u64).unwrap(),
            expect.len() as u64
        );
    }
}

#[test]
fn equivalence_strings_without_index() {
    assert_equivalent(DataType::Varchar, &string_values(900), false);
}

/// The codec dispatch seam: point/set probes on a PEF index run in the
/// compressed domain, ranges and plain structures decode-then-scan, and
/// resident columns (already decoded in memory) never take the seam.
#[test]
fn dispatch_seam_picks_compressed_domain_for_pef_point_probes() {
    use payg_core::{CodecKind, ScanPath};
    let pool = pool();
    let values = string_values(900);
    let paged = build(&pool, DataType::Varchar, &values, LoadPolicy::PageLoadable, true);
    assert_eq!(paged.index_codec(), Some(CodecKind::Pef));
    assert_eq!(paged.dict_codec(), CodecKind::Fsst);
    let point = ValuePredicate::Eq(values[3].clone());
    let range = ValuePredicate::Between(values[0].clone(), values[8].clone());
    assert_eq!(paged.scan_path(&point), ScanPath::CompressedDomain);
    assert_eq!(paged.scan_path(&range), ScanPath::DecodeThenScan);

    let resident = build(&pool, DataType::Varchar, &values, LoadPolicy::FullyResident, true);
    assert_eq!(resident.scan_path(&point), ScanPath::DecodeThenScan);

    let no_index = build(&pool, DataType::Varchar, &values, LoadPolicy::PageLoadable, false);
    assert_eq!(no_index.index_codec(), None);
    assert_eq!(no_index.scan_path(&point), ScanPath::DecodeThenScan);

    // With the codecs disabled every chain reads back plain and the seam
    // routes everything through the decode path.
    let plain_cfg = PageConfig { dict_fsst: false, pef_postings: false, ..PageConfig::tiny() };
    let plain = ColumnBuilder::new(DataType::Varchar)
        .policy(LoadPolicy::PageLoadable)
        .with_index(true)
        .build(&pool, &plain_cfg, &values)
        .unwrap()
        .column;
    assert_eq!(plain.index_codec(), Some(CodecKind::Plain));
    assert_eq!(plain.dict_codec(), CodecKind::Plain);
    assert_eq!(plain.scan_path(&point), ScanPath::DecodeThenScan);
}

#[test]
fn equivalence_strings_with_index() {
    assert_equivalent(DataType::Varchar, &string_values(900), true);
}

#[test]
fn equivalence_integers_without_index() {
    assert_equivalent(DataType::Integer, &int_values(1200), false);
}

#[test]
fn equivalence_integers_with_index() {
    assert_equivalent(DataType::Integer, &int_values(1200), true);
}

#[test]
fn equivalence_doubles_and_decimals() {
    let doubles: Vec<Value> =
        (0..600).map(|i| Value::Double(((i * 13) % 89) as f64 / 4.0 - 10.0)).collect();
    assert_equivalent(DataType::Double, &doubles, true);
    let decimals: Vec<Value> =
        (0..600).map(|i| Value::Decimal(((i * 31) % 67) as i128 * 25 - 500)).collect();
    assert_equivalent(DataType::Decimal, &decimals, false);
}

#[test]
fn resident_column_loads_once_and_registers_one_resource() {
    let pool = pool();
    let resman = pool.resource_manager().clone();
    let values = string_values(500);
    let col = build(&pool, DataType::Varchar, &values, LoadPolicy::FullyResident, false);
    assert_eq!(resman.stats().resource_count, 0, "no load before first access");
    let _ = col.get_value(17).unwrap();
    let stats = resman.stats();
    assert_eq!(stats.resource_count, 1, "the whole column is one resource");
    assert_eq!(stats.paged_bytes, 0, "resident columns are not paged resources");
    assert!(stats.total_bytes > 0);
    // Further reads don't reload.
    let _ = col.get_value(400).unwrap();
    if let Column::Resident(r) = &col {
        assert_eq!(r.load_count(), 1);
    } else {
        panic!("expected resident");
    }
}

#[test]
fn paged_column_loads_only_touched_pages() {
    let pool = pool();
    let resman = pool.resource_manager().clone();
    let values = string_values(2000);
    let col = build(&pool, DataType::Varchar, &values, LoadPolicy::PageLoadable, false);
    let _ = col.get_value(17).unwrap();
    let stats = resman.stats();
    assert!(stats.paged_count > 0, "pages are individual paged resources");
    // A single point read must not pull in most of the column.
    let resident_pages = pool.resident_pages();
    let total_chain_pages = {
        let store = pool.store();
        store.chains().iter().map(|&c| store.chain_len(c).unwrap()).sum::<u64>()
    };
    assert!(
        (resident_pages as u64) < total_chain_pages / 2,
        "one point read loaded {resident_pages} of {total_chain_pages} pages"
    );
}

#[test]
fn resident_eviction_and_reload() {
    let pool = pool();
    let resman = pool.resource_manager().clone();
    let values = int_values(800);
    let col = build(&pool, DataType::Integer, &values, LoadPolicy::FullyResident, false);
    let _ = col.get_value(0).unwrap();
    // A global low-memory sweep evicts the whole column at once.
    let freed = resman.handle_low_memory(1);
    assert!(freed > 0);
    assert_eq!(resman.stats().resource_count, 0);
    if let Column::Resident(r) = &col {
        assert!(!r.is_loaded());
    }
    // Next access reloads (load_count == 2) and returns correct data.
    assert_eq!(col.get_value(5).unwrap(), values[5]);
    if let Column::Resident(r) = &col {
        assert_eq!(r.load_count(), 2);
    }
}

#[test]
fn paged_eviction_is_piecewise_and_transparent() {
    let pool = pool();
    let resman = pool.resource_manager().clone();
    resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
    let values = string_values(2000);
    let col = build(&pool, DataType::Varchar, &values, LoadPolicy::PageLoadable, false);
    for rpos in (0..2000).step_by(100) {
        assert_eq!(col.get_value(rpos).unwrap(), values[rpos as usize]);
    }
    let before = resman.stats().paged_bytes;
    assert!(before > 0);
    // Evict everything; queries still work by reloading pages on demand.
    resman.reactive_unload();
    assert_eq!(resman.stats().paged_bytes, 0);
    for rpos in (0..2000).step_by(250) {
        assert_eq!(col.get_value(rpos).unwrap(), values[rpos as usize]);
    }
}

#[test]
fn resident_disposition_orders_eviction() {
    let pool = pool();
    let resman = pool.resource_manager().clone();
    let values = int_values(400);
    // A cold partition's column (temporary disposition) and a hot one.
    let cold = ColumnBuilder::new(DataType::Integer)
        .resident_disposition(Disposition::Temporary)
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap()
        .column;
    let hot = ColumnBuilder::new(DataType::Integer)
        .resident_disposition(Disposition::LongTerm)
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap()
        .column;
    cold.ensure_loaded().unwrap();
    hot.ensure_loaded().unwrap();
    // Demand a small amount of memory: with comparable idle times, the
    // temporary-disposition column scores far higher (t / 0.25 vs t / 16)
    // and must be the victim.
    let _ = resman.handle_low_memory(1);
    if let (Column::Resident(c), Column::Resident(h)) = (&cold, &hot) {
        assert!(!c.is_loaded(), "cold (temporary) column evicted first");
        assert!(h.is_loaded(), "hot (long-term) column survives");
    }
}

#[test]
fn type_mismatch_is_an_error() {
    let pool = pool();
    let values = int_values(100);
    let col = build(&pool, DataType::Integer, &values, LoadPolicy::PageLoadable, false);
    assert!(col
        .find_rows(&ValuePredicate::Eq(Value::Varchar("x".into())), 0, 100)
        .is_err());
    // Builder rejects mixed types.
    let mut mixed = int_values(10);
    mixed.push(Value::Varchar("oops".into()));
    assert!(ColumnBuilder::new(DataType::Integer)
        .build(&pool, &PageConfig::tiny(), &mixed)
        .is_err());
}

#[test]
fn empty_and_single_row_columns() {
    let pool = pool();
    for policy in [LoadPolicy::FullyResident, LoadPolicy::PageLoadable] {
        let empty = build(&pool, DataType::Integer, &[], policy, false);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
        assert!(empty
            .find_rows(&ValuePredicate::Eq(Value::Integer(1)), 0, 0)
            .unwrap()
            .is_empty());
        let single = build(&pool, DataType::Integer, &[Value::Integer(42)], policy, true);
        assert_eq!(single.get_value(0).unwrap(), Value::Integer(42));
        assert_eq!(
            single.find_rows(&ValuePredicate::Eq(Value::Integer(42)), 0, 1).unwrap(),
            vec![0]
        );
    }
}
