//! Chaos scans: seeded fault storms through the full scan stack — paged
//! vector → parallel workers → buffer pool → faulty store.
//!
//! The trichotomy under test: a scan returns the *correct* rows, or one
//! clean [`CoreError::ScanAborted`] naming the failing page — never a
//! panic, a wrong partial result, a leaked pin, or a wedged pool. A
//! failing seed reproduces with
//! `PAYG_CHAOS_SEED=<seed> cargo test -p payg-core --test chaos`.

use payg_core::datavec::{PagedDataVector, ScanOptions};
use payg_core::{CoreError, PageConfig};
use payg_encoding::{BitPackedVec, VidSet};
use payg_resman::ResourceManager;
use payg_storage::{
    BufferPool, FaultPlan, FaultyStore, FileStore, MemStore, PageStore, PoolConfig,
};
use std::sync::Arc;

const ROWS: usize = 6000;
const CARD: u64 = 97;

fn chaos_seeds() -> Vec<u64> {
    match std::env::var("PAYG_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("PAYG_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2, 3, 4],
    }
}

fn sample(len: usize, card: u64, seed: u64) -> Vec<u64> {
    (0..len as u64)
        .map(|i| {
            seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(i)
                .wrapping_mul(0xBF58_476D_1CE4_E5B9)
                % card
        })
        .collect()
}

/// Either the exact expected rows, or one typed abort naming a page of the
/// vector's chain — nothing else.
fn audit_search(
    seed: u64,
    result: Result<Vec<u64>, CoreError>,
    expected: &[u64],
    chain: u64,
    pages: u64,
) {
    match result {
        Ok(rows) => assert_eq!(rows, expected, "seed {seed}: an Ok scan must be exact"),
        Err(CoreError::ScanAborted { chain: c, page_no, source }) => {
            assert_eq!(c, chain, "seed {seed}: abort names the scanned chain");
            assert!(page_no < pages, "seed {seed}: abort names a real page ({page_no})");
            assert!(
                matches!(*source, CoreError::Storage(_)),
                "seed {seed}: abort wraps the storage fault, got {source}"
            );
        }
        Err(other) => panic!("seed {seed}: unexpected scan error shape: {other}"),
    }
}

#[test]
fn seeded_scan_storms_land_in_the_trichotomy() {
    let values = sample(ROWS, CARD, 7);
    let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
    let pool = BufferPool::with_config(
        Arc::clone(&store) as Arc<dyn PageStore>,
        ResourceManager::new(),
        PoolConfig { sleeper: Arc::new(|_| {}), quarantine_ttl: 3, ..PoolConfig::default() },
    );
    let packed = BitPackedVec::from_values(&values);
    let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
    let chain = paged.page_key(0).chain.0;
    let set = VidSet::range(10, 60);
    let expected: Vec<u64> =
        (0..ROWS as u64).filter(|&i| set.contains(values[i as usize])).collect();

    for seed in chaos_seeds() {
        store.set_plan(FaultPlan::Seeded { seed, p_read: 0.1, p_corrupt: 0.05, p_write: 0.0 });
        for prefetch in [false, true] {
            pool.clear();
            pool.clear_quarantine();
            let opts = ScanOptions { workers: 4, prefetch };
            audit_search(
                seed,
                paged.par_search(0, ROWS as u64, &set, opts),
                &expected,
                chain,
                paged.pages(),
            );
            match paged.par_count(0, ROWS as u64, &set, opts) {
                Ok(n) => assert_eq!(n, expected.len() as u64, "seed {seed}: Ok count is exact"),
                Err(CoreError::ScanAborted { chain: c, .. }) => assert_eq!(c, chain),
                Err(other) => panic!("seed {seed}: unexpected count error: {other}"),
            }
        }
        // Recovery: faults lifted, quarantine drained — the same scan must
        // come back exact. Chaos must never wedge the stack.
        store.set_plan(FaultPlan::None);
        pool.clear();
        pool.clear_quarantine();
        let rows = paged.par_search(0, ROWS as u64, &set, ScanOptions::with_workers(4)).unwrap();
        assert_eq!(rows, expected, "seed {seed}: recovery scan");
        pool.assert_no_live_pins("chaos scan quiesce");
    }
}

#[test]
fn on_disk_bit_rot_surfaces_as_a_named_scan_abort() {
    let dir = std::env::temp_dir().join(format!("payg-scan-rot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let values = sample(4000, 50, 9);
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let pool =
        BufferPool::new(Arc::clone(&store) as Arc<dyn PageStore>, ResourceManager::new());
    let packed = BitPackedVec::from_values(&values);
    let paged = PagedDataVector::build(&pool, &PageConfig::tiny(), &packed).unwrap();
    let chain = paged.page_key(0).chain;
    let set = VidSet::range(0, 49); // matches every page: nothing pruned
    let expected: Vec<u64> =
        (0..4000u64).filter(|&i| set.contains(values[i as usize])).collect();
    assert_eq!(
        paged.par_search(0, 4000, &set, ScanOptions::with_workers(4)).unwrap(),
        expected,
        "clean disk scans exactly"
    );

    // Flip one payload bit in the middle page's slot on disk, then force
    // the next scan to re-read it.
    let path = dir.join(format!("chain_{:016x}.pg", chain.0));
    let mut bytes = std::fs::read(&path).unwrap();
    let (data_start, slot_len) = store.chain_layout(chain).unwrap();
    let target = paged.pages() / 2;
    bytes[(data_start + slot_len * target) as usize + 3] ^= 0x10;
    std::fs::write(&path, &bytes).unwrap();
    pool.clear();

    let err = paged
        .par_search(0, 4000, &set, ScanOptions::with_workers(4))
        .map(|_| ())
        .unwrap_err();
    match err {
        CoreError::ScanAborted { chain: c, page_no, source } => {
            assert_eq!((c, page_no), (chain.0, target), "abort names the rotten page");
            assert!(
                matches!(
                    &*source,
                    CoreError::Storage(e) if e.fault_class() == payg_storage::FaultClass::Corrupt
                ),
                "bit rot is a corrupt-class fault: {source}"
            );
        }
        other => panic!("expected ScanAborted, got {other}"),
    }
    pool.assert_no_live_pins("bit rot quiesce");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// True when the error bottoms out in a Corrupt-class storage fault,
/// unwrapping scan-abort wrappers along the way.
fn corrupt_class(err: &CoreError) -> bool {
    match err {
        CoreError::Storage(e) => e.fault_class() == payg_storage::FaultClass::Corrupt,
        CoreError::ScanAborted { source, .. } => corrupt_class(source),
        _ => false,
    }
}

/// Bit rot inside *compressed* pages — FSST dictionary blocks, PEF posting
/// partitions, helper and data pages alike — surfaces as a Corrupt-class
/// fault: the page checksum catches the flip before any compressed-domain
/// decoder can misdecode it into a silently wrong answer.
#[test]
fn compressed_page_rot_is_a_corrupt_class_fault() {
    use payg_core::column::ColumnRead;
    use payg_core::{ColumnBuilder, DataType, LoadPolicy, Value, ValuePredicate};

    let dir = std::env::temp_dir().join(format!("payg-cmprot-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let pool =
        BufferPool::new(Arc::clone(&store) as Arc<dyn PageStore>, ResourceManager::new());
    let values: Vec<Value> = (0..2000)
        .map(|i| Value::Varchar(format!("customer-{:04}-region-{}", i % 250, i % 7)))
        .collect();
    let col = ColumnBuilder::new(DataType::Varchar)
        .policy(LoadPolicy::PageLoadable)
        .with_index(true)
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap()
        .column;
    let pred = ValuePredicate::Eq(Value::Varchar("customer-0007-region-0".into()));
    let expect: Vec<u64> = (0..values.len() as u64)
        .filter(|&i| pred.matches(&values[i as usize]))
        .collect();
    assert!(!expect.is_empty(), "probe must hit rows");
    assert_eq!(col.find_rows(&pred, 0, values.len() as u64).unwrap(), expect);

    // Flip one payload byte in the first page of every chain backing the
    // column, so whichever chain a read path touches first is rotten.
    let mut chains: Vec<u64> = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| {
            let name = e.unwrap().file_name().into_string().unwrap();
            let hex = name.strip_prefix("chain_")?.strip_suffix(".pg")?;
            u64::from_str_radix(hex, 16).ok()
        })
        .collect();
    chains.sort_unstable();
    assert!(chains.len() >= 3, "expected dict/index/data chains, got {chains:?}");
    for &c in &chains {
        let (data_start, _) = store.chain_layout(payg_storage::ChainId(c)).unwrap();
        let path = dir.join(format!("chain_{c:016x}.pg"));
        let mut bytes = std::fs::read(&path).unwrap();
        // Chains that never appended a page have nothing to rot.
        if let Some(byte) = bytes.get_mut(data_start as usize + 5) {
            *byte ^= 0x40;
            std::fs::write(&path, &bytes).unwrap();
        }
    }
    pool.clear();

    let find_err = col.find_rows(&pred, 0, values.len() as u64).unwrap_err();
    assert!(corrupt_class(&find_err), "find over rotten pages: {find_err}");
    let get_err = col.get_value(3).unwrap_err();
    assert!(corrupt_class(&get_err), "point read over rotten pages: {get_err}");
    pool.assert_no_live_pins("compressed rot quiesce");
    std::fs::remove_dir_all(&dir).unwrap();
}
