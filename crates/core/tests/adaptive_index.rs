//! The §8 adaptive index: non-critical data built lazily, driven by the
//! workload.

use payg_core::column::{Column, ColumnRead, IndexMode};
use payg_core::{ColumnBuilder, DataType, LoadPolicy, PageConfig, Value, ValuePredicate};
use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore};
use std::sync::Arc;

fn pool() -> BufferPool {
    BufferPool::new(Arc::new(MemStore::new()), ResourceManager::new())
}

fn adaptive_column(pool: &BufferPool, threshold: u64) -> Column {
    let values: Vec<Value> = (0..3_000i64).map(|i| Value::Integer(i % 37)).collect();
    ColumnBuilder::new(DataType::Integer)
        .policy(LoadPolicy::PageLoadable)
        .index_mode(IndexMode::Adaptive { threshold })
        .build(pool, &PageConfig::tiny(), &values)
        .unwrap()
        .column
}

#[test]
fn adaptive_index_builds_after_threshold_and_stays_correct() {
    let pool = pool();
    let col = adaptive_column(&pool, 5);
    let pred = ValuePredicate::Eq(Value::Integer(7));
    let expect: Vec<u64> = (0..3_000u64).filter(|&i| (i as i64) % 37 == 7).collect();
    // Before the threshold: scans, no index.
    for i in 0..4 {
        assert_eq!(col.find_rows(&pred, 0, 3_000).unwrap(), expect, "query {i}");
        assert!(!col.has_index(), "index must not exist before the threshold");
    }
    // Crossing the threshold builds it; results are unchanged.
    assert_eq!(col.find_rows(&pred, 0, 3_000).unwrap(), expect);
    assert!(col.has_index(), "index built after {} searches", 5);
    assert_eq!(col.find_rows(&pred, 0, 3_000).unwrap(), expect);
    // Counts also use it now.
    assert_eq!(col.count_rows(&pred, 0, 3_000).unwrap(), expect.len() as u64);
}

#[test]
fn adaptive_index_is_never_built_for_scan_free_workloads() {
    let pool = pool();
    let col = adaptive_column(&pool, 10);
    // Point decodes and materialization do not count as searches.
    for rpos in 0..50 {
        let _ = col.get_value(rpos).unwrap();
    }
    assert!(!col.has_index(), "point reads must not trigger index builds");
}

#[test]
fn eager_and_none_modes_unchanged() {
    let pool = pool();
    let values: Vec<Value> = (0..500i64).map(|i| Value::Integer(i % 11)).collect();
    let eager = ColumnBuilder::new(DataType::Integer)
        .policy(LoadPolicy::PageLoadable)
        .index_mode(IndexMode::Eager)
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap();
    assert!(eager.column.has_index());
    assert!(eager.index_pages > 0);
    let none = ColumnBuilder::new(DataType::Integer)
        .policy(LoadPolicy::PageLoadable)
        .index_mode(IndexMode::None)
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap();
    assert!(!none.column.has_index());
    assert_eq!(none.index_pages, 0);
}

#[test]
fn resident_adaptive_degenerates_to_eager() {
    let pool = pool();
    let values: Vec<Value> = (0..500i64).map(|i| Value::Integer(i % 11)).collect();
    let col = ColumnBuilder::new(DataType::Integer)
        .policy(LoadPolicy::FullyResident)
        .index_mode(IndexMode::Adaptive { threshold: 100 })
        .build(&pool, &PageConfig::tiny(), &values)
        .unwrap()
        .column;
    assert!(col.has_index(), "resident columns build eagerly");
    let pred = ValuePredicate::Eq(Value::Integer(3));
    let expect: Vec<u64> = (0..500u64).filter(|&i| (i as i64) % 11 == 3).collect();
    assert_eq!(col.find_rows(&pred, 0, 500).unwrap(), expect);
}
