//! Synchronization alias layer (the only module allowed to name raw lock
//! types — enforced by `cargo xtask lint` rule `raw-lock`).
//!
//! Built normally, these resolve to `payg-check`'s zero-overhead raw
//! wrappers (plain non-poisoning `std::sync` locks plus lock-rank tracking
//! under `strict-invariants`). Built with `RUSTFLAGS="--cfg payg_check"`,
//! they resolve to the modeled wrappers, making every lock operation in
//! this crate a deterministic-scheduler yield point so model tests explore
//! real interleavings of the *production* code.

#[cfg(payg_check)]
pub use payg_check::sync::{Mutex, MutexGuard};

#[cfg(not(payg_check))]
pub use payg_check::raw::{RawMutex as Mutex, RawMutexGuard as MutexGuard};

pub use payg_check::LockRank;
