//! The resource manager proper.

use crate::proactive::ProactiveWorker;
use crate::sync::{LockRank, Mutex};
use crate::{Disposition, MemoryStats};
use payg_obs::{names, Counter, EventKind, Gauge, Registry};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Identifies a registered resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceId(u64);

/// Lower/upper watermarks for the paged-attribute pool (paper §5).
///
/// When the pool exceeds `upper_bytes` the proactive unload evicts LRU until
/// `lower_bytes` is reached — even if plenty of memory is still available.
/// Under low memory, the reactive unload shrinks the pool to `lower_bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolLimits {
    /// Target the pool is shrunk to by either unload mechanism.
    pub lower_bytes: usize,
    /// Threshold whose crossing triggers the proactive unload.
    pub upper_bytes: usize,
}

impl PoolLimits {
    /// Creates limits, validating `lower <= upper`.
    pub fn new(lower_bytes: usize, upper_bytes: usize) -> Self {
        assert!(lower_bytes <= upper_bytes, "pool lower limit must not exceed upper limit");
        PoolLimits { lower_bytes, upper_bytes }
    }
}

type EvictFn = Box<dyn Fn() + Send + Sync>;

struct Entry {
    size: usize,
    disposition: Disposition,
    last_touch: u64,
    pins: u32,
    on_evict: EvictFn,
}

#[derive(Default)]
struct State {
    entries: HashMap<u64, Entry>,
    total_bytes: usize,
    paged_bytes: usize,
    paged_count: usize,
    /// Bytes committed to store reads currently in flight through the I/O
    /// stage: charged before the read is issued and released when the data
    /// either becomes a registered resource or the read fails, so the
    /// footprint series never under-reports a burst of batched loads.
    inflight_bytes: usize,
    inflight_count: usize,
}

/// The manager's metric handles, registered in its [`Registry`] under the
/// `resman_*` names. Eviction totals are counters; the accounting
/// aggregates (bytes, resource counts) are gauges refreshed under the
/// state lock whenever the totals change.
struct Obs {
    registry: Registry,
    total_bytes: Gauge,
    paged_bytes: Gauge,
    resource_count: Gauge,
    paged_count: Gauge,
    inflight_bytes: Gauge,
    inflight_count: Gauge,
    proactive_evictions: Counter,
    reactive_evictions: Counter,
    weighted_evictions: Counter,
    evicted_bytes: Counter,
    registrations: Counter,
}

impl Obs {
    fn register(registry: Registry) -> Self {
        Obs {
            total_bytes: registry.gauge(names::RESMAN_TOTAL_BYTES),
            paged_bytes: registry.gauge(names::RESMAN_PAGED_BYTES),
            resource_count: registry.gauge(names::RESMAN_RESOURCE_COUNT),
            paged_count: registry.gauge(names::RESMAN_PAGED_COUNT),
            inflight_bytes: registry.gauge(names::RESMAN_INFLIGHT_BYTES),
            inflight_count: registry.gauge(names::RESMAN_INFLIGHT_COUNT),
            proactive_evictions: registry.counter(names::RESMAN_PROACTIVE_EVICTIONS),
            reactive_evictions: registry.counter(names::RESMAN_REACTIVE_EVICTIONS),
            weighted_evictions: registry.counter(names::RESMAN_WEIGHTED_EVICTIONS),
            evicted_bytes: registry.counter(names::RESMAN_EVICTED_BYTES),
            registrations: registry.counter(names::RESMAN_REGISTRATIONS),
            registry,
        }
    }

    /// Refreshes the accounting gauges from the state totals. Called with
    /// the state lock held so gauge values never mix two states.
    fn sync(&self, st: &State) {
        self.total_bytes.set(st.total_bytes as u64);
        self.paged_bytes.set(st.paged_bytes as u64);
        self.resource_count.set(st.entries.len() as u64);
        self.paged_count.set(st.paged_count as u64);
        self.inflight_bytes.set(st.inflight_bytes as u64);
        self.inflight_count.set(st.inflight_count as u64);
    }
}

pub(crate) struct Inner {
    state: Mutex<State>,
    limits: Mutex<Option<PoolLimits>>,
    // lint: allow(raw-counter) logical LRU clock, not a metric
    clock: AtomicU64,
    // lint: allow(raw-counter) resource id allocator, not a metric
    next_id: AtomicU64,
    obs: Obs,
    proactive: Mutex<Option<ProactiveWorker>>,
}

/// The memory/resource manager. Cheap to clone; clones share state.
#[derive(Clone)]
pub struct ResourceManager {
    inner: Arc<Inner>,
}

impl Default for ResourceManager {
    fn default() -> Self {
        Self::new()
    }
}

impl ResourceManager {
    /// Creates a manager with no paged-pool limits (nothing is evicted until
    /// explicitly requested or limits are set) and a fresh metric
    /// [`Registry`] of its own.
    pub fn new() -> Self {
        Self::with_registry(Registry::new())
    }

    /// Creates a manager that reports into an existing [`Registry`] —
    /// pools and tables built on this manager register their metrics in
    /// the same registry, so one snapshot captures the whole system.
    pub fn with_registry(registry: Registry) -> Self {
        ResourceManager {
            inner: Arc::new(Inner {
                state: Mutex::with_rank(State::default(), LockRank::ResmanState),
                limits: Mutex::with_rank(None, LockRank::ResmanLimits),
                clock: AtomicU64::new(0),
                next_id: AtomicU64::new(1),
                obs: Obs::register(registry),
                proactive: Mutex::with_rank(None, LockRank::ResmanProactive),
            }),
        }
    }

    /// The metric registry this manager (and everything built on it)
    /// reports into.
    pub fn registry(&self) -> &Registry {
        &self.inner.obs.registry
    }

    /// Creates a manager with paged-pool limits and a running proactive
    /// unload worker.
    pub fn with_paged_limits(limits: PoolLimits) -> Self {
        let m = Self::new();
        m.set_paged_limits(Some(limits));
        m
    }

    /// Sets (or clears) the paged-pool limits. Setting limits starts the
    /// asynchronous proactive unload worker if not yet running.
    pub fn set_paged_limits(&self, limits: Option<PoolLimits>) {
        *self.inner.limits.lock() = limits;
        if limits.is_some() {
            let mut guard = self.inner.proactive.lock();
            if guard.is_none() {
                *guard = Some(ProactiveWorker::spawn(Arc::downgrade(&self.inner)));
            }
        }
        self.maybe_wake_proactive();
    }

    /// Sets (or clears) the paged-pool limits **without** starting the
    /// asynchronous proactive worker. Unload passes must then be driven
    /// explicitly via [`ResourceManager::proactive_unload`] or
    /// [`ResourceManager::reactive_unload`]. Deterministic tests and model
    /// checks use this so no unmanaged background thread races the schedule
    /// being explored.
    pub fn set_paged_limits_manual(&self, limits: Option<PoolLimits>) {
        *self.inner.limits.lock() = limits;
    }

    /// Current paged-pool limits, if any.
    pub fn paged_limits(&self) -> Option<PoolLimits> {
        *self.inner.limits.lock()
    }

    fn tick(&self) -> u64 {
        self.inner.clock.fetch_add(1, Ordering::Relaxed)
    }

    /// Registers a resource of `size` bytes. `on_evict` is invoked (outside
    /// all manager locks) when the manager evicts the resource; it must
    /// release the owner's memory and must not call back into the manager
    /// for this resource.
    pub fn register(
        &self,
        size: usize,
        disposition: Disposition,
        on_evict: impl Fn() + Send + Sync + 'static,
    ) -> ResourceId {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.tick();
        {
            let mut st = self.inner.state.lock();
            st.total_bytes += size;
            if disposition.is_paged() {
                st.paged_bytes += size;
                st.paged_count += 1;
            }
            st.entries.insert(
                id,
                Entry { size, disposition, last_touch: now, pins: 0, on_evict: Box::new(on_evict) },
            );
            assert_accounting(&st);
            self.inner.obs.sync(&st);
        }
        self.inner.obs.registrations.inc();
        self.maybe_wake_proactive();
        ResourceId(id)
    }

    /// Like [`ResourceManager::register`], but the resource starts with one
    /// pin already held, so it cannot be evicted before the caller's first
    /// [`ResourceManager::unpin`]. This closes the race between registering
    /// a freshly loaded page and pinning it.
    pub fn register_pinned(
        &self,
        size: usize,
        disposition: Disposition,
        on_evict: impl Fn() + Send + Sync + 'static,
    ) -> ResourceId {
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let now = self.tick();
        {
            let mut st = self.inner.state.lock();
            st.total_bytes += size;
            if disposition.is_paged() {
                st.paged_bytes += size;
                st.paged_count += 1;
            }
            st.entries.insert(
                id,
                Entry { size, disposition, last_touch: now, pins: 1, on_evict: Box::new(on_evict) },
            );
            assert_accounting(&st);
            self.inner.obs.sync(&st);
        }
        self.inner.obs.registrations.inc();
        self.maybe_wake_proactive();
        ResourceId(id)
    }

    /// Removes a resource without invoking its eviction callback (the owner
    /// is releasing it voluntarily). Returns false if the resource was
    /// already gone (e.g. just evicted).
    pub fn deregister(&self, id: ResourceId) -> bool {
        let mut st = self.inner.state.lock();
        let removed = remove_entry(&mut st, id.0).is_some();
        self.inner.obs.sync(&st);
        removed
    }

    /// Marks a resource as recently used.
    pub fn touch(&self, id: ResourceId) {
        let now = self.tick();
        if let Some(e) = self.inner.state.lock().entries.get_mut(&id.0) {
            e.last_touch = now;
        }
    }

    /// Adjusts a resource's accounted size (e.g. a transient structure grew).
    pub fn resize(&self, id: ResourceId, new_size: usize) {
        {
            let mut st = self.inner.state.lock();
            let Some(e) = st.entries.get_mut(&id.0) else { return };
            let old = e.size;
            let paged = e.disposition.is_paged();
            e.size = new_size;
            st.total_bytes = st.total_bytes - old + new_size;
            if paged {
                st.paged_bytes = st.paged_bytes - old + new_size;
            }
            assert_accounting(&st);
            self.inner.obs.sync(&st);
        }
        self.maybe_wake_proactive();
    }

    /// Pins a resource, protecting it from eviction. Returns false when the
    /// resource no longer exists (the caller must reload it). Also touches.
    #[must_use]
    pub fn pin(&self, id: ResourceId) -> bool {
        let now = self.tick();
        match self.inner.state.lock().entries.get_mut(&id.0) {
            Some(e) => {
                e.pins += 1;
                e.last_touch = now;
                true
            }
            None => false,
        }
    }

    /// Releases one pin.
    pub fn unpin(&self, id: ResourceId) {
        if let Some(e) = self.inner.state.lock().entries.get_mut(&id.0) {
            debug_assert!(e.pins > 0, "unpin without pin");
            e.pins = e.pins.saturating_sub(1);
        }
    }

    /// Charges `bytes` of store reads about to be issued by the I/O stage.
    /// The bytes count toward the memory footprint from the moment the read
    /// is committed, not only once the frame is registered — a burst of
    /// coalesced loads is visible to the footprint series while in flight.
    /// Must be paired with exactly one [`ResourceManager::end_inflight`].
    pub fn begin_inflight(&self, bytes: usize) {
        let mut st = self.inner.state.lock();
        st.inflight_bytes += bytes;
        st.inflight_count += 1;
        self.inner.obs.sync(&st);
    }

    /// Releases an in-flight charge taken by
    /// [`ResourceManager::begin_inflight`] — the read completed (the frame
    /// is now a registered resource) or failed.
    pub fn end_inflight(&self, bytes: usize) {
        let mut st = self.inner.state.lock();
        debug_assert!(
            st.inflight_bytes >= bytes && st.inflight_count > 0,
            "end_inflight without matching begin_inflight"
        );
        st.inflight_bytes = st.inflight_bytes.saturating_sub(bytes);
        st.inflight_count = st.inflight_count.saturating_sub(1);
        self.inner.obs.sync(&st);
    }

    /// Snapshot of the accounting counters. The same figures are readable
    /// from [`ResourceManager::registry`] snapshots under the `resman_*`
    /// metric names.
    pub fn stats(&self) -> MemoryStats {
        let st = self.inner.state.lock();
        let o = &self.inner.obs;
        MemoryStats {
            total_bytes: st.total_bytes,
            paged_bytes: st.paged_bytes,
            inflight_bytes: st.inflight_bytes,
            inflight_count: st.inflight_count,
            resource_count: st.entries.len(),
            paged_count: st.paged_count,
            proactive_evictions: o.proactive_evictions.get(),
            reactive_evictions: o.reactive_evictions.get(),
            weighted_evictions: o.weighted_evictions.get(),
            evicted_bytes: o.evicted_bytes.get(),
            registrations: o.registrations.get(),
        }
    }

    /// **Reactive unload** (paper §5): shrinks the paged pool to the lower
    /// limit (or to `0` if no limits are set), LRU order, weights ignored.
    /// Returns the bytes freed.
    pub fn reactive_unload(&self) -> usize {
        let target = self.paged_limits().map_or(0, |l| l.lower_bytes);
        self.unload_paged_to(target, false)
    }

    /// One pass of the **proactive unload**: if the paged pool exceeds the
    /// upper limit, evicts LRU paged resources until the lower limit is
    /// reached. Invoked by the background worker; callable directly in
    /// tests. Returns the bytes freed.
    pub fn proactive_unload(&self) -> usize {
        let Some(limits) = self.paged_limits() else { return 0 };
        if self.inner.state.lock().paged_bytes <= limits.upper_bytes {
            return 0;
        }
        self.unload_paged_to(limits.lower_bytes, true)
    }

    fn unload_paged_to(&self, target_bytes: usize, proactive: bool) -> usize {
        let victims = {
            let mut st = self.inner.state.lock();
            if st.paged_bytes <= target_bytes {
                return 0;
            }
            // Plain LRU over unpinned paged resources: ascending last_touch.
            let mut candidates: Vec<(u64, u64, usize)> = st
                .entries
                .iter()
                .filter(|(_, e)| e.disposition.is_paged() && e.pins == 0)
                .map(|(&id, e)| (e.last_touch, id, e.size))
                .collect();
            candidates.sort_unstable();
            let mut picked = Vec::new();
            let mut pool = st.paged_bytes;
            for (_, id, size) in candidates {
                if pool <= target_bytes {
                    break;
                }
                pool -= size;
                picked.push(id);
            }
            let victims = picked
                .into_iter()
                .filter_map(|id| remove_entry(&mut st, id))
                .collect::<Vec<_>>();
            self.inner.obs.sync(&st);
            victims
        };
        let count = victims.len();
        let freed = self.run_evictions(victims, if proactive {
            &self.inner.obs.proactive_evictions
        } else {
            &self.inner.obs.reactive_evictions
        });
        if proactive && count > 0 {
            // Sweep summary event: victims in `page_no`, bytes reclaimed.
            self.inner.obs.registry.tracer().emit(
                EventKind::ProactiveSweep,
                0,
                count as u64,
                freed as u64,
            );
        }
        freed
    }

    /// **Weighted-LRU sweep** for a global low-memory situation: evicts
    /// unpinned, evictable resources in descending `t / w` until at least
    /// `needed_bytes` are freed (paged resources are shrunk to the lower
    /// limit first, per the paper). Returns the bytes actually freed.
    pub fn handle_low_memory(&self, needed_bytes: usize) -> usize {
        let mut freed = self.reactive_unload();
        if freed >= needed_bytes {
            return freed;
        }
        let now = self.inner.clock.load(Ordering::Relaxed);
        let victims = {
            let mut st = self.inner.state.lock();
            let mut scored: Vec<(f64, u64, usize)> = st
                .entries
                .iter()
                .filter(|(_, e)| e.disposition.evictable() && e.pins == 0)
                .map(|(&id, e)| {
                    let t = (now - e.last_touch) as f64;
                    (t / e.disposition.weight(), id, e.size)
                })
                .collect();
            scored.sort_unstable_by(|a, b| b.0.total_cmp(&a.0));
            let mut picked = Vec::new();
            let mut acc = freed;
            for (_, id, size) in scored {
                if acc >= needed_bytes {
                    break;
                }
                acc += size;
                picked.push(id);
            }
            let victims = picked
                .into_iter()
                .filter_map(|id| remove_entry(&mut st, id))
                .collect::<Vec<_>>();
            self.inner.obs.sync(&st);
            victims
        };
        freed += self.run_evictions(victims, &self.inner.obs.weighted_evictions);
        freed
    }

    /// Runs callbacks outside the state lock and updates counters.
    fn run_evictions(&self, victims: Vec<Entry>, counter: &Counter) -> usize {
        let mut freed = 0usize;
        for v in &victims {
            freed += v.size;
            (v.on_evict)();
        }
        counter.add(victims.len() as u64);
        self.inner.obs.evicted_bytes.add(freed as u64);
        freed
    }

    fn maybe_wake_proactive(&self) {
        let Some(limits) = self.paged_limits() else { return };
        let over = self.inner.state.lock().paged_bytes > limits.upper_bytes;
        if over {
            if let Some(w) = self.inner.proactive.lock().as_ref() {
                w.wake();
            }
        }
    }

    /// Blocks until the proactive worker has processed all pending wake-ups.
    /// No-op when no worker is running. Used by tests and experiments that
    /// need deterministic pool sizes.
    pub fn quiesce(&self) {
        let guard = self.inner.proactive.lock();
        if let Some(w) = guard.as_ref() {
            w.quiesce();
        }
    }
}

fn remove_entry(st: &mut State, id: u64) -> Option<Entry> {
    let e = st.entries.remove(&id)?;
    st.total_bytes -= e.size;
    if e.disposition.is_paged() {
        st.paged_bytes -= e.size;
        st.paged_count -= 1;
    }
    assert_accounting(st);
    Some(e)
}

/// Recomputes the aggregate accounting from the entry map and asserts it
/// matches the incrementally maintained totals. Called after every
/// disposition/size change; O(entries), so it only does work under the
/// `strict-invariants` feature.
#[cfg(feature = "strict-invariants")]
fn assert_accounting(st: &State) {
    let total: usize = st.entries.values().map(|e| e.size).sum();
    let paged: usize =
        st.entries.values().filter(|e| e.disposition.is_paged()).map(|e| e.size).sum();
    let paged_count = st.entries.values().filter(|e| e.disposition.is_paged()).count();
    assert_eq!(st.total_bytes, total, "resman budget accounting: total_bytes drifted");
    assert_eq!(st.paged_bytes, paged, "resman budget accounting: paged_bytes drifted");
    assert_eq!(st.paged_count, paged_count, "resman budget accounting: paged_count drifted");
}

#[cfg(not(feature = "strict-invariants"))]
fn assert_accounting(_st: &State) {}

// The proactive worker needs access to proactive_unload through a weak ref.
impl Inner {
    pub(crate) fn proactive_pass(self: &Arc<Self>) {
        let m = ResourceManager { inner: Arc::clone(self) };
        m.proactive_unload();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counter_evict(counter: &Arc<AtomicUsize>) -> impl Fn() + Send + Sync + 'static {
        let c = Arc::clone(counter);
        move || {
            c.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn register_touch_deregister_accounting() {
        let m = ResourceManager::new();
        let a = m.register(100, Disposition::MidTerm, || {});
        let b = m.register(50, Disposition::PagedAttribute, || {});
        let s = m.stats();
        assert_eq!(s.total_bytes, 150);
        assert_eq!(s.paged_bytes, 50);
        assert_eq!(s.resource_count, 2);
        assert_eq!(s.paged_count, 1);
        m.resize(b, 80);
        assert_eq!(m.stats().paged_bytes, 80);
        assert_eq!(m.stats().total_bytes, 180);
        assert!(m.deregister(a));
        assert!(!m.deregister(a));
        assert_eq!(m.stats().total_bytes, 80);
    }

    #[test]
    fn reactive_unload_shrinks_to_lower_limit_in_lru_order() {
        let evicted = Arc::new(Mutex::new(Vec::new()));
        let m = ResourceManager::new();
        m.set_paged_limits(Some(PoolLimits::new(100, 1000)));
        let mut ids = Vec::new();
        for i in 0..5 {
            let log = Arc::clone(&evicted);
            ids.push(m.register(60, Disposition::PagedAttribute, move || log.lock().push(i)));
        }
        // Touch resource 0 so it is the most recently used.
        m.touch(ids[0]);
        let freed = m.reactive_unload();
        // 300 bytes -> need to drop to <=100: evict LRU (1, 2, 3, 4 in order
        // of last touch) until pool <= 100. Evicting 1,2,3 leaves 120; also 4
        // leaves 60 <= 100. Resource 0 (recently touched) survives.
        assert_eq!(freed, 240);
        assert_eq!(*evicted.lock(), vec![1, 2, 3, 4]);
        assert_eq!(m.stats().paged_bytes, 60);
        assert_eq!(m.stats().reactive_evictions, 4);
    }

    #[test]
    fn pinned_resources_are_never_evicted() {
        let hits = Arc::new(AtomicUsize::new(0));
        let m = ResourceManager::new();
        // Pin before limits exist: registering an unpinned resource over the
        // upper limit would race the async worker against our `pin` below.
        let id = m.register(100, Disposition::PagedAttribute, counter_evict(&hits));
        assert!(m.pin(id));
        m.set_paged_limits(Some(PoolLimits::new(0, 10)));
        m.quiesce();
        assert_eq!(m.reactive_unload(), 0);
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        assert_eq!(m.stats().paged_bytes, 100);
        m.unpin(id);
        assert_eq!(m.reactive_unload(), 100);
        assert_eq!(hits.load(Ordering::SeqCst), 1);
        // The id is gone now; pin must fail so callers reload.
        assert!(!m.pin(id));
    }

    #[test]
    fn proactive_unload_fires_above_upper_and_stops_at_lower() {
        let m = ResourceManager::new();
        // Register everything first: with limits already set, the worker may
        // run mid-loop, leaving the pool between the limits (no wake) at the
        // end. Setting limits afterwards wakes exactly one decisive pass.
        for _ in 0..10 {
            m.register(50, Disposition::PagedAttribute, || {});
        }
        // 500 bytes > upper 250: the background worker must bring the pool
        // down to <= 150.
        m.set_paged_limits(Some(PoolLimits::new(150, 250)));
        m.quiesce();
        let s = m.stats();
        assert!(s.paged_bytes <= 150, "pool {} > lower limit", s.paged_bytes);
        assert!(s.proactive_evictions >= 7);
    }

    #[test]
    fn proactive_is_a_noop_between_limits() {
        let m = ResourceManager::with_paged_limits(PoolLimits::new(100, 1000));
        m.register(500, Disposition::PagedAttribute, || {});
        m.quiesce();
        // 500 <= upper: proactive must not touch it (only reactive would).
        assert_eq!(m.stats().paged_bytes, 500);
        assert_eq!(m.proactive_unload(), 0);
    }

    #[test]
    fn weighted_lru_prefers_low_weight_and_old_resources() {
        let evicted = Arc::new(Mutex::new(Vec::new()));
        let m = ResourceManager::new();
        let log = |name: &'static str| {
            let e = Arc::clone(&evicted);
            move || e.lock().push(name)
        };
        let _tmp = m.register(10, Disposition::Temporary, log("temp"));
        let _short = m.register(10, Disposition::ShortTerm, log("short"));
        let long = m.register(10, Disposition::LongTerm, log("long"));
        let _ns = m.register(10, Disposition::NonSwappable, log("nonswap"));
        // Make `long` ancient relative to the others by touching the rest.
        for _ in 0..1000 {
            m.touch(_tmp);
            m.touch(_short);
        }
        let _ = long;
        let freed = m.handle_low_memory(15);
        assert!(freed >= 15);
        // NonSwappable must never appear.
        assert!(!evicted.lock().contains(&"nonswap"));
        // `long` was idle 1000+ ticks with weight 16 (score ~62); `temp` was
        // just touched but weight 0.25 — with tiny t its score is small, so
        // the ancient long-term resource goes first.
        assert_eq!(evicted.lock()[0], "long");
    }

    #[test]
    fn low_memory_drains_paged_pool_first() {
        let m = ResourceManager::new();
        m.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        m.register(100, Disposition::PagedAttribute, || {});
        let keep = m.register(100, Disposition::MidTerm, || {});
        let freed = m.handle_low_memory(100);
        assert_eq!(freed, 100);
        // The mid-term resource survives because paged covered the need.
        assert_eq!(m.stats().total_bytes, 100);
        assert!(m.pin(keep));
    }

    #[test]
    fn eviction_callbacks_run_outside_locks() {
        // A callback that itself queries the manager must not deadlock.
        let m = ResourceManager::new();
        let m2 = m.clone();
        m.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        m.register(10, Disposition::PagedAttribute, move || {
            let _ = m2.stats();
        });
        assert_eq!(m.reactive_unload(), 10);
    }
}
