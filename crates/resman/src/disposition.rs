//! Resource dispositions: cache-eviction categories.

/// Categorizes the cache eviction policy for a resource (paper §5).
///
/// The weighted LRU evicts unused resources in descending `t / w`, so a
/// *smaller* weight makes a resource a *more* attractive victim at equal
/// idle time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Disposition {
    /// Can never be unloaded (e.g. system catalogs, delta fragments).
    NonSwappable,
    /// Long-lived hot structures; evicted only as a last resort.
    LongTerm,
    /// Ordinary cached structures (fully-resident column mains by default).
    MidTerm,
    /// Structures expected to be re-created cheaply.
    ShortTerm,
    /// Expected to be unloaded as soon as no longer needed.
    Temporary,
    /// A piece (page or transient structure) of a page-loadable column.
    /// Accounted in the dedicated paged pool; evicted by the reactive and
    /// proactive mechanisms, where the weight plays no role (plain LRU).
    PagedAttribute,
}

impl Disposition {
    /// The weight `w` used by the weighted-LRU score `t / w`.
    pub fn weight(self) -> f64 {
        match self {
            Disposition::NonSwappable => f64::INFINITY,
            Disposition::LongTerm => 16.0,
            Disposition::MidTerm => 4.0,
            Disposition::ShortTerm => 2.0,
            Disposition::Temporary => 0.25,
            // Within the paged pool the weight is ignored; for global
            // low-memory sweeps paged pieces count as ordinary cache.
            Disposition::PagedAttribute => 1.0,
        }
    }

    /// True when the resource may be selected as an eviction victim.
    pub fn evictable(self) -> bool {
        !matches!(self, Disposition::NonSwappable)
    }

    /// True when the resource is accounted in the paged-attribute pool.
    pub fn is_paged(self) -> bool {
        matches!(self, Disposition::PagedAttribute)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_order_eviction_priority() {
        // Lower weight ⇒ higher t/w ⇒ evicted earlier.
        assert!(Disposition::Temporary.weight() < Disposition::ShortTerm.weight());
        assert!(Disposition::ShortTerm.weight() < Disposition::MidTerm.weight());
        assert!(Disposition::MidTerm.weight() < Disposition::LongTerm.weight());
        assert!(Disposition::LongTerm.weight() < Disposition::NonSwappable.weight());
    }

    #[test]
    fn non_swappable_is_never_evictable() {
        assert!(!Disposition::NonSwappable.evictable());
        assert!(Disposition::PagedAttribute.evictable());
        assert!(Disposition::PagedAttribute.is_paged());
        assert!(!Disposition::MidTerm.is_paged());
    }
}
