//! Asynchronous proactive-unload worker.
//!
//! The proactive unload "is executed asynchronously, meaning that it does
//! not block the creation of new paged attribute resources" (paper §5). The
//! manager sends a wake-up whenever the paged pool crosses the upper limit;
//! the worker then evicts LRU until the lower limit is reached. Between the
//! wake-up and the pass completing, the pool may exceed the upper limit —
//! that transient overshoot is intended and tested.

use crate::manager::Inner;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::Weak;
use std::thread::JoinHandle;

pub(crate) enum Msg {
    /// The paged pool crossed the upper limit: run a pass.
    Wake,
    /// Test/experiment barrier: reply once all prior messages are processed.
    Quiesce(Sender<()>),
}

pub(crate) struct ProactiveWorker {
    tx: Sender<Msg>,
    _handle: JoinHandle<()>,
}

impl ProactiveWorker {
    pub(crate) fn spawn(inner: Weak<Inner>) -> Self {
        let (tx, rx) = unbounded();
        let handle = std::thread::Builder::new()
            .name("payg-proactive-unload".into())
            .spawn(move || run(inner, rx))
            // lint: allow(unwrap) thread spawn fails only on OS resource exhaustion
            .expect("spawn proactive unload worker");
        ProactiveWorker { tx, _handle: handle }
    }

    pub(crate) fn wake(&self) {
        // A full channel of pending wakes collapses into one pass anyway;
        // failure means the worker is gone (manager dropped), which is fine.
        let _ = self.tx.send(Msg::Wake);
    }

    pub(crate) fn quiesce(&self) {
        let (ack_tx, ack_rx) = unbounded();
        if self.tx.send(Msg::Quiesce(ack_tx)).is_ok() {
            let _ = ack_rx.recv();
        }
    }
}

fn run(inner: Weak<Inner>, rx: Receiver<Msg>) {
    // Exits when the manager is dropped (sender closed or upgrade fails).
    while let Ok(msg) = rx.recv() {
        let mut run_pass = false;
        let mut acks: Vec<Sender<()>> = Vec::new();
        match msg {
            Msg::Wake => run_pass = true,
            Msg::Quiesce(ack) => acks.push(ack),
        }
        // Coalesce bursts of wake-ups into a single pass; collect quiesce
        // barriers so their acks are sent only after the pass completes.
        loop {
            match rx.try_recv() {
                Ok(Msg::Wake) => run_pass = true,
                Ok(Msg::Quiesce(ack)) => acks.push(ack),
                Err(_) => break,
            }
        }
        if run_pass {
            let Some(inner) = inner.upgrade() else { return };
            inner.proactive_pass();
        }
        for ack in acks {
            let _ = ack.send(());
        }
    }
}
