//! Resource manager: memory accounting and piecewise eviction (paper §5).
//!
//! SAP HANA manages memory for *logical resources* rather than just physical
//! pages: a fully-resident column registers as a single resource, whereas a
//! page-loadable column registers **each loaded page** as a separate
//! resource. This crate reproduces that model:
//!
//! * Every resource carries a [`Disposition`] that categorizes its cache
//!   eviction policy, from [`Disposition::NonSwappable`] (never evicted) to
//!   [`Disposition::Temporary`] (evicted as soon as unused). Resources of
//!   page-loadable columns use [`Disposition::PagedAttribute`].
//! * A low-memory situation evicts unused resources in descending `t / w`
//!   order, where `t` is the time since last touch and `w` the disposition
//!   weight (**weighted LRU**).
//! * Paged-attribute resources live in a dedicated pool with a *lower* and an
//!   *upper* limit. The **reactive** unload shrinks the pool to the lower
//!   limit under memory pressure; the **proactive** unload runs
//!   asynchronously whenever the pool exceeds the upper limit and evicts
//!   plain-LRU (weights intentionally ignored, as in the paper) until the
//!   lower limit is reached. Because it is asynchronous, the pool may
//!   transiently exceed the upper limit — loads are never blocked.
//!
//! Pinned resources (see [`ResourceManager::pin`]) are never evicted; page
//! iterators hold pins for exactly as long as the paper prescribes.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod disposition;
mod manager;
mod proactive;
mod stats;
pub mod sync;

pub use disposition::Disposition;
pub use manager::{PoolLimits, ResourceId, ResourceManager};
pub use stats::MemoryStats;
