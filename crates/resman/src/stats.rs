//! Memory accounting counters.
//!
//! Experiments read these to plot the paper's "system memory footprint"
//! series: the footprint is the sum of all registered resource sizes, which
//! is exactly what HANA's resource manager tracks.

/// A point-in-time snapshot of the resource manager's accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// Total bytes across all registered resources.
    pub total_bytes: usize,
    /// Bytes registered with [`crate::Disposition::PagedAttribute`]
    /// (the paged pool).
    pub paged_bytes: usize,
    /// Bytes committed to I/O-stage reads currently in flight (charged via
    /// [`crate::ResourceManager::begin_inflight`], not yet resources).
    pub inflight_bytes: usize,
    /// Number of in-flight I/O-stage reads currently charged.
    pub inflight_count: usize,
    /// Number of currently registered resources.
    pub resource_count: usize,
    /// Number of currently registered paged-attribute resources.
    pub paged_count: usize,
    /// Cumulative resources evicted by the proactive mechanism.
    pub proactive_evictions: u64,
    /// Cumulative resources evicted by the reactive mechanism.
    pub reactive_evictions: u64,
    /// Cumulative resources evicted by global weighted-LRU sweeps.
    pub weighted_evictions: u64,
    /// Cumulative bytes freed by evictions of any kind.
    pub evicted_bytes: u64,
    /// Cumulative registrations (loads).
    pub registrations: u64,
}
