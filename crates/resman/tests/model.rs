//! Model checks of the **real** `ResourceManager` under `--cfg payg_check`.
//!
//! These are regression proofs for the two races the seed's tests used to
//! hit on wall-clock timing (patched in PR 1 by `register_pinned` and by
//! reordering registration before `set_paged_limits`):
//!
//! * the **old racy pattern** — register unpinned, then pin — is shown to
//!   actually lose the race against a concurrent unload pass (the checker
//!   *finds* a failing schedule), and
//! * the **fixed pattern** — `register_pinned` — is shown to hold under
//!   every explored interleaving of the same unload pass.
//!
//! Limits are set via `set_paged_limits_manual` so no background worker
//! thread exists: the unload pass runs as a modeled thread instead,
//! which is what makes the schedules explorable and replayable.
//!
//! Build/run: `RUSTFLAGS="--cfg payg_check" cargo test -p payg-resman --test model`
#![cfg(payg_check)]

use payg_check::{thread, Checker};
use payg_resman::{Disposition, PoolLimits, ResourceManager};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const BOUND: usize = 2000;

#[test]
fn old_register_then_pin_pattern_loses_the_race() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let m = ResourceManager::new();
        m.set_paged_limits_manual(Some(PoolLimits::new(0, 10)));
        let m2 = m.clone();
        let unloader = thread::spawn(move || {
            m2.proactive_unload();
        });
        // The seed test's original shape: register over the upper limit,
        // THEN pin. The unload pass can run in between and evict the
        // resource before the pin lands.
        let id = m.register(100, Disposition::PagedAttribute, || {});
        assert!(m.pin(id), "resource evicted before pin — the race the seed test hit");
        unloader.join().expect("model thread");
    });
    let failure = report.failure.expect("the register-then-pin race must be found");
    assert!(
        failure.message.contains("the race the seed test hit"),
        "unexpected failure message: {}",
        failure.message
    );
}

#[test]
fn register_pinned_holds_under_all_explored_interleavings() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let evictions = Arc::new(AtomicUsize::new(0));
        let m = ResourceManager::new();
        m.set_paged_limits_manual(Some(PoolLimits::new(0, 10)));
        let m2 = m.clone();
        let unloader = thread::spawn(move || {
            m2.proactive_unload();
        });
        // The fix: registration and the first pin are one atomic step, so
        // no unload pass can slip between them.
        let e = Arc::clone(&evictions);
        let id = m.register_pinned(100, Disposition::PagedAttribute, move || {
            e.fetch_add(1, Ordering::SeqCst);
        });
        unloader.join().expect("model thread");
        assert_eq!(evictions.load(Ordering::SeqCst), 0, "pinned resource was evicted");
        assert_eq!(m.stats().paged_bytes, 100);
        // Once unpinned, the next pass must evict it (limits still exceeded).
        m.unpin(id);
        m.proactive_unload();
        assert_eq!(evictions.load(Ordering::SeqCst), 1);
        assert_eq!(m.stats().paged_bytes, 0, "paged pool must respect limits after quiesce");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
    assert!(report.exhausted, "this model should be small enough to exhaust");
}
