//! Concurrency stress for the resource manager: registrations, touches,
//! pins and evictions racing across threads must keep the accounting exact
//! and never evict a pinned resource.

use payg_resman::{Disposition, PoolLimits, ResourceManager};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[test]
fn racing_registrations_and_evictions_keep_accounting_exact() {
    let m = ResourceManager::with_paged_limits(PoolLimits::new(10_000, 20_000));
    let evicted = Arc::new(AtomicU64::new(0));
    std::thread::scope(|s| {
        for t in 0..4 {
            let m = m.clone();
            let evicted = Arc::clone(&evicted);
            s.spawn(move || {
                let mut ids = Vec::new();
                for i in 0..500u64 {
                    let e = Arc::clone(&evicted);
                    let id = m.register(100, Disposition::PagedAttribute, move || {
                        e.fetch_add(100, Ordering::Relaxed);
                    });
                    ids.push(id);
                    if i % 7 == t {
                        m.touch(ids[ids.len() / 2]);
                    }
                    if i % 13 == 0 {
                        m.reactive_unload();
                    }
                }
            });
        }
    });
    m.quiesce();
    let stats = m.stats();
    // Conservation: everything registered is either still accounted or was
    // evicted (deregistration is only done by eviction callbacks here).
    let registered_bytes = 4 * 500 * 100u64;
    assert_eq!(
        stats.paged_bytes as u64 + stats.evicted_bytes,
        registered_bytes,
        "bytes conserved across races"
    );
    assert_eq!(evicted.load(Ordering::Relaxed), stats.evicted_bytes);
    assert_eq!(stats.registrations, 2_000);
}

#[test]
fn pinned_resources_survive_concurrent_eviction_storm() {
    let m = ResourceManager::with_paged_limits(PoolLimits::new(0, 1));
    let mut pinned = Vec::new();
    for _ in 0..50 {
        let id = m.register_pinned(64, Disposition::PagedAttribute, || {
            panic!("pinned resource must never be evicted");
        });
        pinned.push(id);
    }
    std::thread::scope(|s| {
        for _ in 0..4 {
            let m = m.clone();
            s.spawn(move || {
                for _ in 0..200 {
                    m.reactive_unload();
                    m.proactive_unload();
                    m.handle_low_memory(1_000_000);
                }
            });
        }
    });
    m.quiesce();
    assert_eq!(m.stats().paged_count, 50, "all pinned resources survive");
    // Voluntary release never fires eviction callbacks.
    for id in pinned {
        m.unpin(id);
        assert!(m.deregister(id));
    }
    assert_eq!(m.stats().paged_count, 0);
}

#[test]
fn unpinned_after_storm_can_be_evicted_without_callbacks_firing_twice() {
    let m = ResourceManager::new();
    m.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
    let fired = Arc::new(AtomicU64::new(0));
    let mut ids = Vec::new();
    for _ in 0..100 {
        let f = Arc::clone(&fired);
        ids.push(m.register(10, Disposition::PagedAttribute, move || {
            f.fetch_add(1, Ordering::Relaxed);
        }));
    }
    // Four threads race to evict the same pool; each resource's callback
    // must fire exactly once.
    std::thread::scope(|s| {
        for _ in 0..4 {
            let m = m.clone();
            s.spawn(move || {
                m.reactive_unload();
            });
        }
    });
    assert_eq!(fired.load(Ordering::Relaxed), 100);
    assert_eq!(m.stats().paged_count, 0);
    // Deregistering evicted ids is a no-op, not a double free.
    for id in ids {
        assert!(!m.deregister(id));
    }
}
