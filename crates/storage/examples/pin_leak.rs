//! Demonstrates the `strict-invariants` pin-leak detector at the public
//! `BufferPool` surface: a live guard at a quiesce point panics with the
//! pin's origin; after the guard drops the same check passes.
//!
//! ```bash
//! cargo run -p payg-storage --example pin_leak --features strict-invariants
//! ```

use payg_resman::ResourceManager;
use payg_storage::{BufferPool, MemStore, PageKey, PageStore};
use std::sync::Arc;

fn main() {
    let store = MemStore::new();
    let chain = store.create_chain(32).expect("create chain");
    store.append_page(chain, b"hello, page").expect("append page");
    let pool = BufferPool::new(Arc::new(store), ResourceManager::new());

    let guard = pool.pin(PageKey::new(chain, 0)).expect("pin page");
    println!("pinned page 0: {:?}", &guard[..11]);

    // A quiesce check while the guard is still live must fail loudly.
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        pool.assert_no_live_pins("example quiesce point");
    }));
    match caught {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<String>()
                .cloned()
                .unwrap_or_else(|| "<non-string panic>".into());
            println!("leak detected, as intended:\n  {msg}");
        }
        Ok(()) => {
            if cfg!(feature = "strict-invariants") {
                panic!("strict-invariants build failed to flag a live pin");
            }
            println!("(strict-invariants off: the check is a no-op — rerun with --features strict-invariants)");
        }
    }

    drop(guard);
    pool.assert_no_live_pins("example quiesce point");
    println!("guard dropped: quiesce check passes");
}
