//! Buffer-pool metrics: pool-wide counters plus per-shard activity.
//!
//! All counters are `payg-obs` registry handles, registered in the pool's
//! [`payg_obs::Registry`] (shared with the resource manager) under the
//! `pool_*` names with a `pool="<instance>"` label, so one registry
//! snapshot carries every pool's series next to the `resman_*` ones. The
//! [`crate::PoolMetrics`] / [`ShardMetrics`] structs remain the exact
//! per-pool view (reads of this pool's own handles, never another
//! instance's).

use crate::error::FaultClass;
use payg_obs::{names, Counter, Histogram, Registry};

/// Pool-wide counters (not attributable to a single shard).
pub(crate) struct MetricCounters {
    pub loads: Counter,
    pub bytes_loaded: Counter,
    pub load_waits: Counter,
    pub prefetches: Counter,
    /// Load attempts re-issued after a transient fault.
    pub load_retries: Counter,
    /// Store faults by class — counted per *attempt* (a fault later absorbed
    /// by a successful retry still counts), so the series measures store
    /// health, not just surfaced errors.
    pub faults_transient: Counter,
    pub faults_corrupt: Counter,
    pub faults_logical: Counter,
    /// Pages placed in quarantine after a permanent load failure.
    pub quarantine_inserts: Counter,
    /// Pins failed fast from quarantine without touching the store.
    pub quarantine_fail_fast: Counter,
    /// Warm pin latency in nanoseconds — pins served from a resident frame
    /// only. Cold pins (loaders and single-flight waiters) record into
    /// `load_ns` instead, so this series stays readable at ~100ns scale.
    pub pin_ns: Histogram,
    /// Cold pin latency in nanoseconds — pins that started or joined a load.
    pub load_ns: Histogram,
    /// Fetch requests submitted to the I/O stage (urgent + prefetch).
    pub io_submitted: Counter,
    /// Requests served by a multi-page coalesced read.
    pub io_coalesced: Counter,
    /// Requests completed by the I/O stage (successes and failures).
    pub io_completions: Counter,
    /// Physical store reads issued by the I/O stage (a coalesced ranged
    /// read counts once however many pages it covers).
    pub io_physical_reads: Counter,
    /// Pages-per-physical-read histogram.
    pub io_batch_pages: Histogram,
    /// Submission-queue depth, sampled at each submit.
    pub io_queue_depth: Histogram,
    /// Prefetch submissions shed by the bounded queue (urgent submissions
    /// are never shed).
    pub io_shed: Counter,
}

impl MetricCounters {
    pub fn register(registry: &Registry, pool_label: &str) -> Self {
        let l: &[(&str, &str)] = &[("pool", pool_label)];
        let fault = |kind: &str| {
            registry.counter_labeled(names::POOL_LOAD_FAULTS, &[("pool", pool_label), ("kind", kind)])
        };
        MetricCounters {
            loads: registry.counter_labeled(names::POOL_LOADS, l),
            bytes_loaded: registry.counter_labeled(names::POOL_BYTES_LOADED, l),
            load_waits: registry.counter_labeled(names::POOL_LOAD_WAITS, l),
            prefetches: registry.counter_labeled(names::POOL_PREFETCHES, l),
            load_retries: registry.counter_labeled(names::POOL_LOAD_RETRIES, l),
            faults_transient: fault(FaultClass::Transient.label()),
            faults_corrupt: fault(FaultClass::Corrupt.label()),
            faults_logical: fault(FaultClass::Logical.label()),
            quarantine_inserts: registry.counter_labeled(names::POOL_QUARANTINE_INSERTS, l),
            quarantine_fail_fast: registry.counter_labeled(names::POOL_QUARANTINE_FAIL_FAST, l),
            pin_ns: registry.histogram_labeled(names::POOL_PIN_NS, l),
            load_ns: registry.histogram_labeled(names::POOL_LOAD_NS, l),
            io_submitted: registry.counter_labeled(names::POOL_IO_SUBMITTED, l),
            io_coalesced: registry.counter_labeled(names::POOL_IO_COALESCED, l),
            io_completions: registry.counter_labeled(names::POOL_IO_COMPLETIONS, l),
            io_physical_reads: registry.counter_labeled(names::POOL_IO_PHYSICAL_READS, l),
            io_batch_pages: registry.histogram_labeled(names::POOL_IO_BATCH_PAGES, l),
            io_queue_depth: registry.histogram_labeled(names::POOL_IO_QUEUE_DEPTH, l),
            io_shed: registry.counter_labeled(names::POOL_IO_SHED, l),
        }
    }

    /// The fault counter for one class.
    pub fn fault_counter(&self, class: FaultClass) -> &Counter {
        match class {
            FaultClass::Transient => &self.faults_transient,
            FaultClass::Corrupt => &self.faults_corrupt,
            FaultClass::Logical => &self.faults_logical,
        }
    }
}

/// Per-shard counters. `hits`/`misses` partition the pin calls that reached
/// this shard; `contended` counts lock acquisitions that had to block.
pub(crate) struct ShardCounters {
    pub hits: Counter,
    pub misses: Counter,
    pub contended: Counter,
}

impl ShardCounters {
    pub fn register(registry: &Registry, pool_label: &str, shard: usize) -> Self {
        let shard = shard.to_string();
        let l: &[(&str, &str)] = &[("pool", pool_label), ("shard", &shard)];
        ShardCounters {
            hits: registry.counter_labeled(names::POOL_SHARD_HITS, l),
            misses: registry.counter_labeled(names::POOL_SHARD_MISSES, l),
            contended: registry.counter_labeled(names::POOL_SHARD_CONTENDED, l),
        }
    }

    pub fn snapshot(&self) -> ShardMetrics {
        ShardMetrics {
            hits: self.hits.get(),
            misses: self.misses.get(),
            contended: self.contended.get(),
        }
    }
}

/// A snapshot of one shard's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Pin calls served from a resident frame.
    pub hits: u64,
    /// Pin calls that started a load (includes failed loads).
    pub misses: u64,
    /// Shard-lock acquisitions that found the lock held (contention probe).
    pub contended: u64,
}

/// A snapshot of buffer-pool activity. Experiments use `loads` to count page
/// I/O per query (the source of the paper's run-time-ratio spikes). The
/// hit/miss/contention fields are rolled up over all shards; call
/// [`crate::BufferPool::shard_metrics`] for the per-shard breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Page loads (pool misses that read from the store successfully).
    pub loads: u64,
    /// Pool hits (page already resident).
    pub hits: u64,
    /// Pin calls that did not find a resident frame: loaders (successful or
    /// not), waiters whose single-flight load failed, and quarantine
    /// fail-fasts. `misses - loads` is the number of *failed* pins; every
    /// pin call lands in exactly one of `hits` or `misses`, so
    /// `hits + misses == pins` always holds.
    pub misses: u64,
    /// Total bytes read from the store.
    pub bytes_loaded: u64,
    /// Pin calls that waited for another thread's in-flight load.
    pub load_waits: u64,
    /// Shard-lock acquisitions that found the lock held, over all shards.
    pub contended: u64,
    /// Pages pinned by prefetch workers.
    pub prefetches: u64,
    /// Load attempts re-issued after a transient fault.
    pub load_retries: u64,
    /// Store faults observed across all classes, counted per attempt
    /// (includes faults later absorbed by a successful retry).
    pub load_faults: u64,
    /// Pages placed in quarantine after a permanent load failure.
    pub quarantine_inserts: u64,
    /// Pins failed fast from quarantine without touching the store.
    pub quarantine_fail_fast: u64,
    /// Fetch requests submitted to the cold-path I/O stage (urgent demand
    /// loads plus accepted prefetches). 0 when the stage is disabled.
    pub io_submitted: u64,
    /// Requests whose page rode a multi-page coalesced read.
    pub io_coalesced: u64,
    /// Fetch requests completed by the I/O stage, successes and failures
    /// alike.
    pub io_completions: u64,
    /// Physical store reads issued by the I/O stage; a coalesced ranged
    /// read counts once. `io_completions / io_physical_reads` is the
    /// stage's coalescing ratio (pages per physical read).
    pub io_physical_reads: u64,
    /// Prefetch submissions shed by the stage's bounded queue.
    pub io_shed: u64,
}

impl PoolMetrics {
    /// Field-wise difference against an earlier snapshot of the same pool
    /// (saturating, so a mismatched baseline degrades to zeros rather than
    /// wrapping). Benches use this to attribute counter movement to one
    /// measured phase.
    pub fn delta(&self, earlier: &PoolMetrics) -> PoolMetrics {
        PoolMetrics {
            loads: self.loads.saturating_sub(earlier.loads),
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            bytes_loaded: self.bytes_loaded.saturating_sub(earlier.bytes_loaded),
            load_waits: self.load_waits.saturating_sub(earlier.load_waits),
            contended: self.contended.saturating_sub(earlier.contended),
            prefetches: self.prefetches.saturating_sub(earlier.prefetches),
            load_retries: self.load_retries.saturating_sub(earlier.load_retries),
            load_faults: self.load_faults.saturating_sub(earlier.load_faults),
            quarantine_inserts: self.quarantine_inserts.saturating_sub(earlier.quarantine_inserts),
            quarantine_fail_fast: self
                .quarantine_fail_fast
                .saturating_sub(earlier.quarantine_fail_fast),
            io_submitted: self.io_submitted.saturating_sub(earlier.io_submitted),
            io_coalesced: self.io_coalesced.saturating_sub(earlier.io_coalesced),
            io_completions: self.io_completions.saturating_sub(earlier.io_completions),
            io_physical_reads: self.io_physical_reads.saturating_sub(earlier.io_physical_reads),
            io_shed: self.io_shed.saturating_sub(earlier.io_shed),
        }
    }
}
