//! Buffer-pool metrics.

use std::sync::atomic::{AtomicU64, Ordering};

#[derive(Default)]
pub(crate) struct MetricCounters {
    pub loads: AtomicU64,
    pub hits: AtomicU64,
    pub bytes_loaded: AtomicU64,
}

impl MetricCounters {
    pub fn snapshot(&self) -> PoolMetrics {
        PoolMetrics {
            loads: self.loads.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            bytes_loaded: self.bytes_loaded.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of buffer-pool activity. Experiments use `loads` to count page
/// I/O per query (the source of the paper's run-time-ratio spikes).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Page loads (pool misses that read from the store).
    pub loads: u64,
    /// Pool hits (page already resident).
    pub hits: u64,
    /// Total bytes read from the store.
    pub bytes_loaded: u64,
}
