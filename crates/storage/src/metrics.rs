//! Buffer-pool metrics: pool-wide counters plus per-shard activity.

use std::sync::atomic::{AtomicU64, Ordering};

/// Pool-wide counters (not attributable to a single shard).
#[derive(Default)]
pub(crate) struct MetricCounters {
    pub loads: AtomicU64,
    pub bytes_loaded: AtomicU64,
    pub load_waits: AtomicU64,
    pub prefetches: AtomicU64,
}

/// Per-shard counters. `hits`/`misses` partition the pin calls that reached
/// this shard; `contended` counts lock acquisitions that had to block.
#[derive(Default)]
pub(crate) struct ShardCounters {
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub contended: AtomicU64,
}

impl ShardCounters {
    pub fn snapshot(&self) -> ShardMetrics {
        ShardMetrics {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            contended: self.contended.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of one shard's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Pin calls served from a resident frame.
    pub hits: u64,
    /// Pin calls that started a load (includes failed loads).
    pub misses: u64,
    /// Shard-lock acquisitions that found the lock held (contention probe).
    pub contended: u64,
}

/// A snapshot of buffer-pool activity. Experiments use `loads` to count page
/// I/O per query (the source of the paper's run-time-ratio spikes). The
/// hit/miss/contention fields are rolled up over all shards; call
/// [`crate::BufferPool::shard_metrics`] for the per-shard breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Page loads (pool misses that read from the store successfully).
    pub loads: u64,
    /// Pool hits (page already resident).
    pub hits: u64,
    /// Total bytes read from the store.
    pub bytes_loaded: u64,
    /// Pin calls that waited for another thread's in-flight load.
    pub load_waits: u64,
    /// Shard-lock acquisitions that found the lock held, over all shards.
    pub contended: u64,
    /// Pages pinned by prefetch workers.
    pub prefetches: u64,
}
