//! Buffer-pool metrics: pool-wide counters plus per-shard activity.
//!
//! All counters are `payg-obs` registry handles, registered in the pool's
//! [`payg_obs::Registry`] (shared with the resource manager) under the
//! `pool_*` names with a `pool="<instance>"` label, so one registry
//! snapshot carries every pool's series next to the `resman_*` ones. The
//! [`crate::PoolMetrics`] / [`ShardMetrics`] structs remain the exact
//! per-pool view (reads of this pool's own handles, never another
//! instance's).

use crate::error::FaultClass;
use payg_obs::{names, Counter, Histogram, Registry};

/// Pool-wide counters (not attributable to a single shard).
pub(crate) struct MetricCounters {
    pub loads: Counter,
    pub bytes_loaded: Counter,
    pub load_waits: Counter,
    pub prefetches: Counter,
    /// Load attempts re-issued after a transient fault.
    pub load_retries: Counter,
    /// Store faults by class — counted per *attempt* (a fault later absorbed
    /// by a successful retry still counts), so the series measures store
    /// health, not just surfaced errors.
    pub faults_transient: Counter,
    pub faults_corrupt: Counter,
    pub faults_logical: Counter,
    /// Pages placed in quarantine after a permanent load failure.
    pub quarantine_inserts: Counter,
    /// Pins failed fast from quarantine without touching the store.
    pub quarantine_fail_fast: Counter,
    /// Pin latency in nanoseconds — hits and misses alike, so the bimodal
    /// split (warm ~100ns vs cold ~I/O latency) is visible in the buckets.
    pub pin_ns: Histogram,
}

impl MetricCounters {
    pub fn register(registry: &Registry, pool_label: &str) -> Self {
        let l: &[(&str, &str)] = &[("pool", pool_label)];
        let fault = |kind: &str| {
            registry.counter_labeled(names::POOL_LOAD_FAULTS, &[("pool", pool_label), ("kind", kind)])
        };
        MetricCounters {
            loads: registry.counter_labeled(names::POOL_LOADS, l),
            bytes_loaded: registry.counter_labeled(names::POOL_BYTES_LOADED, l),
            load_waits: registry.counter_labeled(names::POOL_LOAD_WAITS, l),
            prefetches: registry.counter_labeled(names::POOL_PREFETCHES, l),
            load_retries: registry.counter_labeled(names::POOL_LOAD_RETRIES, l),
            faults_transient: fault(FaultClass::Transient.label()),
            faults_corrupt: fault(FaultClass::Corrupt.label()),
            faults_logical: fault(FaultClass::Logical.label()),
            quarantine_inserts: registry.counter_labeled(names::POOL_QUARANTINE_INSERTS, l),
            quarantine_fail_fast: registry.counter_labeled(names::POOL_QUARANTINE_FAIL_FAST, l),
            pin_ns: registry.histogram_labeled(names::POOL_PIN_NS, l),
        }
    }

    /// The fault counter for one class.
    pub fn fault_counter(&self, class: FaultClass) -> &Counter {
        match class {
            FaultClass::Transient => &self.faults_transient,
            FaultClass::Corrupt => &self.faults_corrupt,
            FaultClass::Logical => &self.faults_logical,
        }
    }
}

/// Per-shard counters. `hits`/`misses` partition the pin calls that reached
/// this shard; `contended` counts lock acquisitions that had to block.
pub(crate) struct ShardCounters {
    pub hits: Counter,
    pub misses: Counter,
    pub contended: Counter,
}

impl ShardCounters {
    pub fn register(registry: &Registry, pool_label: &str, shard: usize) -> Self {
        let shard = shard.to_string();
        let l: &[(&str, &str)] = &[("pool", pool_label), ("shard", &shard)];
        ShardCounters {
            hits: registry.counter_labeled(names::POOL_SHARD_HITS, l),
            misses: registry.counter_labeled(names::POOL_SHARD_MISSES, l),
            contended: registry.counter_labeled(names::POOL_SHARD_CONTENDED, l),
        }
    }

    pub fn snapshot(&self) -> ShardMetrics {
        ShardMetrics {
            hits: self.hits.get(),
            misses: self.misses.get(),
            contended: self.contended.get(),
        }
    }
}

/// A snapshot of one shard's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardMetrics {
    /// Pin calls served from a resident frame.
    pub hits: u64,
    /// Pin calls that started a load (includes failed loads).
    pub misses: u64,
    /// Shard-lock acquisitions that found the lock held (contention probe).
    pub contended: u64,
}

/// A snapshot of buffer-pool activity. Experiments use `loads` to count page
/// I/O per query (the source of the paper's run-time-ratio spikes). The
/// hit/miss/contention fields are rolled up over all shards; call
/// [`crate::BufferPool::shard_metrics`] for the per-shard breakdown.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Page loads (pool misses that read from the store successfully).
    pub loads: u64,
    /// Pool hits (page already resident).
    pub hits: u64,
    /// Pin calls that did not find a resident frame: loaders (successful or
    /// not), waiters whose single-flight load failed, and quarantine
    /// fail-fasts. `misses - loads` is the number of *failed* pins; every
    /// pin call lands in exactly one of `hits` or `misses`, so
    /// `hits + misses == pins` always holds.
    pub misses: u64,
    /// Total bytes read from the store.
    pub bytes_loaded: u64,
    /// Pin calls that waited for another thread's in-flight load.
    pub load_waits: u64,
    /// Shard-lock acquisitions that found the lock held, over all shards.
    pub contended: u64,
    /// Pages pinned by prefetch workers.
    pub prefetches: u64,
    /// Load attempts re-issued after a transient fault.
    pub load_retries: u64,
    /// Store faults observed across all classes, counted per attempt
    /// (includes faults later absorbed by a successful retry).
    pub load_faults: u64,
    /// Pages placed in quarantine after a permanent load failure.
    pub quarantine_inserts: u64,
    /// Pins failed fast from quarantine without touching the store.
    pub quarantine_fail_fast: u64,
}
