//! Page stores: durable (file-backed) and in-memory, plus fault injection.

use crate::sync::{Condvar, Mutex};
use crate::{ChainId, PageKey, StorageError, StorageResult};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How latency-simulating stores ([`LatencyStore`], [`TieredStore`],
/// [`IoProfile`]) spend their configured delay. The default performs a real
/// `thread::sleep`; tests inject a recording sleeper so latency behavior is
/// asserted on the *requested durations* instead of wall-clock time.
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// The real-time sleeper used when none is injected. This is the one
/// sanctioned blocking sink for simulated I/O latency.
pub fn real_sleeper() -> Sleeper {
    // lint: allow(sleep) sole sanctioned real-time sink for simulated I/O latency
    Arc::new(std::thread::sleep)
}

/// A store of page chains. Pages are fixed-size raw byte arrays; all layout
/// (headers, counts, offsets) is the responsibility of the structures
/// persisted on top.
pub trait PageStore: Send + Sync {
    /// Creates a new, empty chain whose pages are `page_size` bytes.
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId>;
    /// Appends a page. `payload` may be shorter than the page size (it is
    /// zero-padded) but never longer. Returns the new logical page number.
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64>;
    /// Reads one full page.
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>>;
    /// Number of pages in the chain.
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64>;
    /// The chain's page size in bytes.
    fn page_size(&self, chain: ChainId) -> StorageResult<usize>;
    /// Deletes a chain and its pages.
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()>;
    /// All existing chains (used when reopening a durable store).
    fn chains(&self) -> Vec<ChainId>;
}

/// Synthetic I/O latency applied by the buffer pool on every page load.
///
/// On this reproduction's hardware the file store is served from the OS page
/// cache, so the paper's load-cost ≫ memory-access-cost gap would vanish;
/// experiments set a per-load latency to model cold storage. The default is
/// zero (no simulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoProfile {
    /// Added to every page load (buffer-pool miss).
    pub read_latency: Duration,
}

impl IoProfile {
    /// No synthetic latency.
    pub const NONE: IoProfile = IoProfile { read_latency: Duration::ZERO };

    /// A profile with the given per-read latency.
    pub fn with_read_latency(read_latency: Duration) -> Self {
        IoProfile { read_latency }
    }

    /// Blocks for the configured read latency.
    pub fn apply_read(&self) {
        if !self.read_latency.is_zero() {
            // lint: allow(sleep) IoProfile exists to simulate real I/O latency
            std::thread::sleep(self.read_latency);
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory store
// ---------------------------------------------------------------------------

struct MemChain {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
}

/// An in-memory page store for tests and latency-controlled experiments.
#[derive(Default)]
pub struct MemStore {
    chains: Mutex<HashMap<u64, MemChain>>,
    // lint: allow(raw-counter) chain id allocator, not a metric
    next_id: AtomicU64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        assert!(page_size > 0, "page size must be positive");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.chains
            .lock()
            .insert(id, MemChain { page_size, pages: Vec::new() });
        Ok(ChainId(id))
    }

    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        if payload.len() > c.page_size {
            return Err(StorageError::PageTooLarge { got: payload.len(), page_size: c.page_size });
        }
        let mut page = vec![0u8; c.page_size];
        page[..payload.len()].copy_from_slice(payload);
        c.pages.push(page.into_boxed_slice());
        Ok(c.pages.len() as u64 - 1)
    }

    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let chains = self.chains.lock();
        let c = chains
            .get(&key.chain.0)
            .ok_or(StorageError::UnknownChain(key.chain.0))?;
        c.pages
            .get(key.page_no as usize)
            .cloned()
            .ok_or(StorageError::PageOutOfBounds { key, chain_len: c.pages.len() as u64 })
    }

    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.pages.len() as u64)
    }

    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.page_size)
    }

    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.chains
            .lock()
            .remove(&chain.0)
            .map(|_| ())
            .ok_or(StorageError::UnknownChain(chain.0))
    }

    fn chains(&self) -> Vec<ChainId> {
        let mut v: Vec<ChainId> = self.chains.lock().keys().map(|&k| ChainId(k)).collect();
        v.sort_unstable();
        v
    }
}

// ---------------------------------------------------------------------------
// File-backed store
// ---------------------------------------------------------------------------

const FILE_MAGIC: &[u8; 8] = b"PAYGPG01";
const HEADER_LEN: u64 = 16; // magic(8) + page_size(4) + reserved(4)

struct ChainFile {
    file: File,
    page_size: usize,
    len: u64,
}

/// A durable page store: one file per chain under a directory. Reopening the
/// directory recovers all chains — this is what cold-restart experiments use.
pub struct FileStore {
    dir: PathBuf,
    chains: Mutex<HashMap<u64, ChainFile>>,
    // lint: allow(raw-counter) chain id allocator, not a metric
    next_id: AtomicU64,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`, recovering any
    /// existing chains.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut chains = HashMap::new();
        let mut max_id = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_prefix("chain_").and_then(|s| s.strip_suffix(".pg")) else {
                continue;
            };
            let Ok(id) = u64::from_str_radix(hex, 16) else { continue };
            let mut file = OpenOptions::new().read(true).write(true).open(entry.path())?;
            let mut header = [0u8; HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            if &header[..8] != FILE_MAGIC {
                return Err(StorageError::Corrupt(format!("bad magic in {name}")));
            }
            let page_size =
                u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
            if page_size == 0 {
                return Err(StorageError::Corrupt(format!("zero page size in {name}")));
            }
            let file_len = file.metadata()?.len();
            let body = file_len.saturating_sub(HEADER_LEN);
            if body % page_size as u64 != 0 {
                return Err(StorageError::Corrupt(format!(
                    "{name}: body of {body} bytes is not a multiple of page size {page_size}"
                )));
            }
            max_id = max_id.max(id);
            chains.insert(id, ChainFile { file, page_size, len: body / page_size as u64 });
        }
        Ok(FileStore {
            dir,
            chains: Mutex::new(chains),
            next_id: AtomicU64::new(max_id + 1),
        })
    }

    fn chain_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("chain_{id:016x}.pg"))
    }
}

impl PageStore for FileStore {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        assert!(page_size > 0, "page size must be positive");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.chain_path(id))?;
        let mut header = [0u8; HEADER_LEN as usize];
        header[..8].copy_from_slice(FILE_MAGIC);
        header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        file.write_all(&header)?;
        self.chains
            .lock()
            .insert(id, ChainFile { file, page_size, len: 0 });
        Ok(ChainId(id))
    }

    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        if payload.len() > c.page_size {
            return Err(StorageError::PageTooLarge { got: payload.len(), page_size: c.page_size });
        }
        let mut page = vec![0u8; c.page_size];
        page[..payload.len()].copy_from_slice(payload);
        let offset = HEADER_LEN + c.len * c.page_size as u64;
        c.file.seek(SeekFrom::Start(offset))?;
        c.file.write_all(&page)?;
        c.len += 1;
        Ok(c.len - 1)
    }

    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let mut chains = self.chains.lock();
        let c = chains
            .get_mut(&key.chain.0)
            .ok_or(StorageError::UnknownChain(key.chain.0))?;
        if key.page_no >= c.len {
            return Err(StorageError::PageOutOfBounds { key, chain_len: c.len });
        }
        let mut buf = vec![0u8; c.page_size];
        let offset = HEADER_LEN + key.page_no * c.page_size as u64;
        c.file.seek(SeekFrom::Start(offset))?;
        c.file.read_exact(&mut buf)?;
        Ok(buf.into_boxed_slice())
    }

    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.len)
    }

    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.page_size)
    }

    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        let removed = self.chains.lock().remove(&chain.0);
        if removed.is_none() {
            return Err(StorageError::UnknownChain(chain.0));
        }
        std::fs::remove_file(self.chain_path(chain.0))?;
        Ok(())
    }

    fn chains(&self) -> Vec<ChainId> {
        let mut v: Vec<ChainId> = self.chains.lock().keys().map(|&k| ChainId(k)).collect();
        v.sort_unstable();
        v
    }
}

// ---------------------------------------------------------------------------
// Latency injection
// ---------------------------------------------------------------------------

/// A [`PageStore`] decorator that adds a fixed latency to every page read —
/// the experiments' model of cold storage (this machine's files sit in the
/// OS page cache, which would erase the paper's load-cost ≫ memory-access
/// gap). Both piecewise page loads *and* full-column loads pay it, keeping
/// the comparison fair.
pub struct LatencyStore<S> {
    inner: S,
    read_latency: Duration,
    sleeper: Sleeper,
}

impl<S: PageStore> LatencyStore<S> {
    /// Wraps `inner`, delaying every read by `read_latency`.
    pub fn new(inner: S, read_latency: Duration) -> Self {
        Self::with_sleeper(inner, read_latency, real_sleeper())
    }

    /// Like [`new`](Self::new) but spending the delay through `sleeper` —
    /// tests inject a recording sleeper for deterministic latency checks.
    pub fn with_sleeper(inner: S, read_latency: Duration, sleeper: Sleeper) -> Self {
        LatencyStore { inner, read_latency, sleeper }
    }
}

impl<S: PageStore> PageStore for LatencyStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        if !self.read_latency.is_zero() {
            (self.sleeper)(self.read_latency);
        }
        self.inner.read_page(key)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
}

// ---------------------------------------------------------------------------
// Tiered storage (SCM simulation)
// ---------------------------------------------------------------------------

/// A two-tier [`PageStore`]: chains placed on the *fast* tier read with the
/// fast latency, everything else with the slow latency.
///
/// This simulates the paper's §8 Storage Class Memory direction: moving
/// latency-sensitive, rebuildable structures — the inverted indexes and the
/// sparse helper dictionaries — onto byte-addressable persistent memory
/// with near-DRAM read latency, while bulk data stays on slow storage.
pub struct TieredStore<S> {
    inner: S,
    fast_latency: Duration,
    slow_latency: Duration,
    fast_chains: Mutex<std::collections::HashSet<u64>>,
    sleeper: Sleeper,
}

impl<S: PageStore> TieredStore<S> {
    /// Wraps `inner` with the two tier latencies. New chains start on the
    /// slow tier.
    pub fn new(inner: S, fast_latency: Duration, slow_latency: Duration) -> Self {
        Self::with_sleeper(inner, fast_latency, slow_latency, real_sleeper())
    }

    /// Like [`new`](Self::new) but spending delays through `sleeper` —
    /// tests inject a recording sleeper for deterministic latency checks.
    pub fn with_sleeper(
        inner: S,
        fast_latency: Duration,
        slow_latency: Duration,
        sleeper: Sleeper,
    ) -> Self {
        TieredStore {
            inner,
            fast_latency,
            slow_latency,
            fast_chains: Mutex::new(std::collections::HashSet::new()),
            sleeper,
        }
    }

    /// Places a chain on the fast (SCM) tier.
    pub fn place_on_fast_tier(&self, chain: ChainId) {
        self.fast_chains.lock().insert(chain.0);
    }

    /// Moves a chain back to the slow tier.
    pub fn place_on_slow_tier(&self, chain: ChainId) {
        self.fast_chains.lock().remove(&chain.0);
    }

    /// True when the chain reads at the fast latency.
    pub fn is_fast(&self, chain: ChainId) -> bool {
        self.fast_chains.lock().contains(&chain.0)
    }
}

impl<S: PageStore> PageStore for TieredStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let latency = if self.is_fast(key.chain) { self.fast_latency } else { self.slow_latency };
        if !latency.is_zero() {
            (self.sleeper)(latency);
        }
        self.inner.read_page(key)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.fast_chains.lock().remove(&chain.0);
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
}

// ---------------------------------------------------------------------------
// Gated reads (deterministic concurrency testing)
// ---------------------------------------------------------------------------

struct GateState {
    open: bool,
    waiting: usize,
}

/// A [`PageStore`] decorator whose reads block at an explicit gate while it
/// is closed. This replaces "make the store slow and hope the race window
/// stays open" tests: close the gate, start the readers, *observe* that the
/// expected number of reads is parked via [`wait_for_waiters`], then open.
///
/// [`wait_for_waiters`]: GateStore::wait_for_waiters
pub struct GateStore<S> {
    inner: S,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl<S: PageStore> GateStore<S> {
    /// Wraps `inner` with an initially **open** gate.
    pub fn new(inner: S) -> Self {
        GateStore {
            inner,
            state: Mutex::new(GateState { open: true, waiting: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Closes the gate: subsequent reads park until [`open`](Self::open).
    pub fn close(&self) {
        self.state.lock().open = false;
    }

    /// Opens the gate, releasing every parked read.
    pub fn open(&self) {
        self.state.lock().open = true;
        self.cv.notify_all();
    }

    /// Number of reads currently parked at the gate.
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    /// Blocks until at least `n` reads are parked at the gate.
    pub fn wait_for_waiters(&self, n: usize) {
        let mut st = self.state.lock();
        while st.waiting < n {
            self.cv.wait(&mut st);
        }
    }
}

impl<S: PageStore> PageStore for GateStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        {
            let mut st = self.state.lock();
            while !st.open {
                st.waiting += 1;
                self.cv.notify_all(); // wake wait_for_waiters observers
                self.cv.wait(&mut st);
                st.waiting -= 1;
            }
        }
        self.inner.read_page(key)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// When the wrapped store should fail reads.
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Never fail (pass-through).
    None,
    /// Fail every `n`-th read (1-based: `n == 1` fails every read).
    EveryNthRead(u64),
    /// Fail reads of specific pages.
    Pages(Vec<PageKey>),
    /// Fail all reads after the first `n` succeed.
    AfterReads(u64),
}

/// A [`PageStore`] decorator that injects read faults per a [`FaultPlan`].
/// Writes always pass through.
pub struct FaultyStore<S> {
    inner: S,
    plan: Mutex<FaultPlan>,
    // lint: allow(raw-counter) fault-injection read clock, not a metric
    reads: AtomicU64,
}

impl<S: PageStore> FaultyStore<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStore { inner, plan: Mutex::new(plan), reads: AtomicU64::new(0) }
    }

    /// Replaces the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Number of read attempts observed (including failed ones).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match &*self.plan.lock() {
            FaultPlan::None => false,
            FaultPlan::EveryNthRead(k) => *k > 0 && n.is_multiple_of(*k),
            FaultPlan::Pages(keys) => keys.contains(&key),
            FaultPlan::AfterReads(k) => n > *k,
        };
        if fail {
            return Err(StorageError::InjectedFault(key));
        }
        self.inner.read_page(key)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn PageStore) {
        let c = store.create_chain(64).unwrap();
        assert_eq!(store.page_size(c).unwrap(), 64);
        assert_eq!(store.chain_len(c).unwrap(), 0);
        let p0 = store.append_page(c, b"hello").unwrap();
        let p1 = store.append_page(c, &[0xAB; 64]).unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(store.chain_len(c).unwrap(), 2);
        let page = store.read_page(PageKey::new(c, 0)).unwrap();
        assert_eq!(&page[..5], b"hello");
        assert!(page[5..].iter().all(|&b| b == 0), "padded with zeros");
        let page = store.read_page(PageKey::new(c, 1)).unwrap();
        assert!(page.iter().all(|&b| b == 0xAB));
        // Bounds and size violations.
        assert!(matches!(
            store.read_page(PageKey::new(c, 2)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        assert!(matches!(
            store.append_page(c, &[0; 65]),
            Err(StorageError::PageTooLarge { .. })
        ));
        store.drop_chain(c).unwrap();
        assert!(matches!(store.chain_len(c), Err(StorageError::UnknownChain(_))));
    }

    #[test]
    fn mem_store_basics() {
        exercise_store(&MemStore::new());
    }

    #[test]
    fn file_store_basics() {
        let dir = std::env::temp_dir().join(format!("payg-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise_store(&FileStore::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_reopens_chains() {
        let dir = std::env::temp_dir().join(format!("payg-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (c1, c2);
        {
            let store = FileStore::open(&dir).unwrap();
            c1 = store.create_chain(32).unwrap();
            c2 = store.create_chain(128).unwrap();
            store.append_page(c1, b"one").unwrap();
            store.append_page(c1, b"two").unwrap();
            store.append_page(c2, b"big page").unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.chains(), vec![c1, c2]);
        assert_eq!(store.chain_len(c1).unwrap(), 2);
        assert_eq!(store.page_size(c2).unwrap(), 128);
        assert_eq!(&store.read_page(PageKey::new(c1, 1)).unwrap()[..3], b"two");
        // New chains after reopen don't collide with recovered ids.
        let c3 = store.create_chain(32).unwrap();
        assert!(c3.0 > c2.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_store_injects_per_plan() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
        let c = store.create_chain(16).unwrap();
        store.append_page(c, b"x").unwrap();
        let key = PageKey::new(c, 0);
        assert!(store.read_page(key).is_ok());
        store.set_plan(FaultPlan::EveryNthRead(2));
        assert!(store.read_page(key).is_err()); // read #2
        assert!(store.read_page(key).is_ok()); // read #3
        store.set_plan(FaultPlan::Pages(vec![key]));
        assert!(matches!(store.read_page(key), Err(StorageError::InjectedFault(k)) if k == key));
        store.set_plan(FaultPlan::AfterReads(5));
        assert!(store.read_page(key).is_ok()); // read #5
        assert!(store.read_page(key).is_err()); // read #6
        assert_eq!(store.reads(), 6);
    }

    #[test]
    fn tiered_store_places_chains_per_tier() {
        // Deterministic: a recording sleeper captures the latency each read
        // *requests* instead of measuring wall-clock time.
        let slept: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder: Sleeper = {
            let slept = Arc::clone(&slept);
            Arc::new(move |d| slept.lock().unwrap().push(d))
        };
        let store = TieredStore::with_sleeper(
            MemStore::new(),
            Duration::from_micros(1),
            Duration::from_millis(3),
            recorder,
        );
        let fast = store.create_chain(16).unwrap();
        let slow = store.create_chain(16).unwrap();
        store.append_page(fast, b"f").unwrap();
        store.append_page(slow, b"s").unwrap();
        store.place_on_fast_tier(fast);
        assert!(store.is_fast(fast));
        assert!(!store.is_fast(slow));
        store.read_page(PageKey::new(fast, 0)).unwrap();
        store.read_page(PageKey::new(slow, 0)).unwrap();
        assert_eq!(
            *slept.lock().unwrap(),
            vec![Duration::from_micros(1), Duration::from_millis(3)],
            "each tier pays exactly its configured latency"
        );
        // Demote and the latency follows.
        store.place_on_slow_tier(fast);
        assert!(!store.is_fast(fast));
        store.read_page(PageKey::new(fast, 0)).unwrap();
        assert_eq!(slept.lock().unwrap().last(), Some(&Duration::from_millis(3)));
    }

    #[test]
    fn file_store_rejects_corrupt_header() {
        let dir = std::env::temp_dir().join(format!("payg-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chain_0000000000000001.pg"), b"NOTMAGIC00000000").unwrap();
        assert!(matches!(FileStore::open(&dir), Err(StorageError::Corrupt(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
