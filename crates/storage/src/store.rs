//! Page stores: durable (file-backed) and in-memory, plus fault injection.

use crate::checksum::page_checksum;
use crate::sync::{Condvar, Mutex};
use crate::{ChainId, PageKey, StorageError, StorageResult};
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How latency-simulating stores ([`LatencyStore`], [`TieredStore`],
/// [`IoProfile`]) spend their configured delay. The default performs a real
/// `thread::sleep`; tests inject a recording sleeper so latency behavior is
/// asserted on the *requested durations* instead of wall-clock time.
pub type Sleeper = Arc<dyn Fn(Duration) + Send + Sync>;

/// The real-time sleeper used when none is injected. This is the one
/// sanctioned blocking sink for simulated I/O latency.
pub fn real_sleeper() -> Sleeper {
    // lint: allow(sleep) sole sanctioned real-time sink for simulated I/O latency
    Arc::new(std::thread::sleep)
}

/// A store of page chains. Pages are fixed-size raw byte arrays; all layout
/// (headers, counts, offsets) is the responsibility of the structures
/// persisted on top.
pub trait PageStore: Send + Sync {
    /// Creates a new, empty chain whose pages are `page_size` bytes.
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId>;
    /// Appends a page. `payload` may be shorter than the page size (it is
    /// zero-padded) but never longer. Returns the new logical page number.
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64>;
    /// Reads one full page.
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>>;
    /// Reads `count` consecutive pages starting at `first_page`, returning
    /// one result **per page** — a batch never collapses to a single error.
    ///
    /// The default loops [`read_page`](Self::read_page), so decorators that
    /// meter or gate individual reads (fault injection, gating) keep their
    /// per-page semantics. Stores with a physical notion of adjacency
    /// override this with one ranged read, but must preserve per-page error
    /// granularity: a corrupt page in the middle of a batch fails only its
    /// own slot.
    fn read_pages(
        &self,
        chain: ChainId,
        first_page: u64,
        count: usize,
    ) -> Vec<StorageResult<Box<[u8]>>> {
        (0..count as u64)
            .map(|i| self.read_page(PageKey::new(chain, first_page + i)))
            .collect()
    }
    /// Number of pages in the chain.
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64>;
    /// The chain's page size in bytes.
    fn page_size(&self, chain: ChainId) -> StorageResult<usize>;
    /// Deletes a chain and its pages.
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()>;
    /// All existing chains (used when reopening a durable store).
    fn chains(&self) -> Vec<ChainId>;
    /// Attaches an opaque descriptor blob (codec metadata) to a chain,
    /// replacing any previous one. Durable stores persist it in a
    /// fixed-capacity header region reserved at create, so it can be set
    /// after pages were appended. File chains recovered from descriptorless
    /// formats (0/1) reject writes.
    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()>;
    /// The chain's descriptor: empty for chains that never had one set,
    /// including files from the pre-descriptor formats 0 and 1.
    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>>;
}

/// Synthetic I/O latency applied by the buffer pool on every page load.
///
/// On this reproduction's hardware the file store is served from the OS page
/// cache, so the paper's load-cost ≫ memory-access-cost gap would vanish;
/// experiments set a per-load latency to model cold storage. The default is
/// zero (no simulation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoProfile {
    /// Added to every page load (buffer-pool miss).
    pub read_latency: Duration,
}

impl IoProfile {
    /// No synthetic latency.
    pub const NONE: IoProfile = IoProfile { read_latency: Duration::ZERO };

    /// A profile with the given per-read latency.
    pub fn with_read_latency(read_latency: Duration) -> Self {
        IoProfile { read_latency }
    }

    /// Blocks for the configured read latency.
    pub fn apply_read(&self) {
        if !self.read_latency.is_zero() {
            // lint: allow(sleep) IoProfile exists to simulate real I/O latency
            std::thread::sleep(self.read_latency);
        }
    }
}

// ---------------------------------------------------------------------------
// In-memory store
// ---------------------------------------------------------------------------

struct MemChain {
    page_size: usize,
    pages: Vec<Box<[u8]>>,
    desc: Vec<u8>,
}

/// An in-memory page store for tests and latency-controlled experiments.
#[derive(Default)]
pub struct MemStore {
    chains: Mutex<HashMap<u64, MemChain>>,
    // lint: allow(raw-counter) chain id allocator, not a metric
    next_id: AtomicU64,
}

impl MemStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }
}

impl PageStore for MemStore {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        assert!(page_size > 0, "page size must be positive");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.chains
            .lock()
            .insert(id, MemChain { page_size, pages: Vec::new(), desc: Vec::new() });
        Ok(ChainId(id))
    }

    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        if payload.len() > c.page_size {
            return Err(StorageError::PageTooLarge { got: payload.len(), page_size: c.page_size });
        }
        let mut page = vec![0u8; c.page_size];
        page[..payload.len()].copy_from_slice(payload);
        c.pages.push(page.into_boxed_slice());
        Ok(c.pages.len() as u64 - 1)
    }

    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let chains = self.chains.lock();
        let c = chains
            .get(&key.chain.0)
            .ok_or(StorageError::UnknownChain(key.chain.0))?;
        c.pages
            .get(key.page_no as usize)
            .cloned()
            .ok_or(StorageError::PageOutOfBounds { key, chain_len: c.pages.len() as u64 })
    }

    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.pages.len() as u64)
    }

    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.page_size)
    }

    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.chains
            .lock()
            .remove(&chain.0)
            .map(|_| ())
            .ok_or(StorageError::UnknownChain(chain.0))
    }

    fn chains(&self) -> Vec<ChainId> {
        let mut v: Vec<ChainId> = self.chains.lock().keys().map(|&k| ChainId(k)).collect();
        v.sort_unstable();
        v
    }

    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        c.desc = desc.to_vec();
        Ok(())
    }

    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.desc.clone())
    }
}

// ---------------------------------------------------------------------------
// File-backed store
// ---------------------------------------------------------------------------

const FILE_MAGIC: &[u8; 8] = b"PAYGPG01";
const HEADER_LEN: u64 = 16; // magic(8) + page_size(4) + format(4)
const HEADER2_LEN: u64 = 24; // HEADER_LEN + desc_cap(4) + desc_len(4)

/// Original layout: raw page slots, no per-page integrity.
const FORMAT_LEGACY: u32 = 0;
/// Checksummed layout: every page slot carries an 8-byte checksum trailer.
const FORMAT_CHECKSUMMED: u32 = 1;
/// Described layout: checksummed slots plus a fixed-capacity chain
/// descriptor region (opaque codec metadata) between the header and slot 0.
const FORMAT_DESCRIBED: u32 = 2;

/// Descriptor capacity reserved in every new chain file. Fixed at create so
/// the descriptor can be (re)written after pages were appended without
/// moving any slot. Sized for a serialized FSST symbol table (~2.3 KB worst
/// case) plus codec framing.
const DESC_CAP: u32 = 4096;

/// Per-page trailer in checksummed formats: CRC-32 of the little-endian
/// page number + padded payload (4 bytes, LE), then 4 reserved zero bytes.
const PAGE_TRAILER_LEN: usize = 8;

struct ChainFile {
    file: File,
    page_size: usize,
    len: u64,
    /// On-disk header format: [`FORMAT_LEGACY`], [`FORMAT_CHECKSUMMED`] or
    /// [`FORMAT_DESCRIBED`].
    format: u32,
    /// Descriptor region capacity ([`FORMAT_DESCRIBED`] only, else 0).
    desc_cap: u32,
    /// Bytes of the descriptor region currently in use.
    desc_len: u32,
}

impl ChainFile {
    /// Files recovered from the pre-checksum layout read without
    /// verification for backward compatibility.
    fn checksummed(&self) -> bool {
        self.format != FORMAT_LEGACY
    }

    /// On-disk bytes per page: payload plus trailer when checksummed.
    fn slot_len(&self) -> u64 {
        self.page_size as u64 + if self.checksummed() { PAGE_TRAILER_LEN as u64 } else { 0 }
    }

    /// File offset of page slot 0: past the header and, in described files,
    /// the descriptor region.
    fn data_start(&self) -> u64 {
        if self.format == FORMAT_DESCRIBED {
            HEADER2_LEN + self.desc_cap as u64
        } else {
            HEADER_LEN
        }
    }
}

/// A durable page store: one file per chain under a directory. Reopening the
/// directory recovers all chains — this is what cold-restart experiments use.
pub struct FileStore {
    dir: PathBuf,
    chains: Mutex<HashMap<u64, ChainFile>>,
    // lint: allow(raw-counter) chain id allocator, not a metric
    next_id: AtomicU64,
}

impl FileStore {
    /// Opens (creating if needed) a store rooted at `dir`, recovering any
    /// existing chains.
    pub fn open(dir: impl Into<PathBuf>) -> StorageResult<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut chains = HashMap::new();
        let mut max_id = 0u64;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let Some(hex) = name.strip_prefix("chain_").and_then(|s| s.strip_suffix(".pg")) else {
                continue;
            };
            let Ok(id) = u64::from_str_radix(hex, 16) else { continue };
            let path = entry.path();
            let mut file = OpenOptions::new().read(true).write(true).open(&path)?;
            let file_len = file.metadata()?.len();
            // Every validation failure below names the offending file and the
            // byte offset of the bad field, in one format (StorageError::
            // CorruptFile), so operators can go straight from the message to
            // a hex dump.
            if file_len < HEADER_LEN {
                return Err(StorageError::corrupt_file(
                    &path,
                    0,
                    format!("file of {file_len} bytes is shorter than the {HEADER_LEN}-byte header"),
                ));
            }
            let mut header = [0u8; HEADER_LEN as usize];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut header)?;
            if &header[..8] != FILE_MAGIC {
                return Err(StorageError::corrupt_file(
                    &path,
                    0,
                    format!("bad magic {:02x?}, expected {FILE_MAGIC:02x?}", &header[..8]),
                ));
            }
            let page_size =
                u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
            if page_size == 0 {
                return Err(StorageError::corrupt_file(&path, 8, "zero page size"));
            }
            let format = u32::from_le_bytes([header[12], header[13], header[14], header[15]]);
            let (desc_cap, desc_len) = match format {
                FORMAT_LEGACY | FORMAT_CHECKSUMMED => (0u32, 0u32),
                FORMAT_DESCRIBED => {
                    if file_len < HEADER2_LEN {
                        return Err(StorageError::corrupt_file(
                            &path,
                            HEADER_LEN,
                            format!(
                                "file of {file_len} bytes is shorter than the \
                                 {HEADER2_LEN}-byte described header"
                            ),
                        ));
                    }
                    let mut ext = [0u8; 8];
                    file.read_exact(&mut ext)?;
                    let cap = u32::from_le_bytes([ext[0], ext[1], ext[2], ext[3]]);
                    let used = u32::from_le_bytes([ext[4], ext[5], ext[6], ext[7]]);
                    if used > cap {
                        return Err(StorageError::corrupt_file(
                            &path,
                            20,
                            format!("descriptor length {used} exceeds the {cap}-byte capacity"),
                        ));
                    }
                    (cap, used)
                }
                other => {
                    return Err(StorageError::corrupt_file(
                        &path,
                        12,
                        format!(
                            "unknown format {other}, expected {FORMAT_LEGACY} (legacy), \
                             {FORMAT_CHECKSUMMED} (checksummed) or {FORMAT_DESCRIBED} (described)"
                        ),
                    ));
                }
            };
            let c = ChainFile { file, page_size, len: 0, format, desc_cap, desc_len };
            let data_start = c.data_start();
            if file_len < data_start {
                return Err(StorageError::corrupt_file(
                    &path,
                    16,
                    format!(
                        "descriptor capacity {desc_cap} overruns the {file_len}-byte file \
                         (slots would start at {data_start})"
                    ),
                ));
            }
            let slot = c.slot_len();
            let body = file_len - data_start;
            if !body.is_multiple_of(slot) {
                return Err(StorageError::corrupt_file(
                    &path,
                    data_start,
                    format!("body of {body} bytes is not a multiple of the {slot}-byte page slot"),
                ));
            }
            max_id = max_id.max(id);
            chains.insert(id, ChainFile { len: body / slot, ..c });
        }
        Ok(FileStore {
            dir,
            chains: Mutex::new(chains),
            next_id: AtomicU64::new(max_id + 1),
        })
    }

    fn chain_path(&self, id: u64) -> PathBuf {
        self.dir.join(format!("chain_{id:016x}.pg"))
    }

    /// Verifies and trims one raw slot (payload + optional trailer) as read
    /// from disk into a page payload.
    fn verify_slot(c: &ChainFile, key: PageKey, mut slot: Vec<u8>) -> StorageResult<Box<[u8]>> {
        if c.checksummed() {
            let stored = u32::from_le_bytes([
                slot[c.page_size],
                slot[c.page_size + 1],
                slot[c.page_size + 2],
                slot[c.page_size + 3],
            ]);
            let computed = page_checksum(key.page_no, &slot[..c.page_size]);
            if stored != computed {
                return Err(StorageError::ChecksumMismatch { key, stored, computed });
            }
        }
        slot.truncate(c.page_size);
        Ok(slot.into_boxed_slice())
    }

    /// File offset of a chain's page slot 0 (past header and descriptor
    /// region), and the on-disk slot length in bytes. For tools and chaos
    /// tests that corrupt or inspect chain files behind the store's back.
    pub fn chain_layout(&self, chain: ChainId) -> StorageResult<(u64, u64)> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok((c.data_start(), c.slot_len()))
    }

    /// Reads one in-bounds page's slot (seek + read + verify).
    fn read_slot(c: &mut ChainFile, key: PageKey) -> StorageResult<Box<[u8]>> {
        let mut buf = vec![0u8; c.slot_len() as usize];
        let offset = c.data_start() + key.page_no * c.slot_len();
        c.file.seek(SeekFrom::Start(offset))?;
        c.file.read_exact(&mut buf)?;
        Self::verify_slot(c, key, buf)
    }
}

impl PageStore for FileStore {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        assert!(page_size > 0, "page size must be positive");
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(self.chain_path(id))?;
        // Header plus a zeroed descriptor region reserved up front, so a
        // codec descriptor can be attached after pages exist without moving
        // any slot.
        let mut header = vec![0u8; (HEADER2_LEN + DESC_CAP as u64) as usize];
        header[..8].copy_from_slice(FILE_MAGIC);
        header[8..12].copy_from_slice(&(page_size as u32).to_le_bytes());
        header[12..16].copy_from_slice(&FORMAT_DESCRIBED.to_le_bytes());
        header[16..20].copy_from_slice(&DESC_CAP.to_le_bytes());
        file.write_all(&header)?;
        self.chains.lock().insert(
            id,
            ChainFile { file, page_size, len: 0, format: FORMAT_DESCRIBED, desc_cap: DESC_CAP, desc_len: 0 },
        );
        Ok(ChainId(id))
    }

    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        if payload.len() > c.page_size {
            return Err(StorageError::PageTooLarge { got: payload.len(), page_size: c.page_size });
        }
        // The whole slot (padded payload + trailer) is written in one call so
        // a crash tears at most the final page — which the checksum catches
        // on the next read.
        let mut slot = vec![0u8; c.slot_len() as usize];
        slot[..payload.len()].copy_from_slice(payload);
        if c.checksummed() {
            let crc = page_checksum(c.len, &slot[..c.page_size]);
            slot[c.page_size..c.page_size + 4].copy_from_slice(&crc.to_le_bytes());
        }
        let offset = c.data_start() + c.len * c.slot_len();
        c.file.seek(SeekFrom::Start(offset))?;
        c.file.write_all(&slot)?;
        c.len += 1;
        Ok(c.len - 1)
    }

    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let mut chains = self.chains.lock();
        let c = chains
            .get_mut(&key.chain.0)
            .ok_or(StorageError::UnknownChain(key.chain.0))?;
        if key.page_no >= c.len {
            return Err(StorageError::PageOutOfBounds { key, chain_len: c.len });
        }
        Self::read_slot(c, key)
    }

    fn read_pages(
        &self,
        chain: ChainId,
        first_page: u64,
        count: usize,
    ) -> Vec<StorageResult<Box<[u8]>>> {
        let mut chains = self.chains.lock();
        let Some(c) = chains.get_mut(&chain.0) else {
            return (0..count).map(|_| Err(StorageError::UnknownChain(chain.0))).collect();
        };
        let in_bounds = c.len.saturating_sub(first_page).min(count as u64) as usize;
        let mut out: Vec<StorageResult<Box<[u8]>>> = Vec::with_capacity(count);
        if in_bounds > 0 {
            // One positioned read covers the whole adjacent run; verification
            // stays per page so a rotted page fails only its own slot.
            let slot = c.slot_len() as usize;
            let mut buf = vec![0u8; slot * in_bounds];
            let ranged = c
                .file
                .seek(SeekFrom::Start(c.data_start() + first_page * c.slot_len()))
                .and_then(|_| c.file.read_exact(&mut buf));
            match ranged {
                Ok(()) => {
                    for i in 0..in_bounds {
                        let key = PageKey::new(chain, first_page + i as u64);
                        out.push(Self::verify_slot(c, key, buf[i * slot..(i + 1) * slot].to_vec()));
                    }
                }
                // The ranged read itself failed: retry page by page so every
                // slot gets its own typed error (or succeeds individually).
                Err(_) => {
                    for i in 0..in_bounds {
                        out.push(Self::read_slot(c, PageKey::new(chain, first_page + i as u64)));
                    }
                }
            }
        }
        for i in in_bounds..count {
            let key = PageKey::new(chain, first_page + i as u64);
            out.push(Err(StorageError::PageOutOfBounds { key, chain_len: c.len }));
        }
        out
    }

    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.len)
    }

    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        let chains = self.chains.lock();
        let c = chains.get(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        Ok(c.page_size)
    }

    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        let removed = self.chains.lock().remove(&chain.0);
        if removed.is_none() {
            return Err(StorageError::UnknownChain(chain.0));
        }
        std::fs::remove_file(self.chain_path(chain.0))?;
        Ok(())
    }

    fn chains(&self) -> Vec<ChainId> {
        let mut v: Vec<ChainId> = self.chains.lock().keys().map(|&k| ChainId(k)).collect();
        v.sort_unstable();
        v
    }

    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        if c.format != FORMAT_DESCRIBED {
            return Err(StorageError::corrupt(format!(
                "format-{} chain file has no descriptor region",
                c.format
            )));
        }
        if desc.len() > c.desc_cap as usize {
            return Err(StorageError::corrupt(format!(
                "chain descriptor of {} bytes exceeds the {}-byte capacity",
                desc.len(),
                c.desc_cap
            )));
        }
        c.file.seek(SeekFrom::Start(HEADER2_LEN))?;
        c.file.write_all(desc)?;
        c.file.seek(SeekFrom::Start(20))?;
        c.file.write_all(&(desc.len() as u32).to_le_bytes())?;
        c.desc_len = desc.len() as u32;
        Ok(())
    }

    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>> {
        let mut chains = self.chains.lock();
        let c = chains.get_mut(&chain.0).ok_or(StorageError::UnknownChain(chain.0))?;
        if c.format != FORMAT_DESCRIBED || c.desc_len == 0 {
            return Ok(Vec::new());
        }
        let mut buf = vec![0u8; c.desc_len as usize];
        c.file.seek(SeekFrom::Start(HEADER2_LEN))?;
        c.file.read_exact(&mut buf)?;
        Ok(buf)
    }
}

// ---------------------------------------------------------------------------
// Latency injection
// ---------------------------------------------------------------------------

/// A [`PageStore`] decorator that adds a fixed latency to every page read —
/// the experiments' model of cold storage (this machine's files sit in the
/// OS page cache, which would erase the paper's load-cost ≫ memory-access
/// gap). Both piecewise page loads *and* full-column loads pay it, keeping
/// the comparison fair.
pub struct LatencyStore<S> {
    inner: S,
    read_latency: Duration,
    sleeper: Sleeper,
}

impl<S: PageStore> LatencyStore<S> {
    /// Wraps `inner`, delaying every read by `read_latency`.
    pub fn new(inner: S, read_latency: Duration) -> Self {
        Self::with_sleeper(inner, read_latency, real_sleeper())
    }

    /// Like [`new`](Self::new) but spending the delay through `sleeper` —
    /// tests inject a recording sleeper for deterministic latency checks.
    pub fn with_sleeper(inner: S, read_latency: Duration, sleeper: Sleeper) -> Self {
        LatencyStore { inner, read_latency, sleeper }
    }
}

impl<S: PageStore> PageStore for LatencyStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        if !self.read_latency.is_zero() {
            (self.sleeper)(self.read_latency);
        }
        self.inner.read_page(key)
    }
    fn read_pages(
        &self,
        chain: ChainId,
        first_page: u64,
        count: usize,
    ) -> Vec<StorageResult<Box<[u8]>>> {
        // One latency charge per physical read: adjacent pages ride the same
        // seek, which is exactly the economy coalescing is meant to buy.
        if count > 0 && !self.read_latency.is_zero() {
            (self.sleeper)(self.read_latency);
        }
        self.inner.read_pages(chain, first_page, count)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()> {
        self.inner.set_chain_descriptor(chain, desc)
    }
    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>> {
        self.inner.chain_descriptor(chain)
    }
}

// ---------------------------------------------------------------------------
// Tiered storage (SCM simulation)
// ---------------------------------------------------------------------------

/// A two-tier [`PageStore`]: chains placed on the *fast* tier read with the
/// fast latency, everything else with the slow latency.
///
/// This simulates the paper's §8 Storage Class Memory direction: moving
/// latency-sensitive, rebuildable structures — the inverted indexes and the
/// sparse helper dictionaries — onto byte-addressable persistent memory
/// with near-DRAM read latency, while bulk data stays on slow storage.
pub struct TieredStore<S> {
    inner: S,
    fast_latency: Duration,
    slow_latency: Duration,
    fast_chains: Mutex<std::collections::HashSet<u64>>,
    sleeper: Sleeper,
}

impl<S: PageStore> TieredStore<S> {
    /// Wraps `inner` with the two tier latencies. New chains start on the
    /// slow tier.
    pub fn new(inner: S, fast_latency: Duration, slow_latency: Duration) -> Self {
        Self::with_sleeper(inner, fast_latency, slow_latency, real_sleeper())
    }

    /// Like [`new`](Self::new) but spending delays through `sleeper` —
    /// tests inject a recording sleeper for deterministic latency checks.
    pub fn with_sleeper(
        inner: S,
        fast_latency: Duration,
        slow_latency: Duration,
        sleeper: Sleeper,
    ) -> Self {
        TieredStore {
            inner,
            fast_latency,
            slow_latency,
            fast_chains: Mutex::new(std::collections::HashSet::new()),
            sleeper,
        }
    }

    /// Places a chain on the fast (SCM) tier.
    pub fn place_on_fast_tier(&self, chain: ChainId) {
        self.fast_chains.lock().insert(chain.0);
    }

    /// Moves a chain back to the slow tier.
    pub fn place_on_slow_tier(&self, chain: ChainId) {
        self.fast_chains.lock().remove(&chain.0);
    }

    /// True when the chain reads at the fast latency.
    pub fn is_fast(&self, chain: ChainId) -> bool {
        self.fast_chains.lock().contains(&chain.0)
    }
}

impl<S: PageStore> PageStore for TieredStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let latency = if self.is_fast(key.chain) { self.fast_latency } else { self.slow_latency };
        if !latency.is_zero() {
            (self.sleeper)(latency);
        }
        self.inner.read_page(key)
    }
    fn read_pages(
        &self,
        chain: ChainId,
        first_page: u64,
        count: usize,
    ) -> Vec<StorageResult<Box<[u8]>>> {
        // One tier-latency charge per batch (the shared seek), like
        // [`LatencyStore`].
        let latency = if self.is_fast(chain) { self.fast_latency } else { self.slow_latency };
        if count > 0 && !latency.is_zero() {
            (self.sleeper)(latency);
        }
        self.inner.read_pages(chain, first_page, count)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.fast_chains.lock().remove(&chain.0);
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()> {
        self.inner.set_chain_descriptor(chain, desc)
    }
    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>> {
        self.inner.chain_descriptor(chain)
    }
}

// ---------------------------------------------------------------------------
// Gated reads (deterministic concurrency testing)
// ---------------------------------------------------------------------------

struct GateState {
    open: bool,
    waiting: usize,
}

/// A [`PageStore`] decorator whose reads block at an explicit gate while it
/// is closed. This replaces "make the store slow and hope the race window
/// stays open" tests: close the gate, start the readers, *observe* that the
/// expected number of reads is parked via [`wait_for_waiters`], then open.
///
/// [`wait_for_waiters`]: GateStore::wait_for_waiters
pub struct GateStore<S> {
    inner: S,
    state: Mutex<GateState>,
    cv: Condvar,
}

impl<S: PageStore> GateStore<S> {
    /// Wraps `inner` with an initially **open** gate.
    pub fn new(inner: S) -> Self {
        GateStore {
            inner,
            state: Mutex::new(GateState { open: true, waiting: 0 }),
            cv: Condvar::new(),
        }
    }

    /// Closes the gate: subsequent reads park until [`open`](Self::open).
    pub fn close(&self) {
        self.state.lock().open = false;
    }

    /// Opens the gate, releasing every parked read.
    pub fn open(&self) {
        self.state.lock().open = true;
        self.cv.notify_all();
    }

    /// Number of reads currently parked at the gate.
    pub fn waiting(&self) -> usize {
        self.state.lock().waiting
    }

    /// The wrapped store — lets tests compose decorators (e.g. a gate over
    /// a faulty store) and still reach the inner controls.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Blocks until at least `n` reads are parked at the gate.
    pub fn wait_for_waiters(&self, n: usize) {
        let mut st = self.state.lock();
        while st.waiting < n {
            self.cv.wait(&mut st);
        }
    }
}

impl<S: PageStore> PageStore for GateStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        {
            let mut st = self.state.lock();
            while !st.open {
                st.waiting += 1;
                self.cv.notify_all(); // wake wait_for_waiters observers
                self.cv.wait(&mut st);
                st.waiting -= 1;
            }
        }
        self.inner.read_page(key)
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()> {
        self.inner.set_chain_descriptor(chain, desc)
    }
    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>> {
        self.inner.chain_descriptor(chain)
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// SplitMix64: the deterministic mixer behind [`FaultPlan::Seeded`].
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit value to a uniform float in `[0, 1)`.
fn unit_uniform(r: u64) -> f64 {
    (r >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// When the wrapped store should fail reads (and, for the write-capable
/// plans, appends).
#[derive(Debug, Clone)]
pub enum FaultPlan {
    /// Never fail (pass-through).
    None,
    /// Fail every `n`-th read (1-based: `n == 1` fails every read).
    EveryNthRead(u64),
    /// Fail reads of specific pages.
    Pages(Vec<PageKey>),
    /// Fail all reads after the first `n` succeed.
    AfterReads(u64),
    /// A transient outage: reads `after+1 ..= after+count` fail, everything
    /// before and after succeeds — the shape a bounded retry must absorb.
    Transient {
        /// Reads that succeed before the outage starts.
        after: u64,
        /// Number of consecutive failing reads.
        count: u64,
    },
    /// Fail every `n`-th append (1-based), modeling write-path I/O errors.
    EveryNthWrite(u64),
    /// Reads of these pages return detectably corrupt payloads: one bit is
    /// flipped and the store reports the resulting
    /// [`ChecksumMismatch`](StorageError::ChecksumMismatch), the same way
    /// [`FileStore`] reports real bit rot. Permanent: every read of a listed
    /// page fails, so the pool's quarantine path is exercised.
    CorruptPages(Vec<PageKey>),
    /// The chaos harness's plan: every read/append decides independently and
    /// *deterministically* from `(seed, key, per-key attempt number)` whether
    /// to fail transiently, corrupt, or pass. Two stores driven with the
    /// same seed make identical decisions regardless of thread interleaving.
    Seeded {
        /// Deterministic RNG seed.
        seed: u64,
        /// Probability a read fails with a transient injected fault.
        p_read: f64,
        /// Probability a read reports a (permanent-looking) checksum
        /// mismatch. Note: seeded corruption is per *attempt*, so a retry may
        /// see clean bytes — use [`FaultPlan::CorruptPages`] for the
        /// sticky-corruption/quarantine path.
        p_corrupt: f64,
        /// Probability an append fails with an injected write fault.
        p_write: f64,
    },
}

enum ReadFault {
    Pass,
    Fail,
    /// Flip the bit chosen by the carried entropy, report the mismatch.
    Corrupt(u64),
}

/// A [`PageStore`] decorator that injects faults per a [`FaultPlan`].
pub struct FaultyStore<S> {
    inner: S,
    plan: Mutex<FaultPlan>,
    // lint: allow(raw-counter) fault-injection read clock, not a metric
    reads: AtomicU64,
    // lint: allow(raw-counter) fault-injection write clock, not a metric
    writes: AtomicU64,
    /// Per-key read-attempt numbers for [`FaultPlan::Seeded`], so fault
    /// decisions depend only on (seed, key, attempt) — never on cross-thread
    /// interleaving.
    seeded_attempts: Mutex<HashMap<PageKey, u64>>,
}

impl<S: PageStore> FaultyStore<S> {
    /// Wraps `inner` with the given plan.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        FaultyStore {
            inner,
            plan: Mutex::new(plan),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            seeded_attempts: Mutex::new(HashMap::new()),
        }
    }

    /// Replaces the fault plan.
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.plan.lock() = plan;
    }

    /// Number of read attempts observed (including failed ones).
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Number of append attempts observed (including failed ones).
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    fn decide_read(&self, key: PageKey, n: u64) -> ReadFault {
        let plan = self.plan.lock().clone();
        match plan {
            FaultPlan::None | FaultPlan::EveryNthWrite(_) => ReadFault::Pass,
            FaultPlan::EveryNthRead(k) => {
                if k > 0 && n.is_multiple_of(k) {
                    ReadFault::Fail
                } else {
                    ReadFault::Pass
                }
            }
            FaultPlan::Pages(keys) => {
                if keys.contains(&key) {
                    ReadFault::Fail
                } else {
                    ReadFault::Pass
                }
            }
            FaultPlan::AfterReads(k) => {
                if n > k {
                    ReadFault::Fail
                } else {
                    ReadFault::Pass
                }
            }
            FaultPlan::Transient { after, count } => {
                if n > after && n <= after + count {
                    ReadFault::Fail
                } else {
                    ReadFault::Pass
                }
            }
            FaultPlan::CorruptPages(keys) => {
                if keys.contains(&key) {
                    // Deterministic per key so repeated reads observe the
                    // same corruption.
                    ReadFault::Corrupt(splitmix64(key.chain.0 ^ splitmix64(key.page_no)))
                } else {
                    ReadFault::Pass
                }
            }
            FaultPlan::Seeded { seed, p_read, p_corrupt, .. } => {
                let attempt = {
                    let mut attempts = self.seeded_attempts.lock();
                    let a = attempts.entry(key).or_insert(0);
                    *a += 1;
                    *a
                };
                let r = splitmix64(seed ^ splitmix64(key.chain.0 ^ splitmix64(key.page_no ^ splitmix64(attempt))));
                let u = unit_uniform(r);
                if u < p_read {
                    ReadFault::Fail
                } else if u < p_read + p_corrupt {
                    ReadFault::Corrupt(splitmix64(r))
                } else {
                    ReadFault::Pass
                }
            }
        }
    }
}

impl<S: PageStore> PageStore for FaultyStore<S> {
    fn create_chain(&self, page_size: usize) -> StorageResult<ChainId> {
        self.inner.create_chain(page_size)
    }
    fn append_page(&self, chain: ChainId, payload: &[u8]) -> StorageResult<u64> {
        let w = self.writes.fetch_add(1, Ordering::Relaxed) + 1;
        let fail = match &*self.plan.lock() {
            FaultPlan::EveryNthWrite(k) => *k > 0 && w.is_multiple_of(*k),
            FaultPlan::Seeded { seed, p_write, .. } => {
                *p_write > 0.0
                    && unit_uniform(splitmix64(seed ^ splitmix64(chain.0 ^ splitmix64(!w)))) < *p_write
            }
            _ => false,
        };
        if fail {
            return Err(StorageError::InjectedWriteFault(chain.0));
        }
        self.inner.append_page(chain, payload)
    }
    fn read_page(&self, key: PageKey) -> StorageResult<Box<[u8]>> {
        let n = self.reads.fetch_add(1, Ordering::Relaxed) + 1;
        match self.decide_read(key, n) {
            ReadFault::Pass => self.inner.read_page(key),
            ReadFault::Fail => Err(StorageError::InjectedFault(key)),
            ReadFault::Corrupt(entropy) => {
                // Model detected bit rot: flip one bit of the real payload
                // and report it exactly as a checksummed store would — the
                // stored digest covers the clean bytes, the recomputed one
                // covers what "came off the platter".
                let page = self.inner.read_page(key)?;
                let stored = page_checksum(key.page_no, &page);
                let mut rotted = page.into_vec();
                let bits = (rotted.len() * 8).max(1);
                let bit = (entropy as usize) % bits;
                if !rotted.is_empty() {
                    rotted[bit / 8] ^= 1 << (bit % 8);
                }
                let computed = page_checksum(key.page_no, &rotted);
                Err(StorageError::ChecksumMismatch { key, stored, computed })
            }
        }
    }
    fn chain_len(&self, chain: ChainId) -> StorageResult<u64> {
        self.inner.chain_len(chain)
    }
    fn page_size(&self, chain: ChainId) -> StorageResult<usize> {
        self.inner.page_size(chain)
    }
    fn drop_chain(&self, chain: ChainId) -> StorageResult<()> {
        self.inner.drop_chain(chain)
    }
    fn chains(&self) -> Vec<ChainId> {
        self.inner.chains()
    }
    fn set_chain_descriptor(&self, chain: ChainId, desc: &[u8]) -> StorageResult<()> {
        self.inner.set_chain_descriptor(chain, desc)
    }
    fn chain_descriptor(&self, chain: ChainId) -> StorageResult<Vec<u8>> {
        self.inner.chain_descriptor(chain)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_store(store: &dyn PageStore) {
        let c = store.create_chain(64).unwrap();
        assert_eq!(store.page_size(c).unwrap(), 64);
        assert_eq!(store.chain_len(c).unwrap(), 0);
        let p0 = store.append_page(c, b"hello").unwrap();
        let p1 = store.append_page(c, &[0xAB; 64]).unwrap();
        assert_eq!((p0, p1), (0, 1));
        assert_eq!(store.chain_len(c).unwrap(), 2);
        let page = store.read_page(PageKey::new(c, 0)).unwrap();
        assert_eq!(&page[..5], b"hello");
        assert!(page[5..].iter().all(|&b| b == 0), "padded with zeros");
        let page = store.read_page(PageKey::new(c, 1)).unwrap();
        assert!(page.iter().all(|&b| b == 0xAB));
        // Chain descriptors: empty until set, replaceable, settable with
        // pages already appended.
        assert!(store.chain_descriptor(c).unwrap().is_empty());
        store.set_chain_descriptor(c, b"codec v1").unwrap();
        assert_eq!(store.chain_descriptor(c).unwrap(), b"codec v1");
        store.set_chain_descriptor(c, b"v2").unwrap();
        assert_eq!(store.chain_descriptor(c).unwrap(), b"v2");
        assert_eq!(&store.read_page(PageKey::new(c, 0)).unwrap()[..5], b"hello");
        // Bounds and size violations.
        assert!(matches!(
            store.read_page(PageKey::new(c, 2)),
            Err(StorageError::PageOutOfBounds { .. })
        ));
        assert!(matches!(
            store.append_page(c, &[0; 65]),
            Err(StorageError::PageTooLarge { .. })
        ));
        store.drop_chain(c).unwrap();
        assert!(matches!(store.chain_len(c), Err(StorageError::UnknownChain(_))));
        assert!(matches!(store.chain_descriptor(c), Err(StorageError::UnknownChain(_))));
    }

    #[test]
    fn mem_store_basics() {
        exercise_store(&MemStore::new());
    }

    #[test]
    fn file_store_basics() {
        let dir = std::env::temp_dir().join(format!("payg-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        exercise_store(&FileStore::open(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_store_reopens_chains() {
        let dir = std::env::temp_dir().join(format!("payg-reopen-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (c1, c2);
        {
            let store = FileStore::open(&dir).unwrap();
            c1 = store.create_chain(32).unwrap();
            c2 = store.create_chain(128).unwrap();
            store.append_page(c1, b"one").unwrap();
            store.append_page(c1, b"two").unwrap();
            store.append_page(c2, b"big page").unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.chains(), vec![c1, c2]);
        assert_eq!(store.chain_len(c1).unwrap(), 2);
        assert_eq!(store.page_size(c2).unwrap(), 128);
        assert_eq!(&store.read_page(PageKey::new(c1, 1)).unwrap()[..3], b"two");
        // New chains after reopen don't collide with recovered ids.
        let c3 = store.create_chain(32).unwrap();
        assert!(c3.0 > c2.0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Descriptors persist in the chain file's reserved header region: they
    /// survive reopen, can be written after pages exist, and never disturb
    /// the page slots around them.
    #[test]
    fn file_store_chain_descriptors_survive_reopen() {
        let dir = std::env::temp_dir().join(format!("payg-desc-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let c;
        {
            let store = FileStore::open(&dir).unwrap();
            c = store.create_chain(32).unwrap();
            store.append_page(c, b"page zero").unwrap();
            // Set with a page already on disk, then shrink it.
            store.set_chain_descriptor(c, b"fsst table bytes").unwrap();
            store.set_chain_descriptor(c, b"pef").unwrap();
            // Oversized descriptors are refused, leaving the old one intact.
            assert!(matches!(
                store.set_chain_descriptor(c, &vec![0u8; DESC_CAP as usize + 1]),
                Err(StorageError::Corrupt(d)) if d.contains("exceeds")
            ));
            store.append_page(c, b"page one").unwrap();
        }
        let store = FileStore::open(&dir).unwrap();
        assert_eq!(store.chain_descriptor(c).unwrap(), b"pef");
        assert_eq!(&store.read_page(PageKey::new(c, 0)).unwrap()[..9], b"page zero");
        assert_eq!(&store.read_page(PageKey::new(c, 1)).unwrap()[..8], b"page one");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn faulty_store_injects_per_plan() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
        let c = store.create_chain(16).unwrap();
        store.append_page(c, b"x").unwrap();
        let key = PageKey::new(c, 0);
        assert!(store.read_page(key).is_ok());
        store.set_plan(FaultPlan::EveryNthRead(2));
        assert!(store.read_page(key).is_err()); // read #2
        assert!(store.read_page(key).is_ok()); // read #3
        store.set_plan(FaultPlan::Pages(vec![key]));
        assert!(matches!(store.read_page(key), Err(StorageError::InjectedFault(k)) if k == key));
        store.set_plan(FaultPlan::AfterReads(5));
        assert!(store.read_page(key).is_ok()); // read #5
        assert!(store.read_page(key).is_err()); // read #6
        assert_eq!(store.reads(), 6);
    }

    #[test]
    fn tiered_store_places_chains_per_tier() {
        // Deterministic: a recording sleeper captures the latency each read
        // *requests* instead of measuring wall-clock time.
        let slept: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder: Sleeper = {
            let slept = Arc::clone(&slept);
            Arc::new(move |d| slept.lock().unwrap().push(d))
        };
        let store = TieredStore::with_sleeper(
            MemStore::new(),
            Duration::from_micros(1),
            Duration::from_millis(3),
            recorder,
        );
        let fast = store.create_chain(16).unwrap();
        let slow = store.create_chain(16).unwrap();
        store.append_page(fast, b"f").unwrap();
        store.append_page(slow, b"s").unwrap();
        store.place_on_fast_tier(fast);
        assert!(store.is_fast(fast));
        assert!(!store.is_fast(slow));
        store.read_page(PageKey::new(fast, 0)).unwrap();
        store.read_page(PageKey::new(slow, 0)).unwrap();
        assert_eq!(
            *slept.lock().unwrap(),
            vec![Duration::from_micros(1), Duration::from_millis(3)],
            "each tier pays exactly its configured latency"
        );
        // Demote and the latency follows.
        store.place_on_slow_tier(fast);
        assert!(!store.is_fast(fast));
        store.read_page(PageKey::new(fast, 0)).unwrap();
        assert_eq!(slept.lock().unwrap().last(), Some(&Duration::from_millis(3)));
    }

    #[test]
    fn file_store_rejects_corrupt_header() {
        let dir = std::env::temp_dir().join(format!("payg-corrupt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("chain_0000000000000001.pg"), b"NOTMAGIC00000000").unwrap();
        assert!(matches!(FileStore::open(&dir), Err(StorageError::CorruptFile { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Every `FileStore::open` validation failure uses the same error shape:
    /// the full file path plus the byte offset of the offending field.
    #[test]
    fn file_store_open_errors_name_path_and_offset() {
        let dir = std::env::temp_dir().join(format!("payg-open-errs-{}", std::process::id()));
        let name = "chain_0000000000000001.pg";
        let expect = |bytes: &[u8], offset: u64, needle: &str| {
            let _ = std::fs::remove_dir_all(&dir);
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(dir.join(name), bytes).unwrap();
            match FileStore::open(&dir).map(|_| ()) {
                Err(StorageError::CorruptFile { path, offset: got, detail }) => {
                    assert!(path.ends_with(name), "path {path:?} should name the file");
                    assert!(
                        path.starts_with(&dir),
                        "path {path:?} should be the full path, not just the name"
                    );
                    assert_eq!(got, offset, "wrong offset for detail {detail:?}");
                    assert!(detail.contains(needle), "detail {detail:?} missing {needle:?}");
                }
                other => panic!("expected CorruptFile, got {other:?}"),
            }
        };

        let mut good = Vec::new();
        good.extend_from_slice(FILE_MAGIC);
        good.extend_from_slice(&32u32.to_le_bytes());
        good.extend_from_slice(&FORMAT_CHECKSUMMED.to_le_bytes());

        expect(b"PAYG", 0, "shorter than"); // truncated header
        expect(b"NOTMAGIC00000000", 0, "bad magic");
        let mut zero_ps = good.clone();
        zero_ps[8..12].copy_from_slice(&0u32.to_le_bytes());
        expect(&zero_ps, 8, "zero page size");
        let mut bad_fmt = good.clone();
        bad_fmt[12..16].copy_from_slice(&9u32.to_le_bytes());
        expect(&bad_fmt, 12, "unknown format");
        let mut torn = good.clone();
        torn.extend_from_slice(&[0u8; 17]); // not a multiple of the 40-byte slot
        expect(&torn, HEADER_LEN, "not a multiple");

        // Described-format (2) headers get the same treatment.
        let mut described = good.clone();
        described[12..16].copy_from_slice(&FORMAT_DESCRIBED.to_le_bytes());
        expect(&described, 16, "shorter than"); // missing desc_cap/desc_len
        let mut bad_desc_len = described.clone();
        bad_desc_len.extend_from_slice(&8u32.to_le_bytes()); // desc_cap = 8
        bad_desc_len.extend_from_slice(&9u32.to_le_bytes()); // desc_len = 9 > cap
        expect(&bad_desc_len, 20, "exceeds");
        let mut overrun = described.clone();
        overrun.extend_from_slice(&64u32.to_le_bytes()); // desc_cap = 64...
        overrun.extend_from_slice(&0u32.to_le_bytes()); // ...but the file ends at 24
        expect(&overrun, 16, "overruns");
        let mut torn2 = described.clone();
        torn2.extend_from_slice(&8u32.to_le_bytes());
        torn2.extend_from_slice(&0u32.to_le_bytes());
        torn2.extend_from_slice(&[0u8; 8 + 17]); // desc region + a torn slot
        expect(&torn2, HEADER2_LEN + 8, "not a multiple");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Flipping any payload bit on disk surfaces as a typed
    /// `ChecksumMismatch` naming the page, not as silent bad data.
    #[test]
    fn file_store_detects_bit_rot() {
        let dir = std::env::temp_dir().join(format!("payg-bitrot-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        let c = store.create_chain(32).unwrap();
        store.append_page(c, b"healthy page zero").unwrap();
        store.append_page(c, b"healthy page one").unwrap();
        let key = PageKey::new(c, 1);
        assert!(store.read_page(key).is_ok());

        // Rot one byte of page 1's payload behind the store's back.
        let path = store.chain_path(c.0);
        let mut bytes = std::fs::read(&path).unwrap();
        let slot = 32 + PAGE_TRAILER_LEN;
        let data_start = (HEADER2_LEN + DESC_CAP as u64) as usize;
        bytes[data_start + slot + 3] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        match store.read_page(key) {
            Err(StorageError::ChecksumMismatch { key: k, stored, computed }) => {
                assert_eq!(k, key);
                assert_ne!(stored, computed);
            }
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        }
        // The sibling page is untouched and still verifies.
        assert!(store.read_page(PageKey::new(c, 0)).is_ok());
        // Reopening also still verifies (checksums live per page, on disk).
        drop(store);
        let store = FileStore::open(&dir).unwrap();
        assert!(matches!(
            store.read_page(key),
            Err(StorageError::ChecksumMismatch { .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Files written before the checksum trailer existed (header format 0)
    /// still open and read — without verification.
    #[test]
    fn file_store_reads_legacy_unchecksummed_format() {
        let dir = std::env::temp_dir().join(format!("payg-legacy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut bytes = Vec::new();
        bytes.extend_from_slice(FILE_MAGIC);
        bytes.extend_from_slice(&16u32.to_le_bytes());
        bytes.extend_from_slice(&FORMAT_LEGACY.to_le_bytes());
        bytes.extend_from_slice(b"legacy page 0..."); // one raw 16-byte slot
        std::fs::write(dir.join("chain_0000000000000005.pg"), &bytes).unwrap();

        let store = FileStore::open(&dir).unwrap();
        let c = ChainId(5);
        assert_eq!(store.chain_len(c).unwrap(), 1);
        let page = store.read_page(PageKey::new(c, 0)).unwrap();
        assert_eq!(&page[..], b"legacy page 0...");
        // Descriptorless formats read as "no descriptor" and reject writes —
        // there is no reserved region to write into.
        assert!(store.chain_descriptor(c).unwrap().is_empty());
        assert!(matches!(
            store.set_chain_descriptor(c, b"codec"),
            Err(StorageError::Corrupt(d)) if d.contains("no descriptor region")
        ));
        // New chains created alongside are checksummed from birth.
        let fresh = store.create_chain(16).unwrap();
        store.append_page(fresh, b"fresh").unwrap();
        assert!(store.read_page(PageKey::new(fresh, 0)).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_pages_default_loops_and_keeps_per_page_metering() {
        // The trait default must behave exactly like N read_page calls —
        // including the fault-injection read clock advancing once per page.
        let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
        let c = store.create_chain(16).unwrap();
        for i in 0..4u8 {
            store.append_page(c, &[i; 16]).unwrap();
        }
        let results = store.read_pages(c, 0, 4);
        assert_eq!(results.len(), 4);
        for (i, r) in results.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap()[0], i as u8);
        }
        assert_eq!(store.reads(), 4, "one metered read per page");
        // Per-page faults land on their own slot only.
        store.set_plan(FaultPlan::Pages(vec![PageKey::new(c, 2)]));
        let results = store.read_pages(c, 0, 4);
        assert!(results[0].is_ok() && results[1].is_ok() && results[3].is_ok());
        assert!(matches!(
            results[2],
            Err(StorageError::InjectedFault(k)) if k == PageKey::new(c, 2)
        ));
    }

    #[test]
    fn file_store_read_pages_verifies_each_page_of_one_ranged_read() {
        let dir = std::env::temp_dir().join(format!("payg-batch-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = FileStore::open(&dir).unwrap();
        let c = store.create_chain(32).unwrap();
        for i in 0..5u8 {
            store.append_page(c, &[i; 32]).unwrap();
        }
        // Rot one byte of page 2 behind the store's back: the batch must
        // fail exactly that slot and still return its neighbors.
        let path = store.chain_path(c.0);
        let mut bytes = std::fs::read(&path).unwrap();
        let slot = 32 + PAGE_TRAILER_LEN;
        let data_start = (HEADER2_LEN + DESC_CAP as u64) as usize;
        bytes[data_start + 2 * slot + 7] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();

        let results = store.read_pages(c, 0, 7);
        assert_eq!(results.len(), 7);
        for (i, r) in results.iter().enumerate().take(5) {
            if i == 2 {
                assert!(matches!(
                    r,
                    Err(StorageError::ChecksumMismatch { key, .. }) if *key == PageKey::new(c, 2)
                ));
            } else {
                assert_eq!(r.as_ref().unwrap()[0], i as u8, "page {i} rides the batch intact");
            }
        }
        // The out-of-bounds tail gets per-page typed errors, each naming its
        // own page.
        for (i, r) in results.iter().enumerate().skip(5) {
            assert!(matches!(
                r,
                Err(StorageError::PageOutOfBounds { key, chain_len: 5 })
                    if *key == PageKey::new(c, i as u64)
            ));
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn latency_store_charges_one_delay_per_batch() {
        let slept: Arc<std::sync::Mutex<Vec<Duration>>> = Arc::default();
        let recorder: Sleeper = {
            let slept = Arc::clone(&slept);
            Arc::new(move |d| slept.lock().unwrap().push(d))
        };
        let store = LatencyStore::with_sleeper(MemStore::new(), Duration::from_micros(150), recorder);
        let c = store.create_chain(16).unwrap();
        for i in 0..6u8 {
            store.append_page(c, &[i; 16]).unwrap();
        }
        let results = store.read_pages(c, 1, 4);
        assert!(results.iter().all(Result::is_ok));
        assert_eq!(
            *slept.lock().unwrap(),
            vec![Duration::from_micros(150)],
            "the whole batch rides one seek"
        );
    }

    #[test]
    fn faulty_store_transient_window_heals() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::Transient { after: 2, count: 3 });
        let c = store.create_chain(16).unwrap();
        store.append_page(c, b"x").unwrap();
        let key = PageKey::new(c, 0);
        assert!(store.read_page(key).is_ok()); // read #1
        assert!(store.read_page(key).is_ok()); // read #2
        for i in 0..3 {
            let e = store.read_page(key).expect_err("outage read should fail");
            assert!(e.is_transient(), "outage read #{i} should classify transient");
        }
        assert!(store.read_page(key).is_ok(), "outage over, reads heal");
    }

    #[test]
    fn faulty_store_injects_write_faults() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::EveryNthWrite(2));
        let c = store.create_chain(16).unwrap();
        assert!(store.append_page(c, b"a").is_ok()); // write #1
        assert!(matches!(
            store.append_page(c, b"b"),
            Err(StorageError::InjectedWriteFault(id)) if id == c.0
        ));
        assert!(store.append_page(c, b"c").is_ok()); // write #3
        assert_eq!(store.writes(), 3);
        assert_eq!(store.chain_len(c).unwrap(), 2, "failed append left no page behind");
    }

    #[test]
    fn faulty_store_corrupt_pages_report_sticky_checksum_mismatch() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
        let c = store.create_chain(16).unwrap();
        store.append_page(c, b"doomed").unwrap();
        store.append_page(c, b"fine").unwrap();
        let bad = PageKey::new(c, 0);
        store.set_plan(FaultPlan::CorruptPages(vec![bad]));
        let (s1, c1) = match store.read_page(bad) {
            Err(StorageError::ChecksumMismatch { stored, computed, .. }) => (stored, computed),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        };
        assert_ne!(s1, c1);
        // Sticky and deterministic: the same corruption on every read.
        let (s2, c2) = match store.read_page(bad) {
            Err(StorageError::ChecksumMismatch { stored, computed, .. }) => (stored, computed),
            other => panic!("expected ChecksumMismatch, got {other:?}"),
        };
        assert_eq!((s1, c1), (s2, c2));
        assert!(store.read_page(PageKey::new(c, 1)).is_ok(), "unlisted pages pass");
    }

    #[test]
    fn faulty_store_seeded_is_deterministic_and_plausible() {
        let build = |seed| {
            let store = FaultyStore::new(
                MemStore::new(),
                FaultPlan::Seeded { seed, p_read: 0.3, p_corrupt: 0.1, p_write: 0.0 },
            );
            let c = store.create_chain(16).unwrap();
            for i in 0..4u8 {
                store.append_page(c, &[i; 4]).unwrap();
            }
            (store, c)
        };
        let (a, ca) = build(42);
        let (b, cb) = build(42);
        let mut outcomes = Vec::new();
        for round in 0..8 {
            for p in 0..4 {
                let ra = a.read_page(PageKey::new(ca, p));
                let rb = b.read_page(PageKey::new(cb, p));
                // Same seed, same key, same attempt → same decision.
                match (&ra, &rb) {
                    (Ok(x), Ok(y)) => assert_eq!(x, y),
                    (Err(StorageError::InjectedFault(_)), Err(StorageError::InjectedFault(_)))
                    | (
                        Err(StorageError::ChecksumMismatch { .. }),
                        Err(StorageError::ChecksumMismatch { .. }),
                    ) => {}
                    other => panic!("seed-divergent outcomes at round {round}: {other:?}"),
                }
                outcomes.push(match ra {
                    Ok(_) => 0u8,
                    Err(StorageError::InjectedFault(_)) => 1,
                    Err(e) => {
                        assert!(matches!(e, StorageError::ChecksumMismatch { .. }));
                        2
                    }
                });
            }
        }
        // With p_read=0.3 over 32 attempts all three outcomes should appear.
        assert!(outcomes.contains(&0), "no successful reads at all");
        assert!(outcomes.contains(&1), "no transient faults drawn");
        // A different seed draws a different schedule.
        let (d, cd) = build(43);
        let diverged = (0..8).any(|round| {
            (0..4).any(|p| {
                let rd = d.read_page(PageKey::new(cd, p)).is_ok();
                rd != (outcomes[round * 4 + p as usize] == 0)
            })
        });
        assert!(diverged, "seed 43 replayed seed 42's schedule exactly");
    }
}
