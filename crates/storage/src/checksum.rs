//! Page checksums.
//!
//! A table-driven CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`)
//! computed in-crate — no external dependency — with the table generated at
//! compile time by a `const fn`. [`FileStore`](crate::FileStore) writes a
//! checksum trailer next to every page payload and verifies it on read, so
//! torn writes and bit rot surface as a typed
//! [`ChecksumMismatch`](crate::StorageError::ChecksumMismatch) instead of
//! silently corrupt scan results.
//!
//! Page checksums are **keyed by page number**: the digest covers the
//! little-endian page number followed by the payload. A page written to the
//! wrong slot (a misdirected write) therefore fails verification even when
//! its bytes are individually intact.

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const TABLE: [u32; 256] = make_table();

/// Streaming CRC-32 state. Feed byte slices with [`Crc32::update`], extract
/// the digest with [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Crc32 {
    /// A fresh digest.
    pub fn new() -> Self {
        Crc32(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the digest.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC-32 of a byte slice.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

/// The checksum persisted with a page: CRC-32 over the little-endian page
/// number followed by the payload (padded to the slot's full page size by
/// the store before hashing, so re-verification needs no length metadata).
pub fn page_checksum(page_no: u64, payload: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(&page_no.to_le_bytes());
    c.update(payload);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_the_ieee_reference_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"page as you go: piecewise columnar access";
        let mut c = Crc32::new();
        c.update(&data[..10]);
        c.update(&data[10..]);
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn page_checksum_is_keyed_by_page_number() {
        let payload = vec![0xAB; 64];
        assert_ne!(page_checksum(0, &payload), page_checksum(1, &payload));
        assert_eq!(page_checksum(3, &payload), page_checksum(3, &payload));
    }

    #[test]
    fn single_bit_flips_change_the_digest() {
        let payload = vec![0u8; 256];
        let base = page_checksum(0, &payload);
        for bit in [0usize, 7, 1000, 2047] {
            let mut flipped = payload.clone();
            flipped[bit / 8] ^= 1 << (bit % 8);
            assert_ne!(page_checksum(0, &flipped), base, "bit {bit} went undetected");
        }
    }
}
