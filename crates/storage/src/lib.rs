//! Paged persistence: page chains, page stores, and the buffer pool.
//!
//! Page-loadable structures persist as **chains of disk-resident pages**
//! (paper §3.1.1): a chain is an ordered sequence of fixed-size pages
//! addressed by *logical page number*. Readers pin individual pages through
//! the [`BufferPool`], which loads on miss, registers every loaded page as a
//! separate [`payg_resman`] resource with the *paged attribute* disposition,
//! and drops frames when the resource manager evicts them. A pinned page is
//! never evicted — iterators hold a [`PageGuard`] for exactly the duration
//! the paper prescribes (release previous, pin next, on reposition).
//!
//! Two [`PageStore`] implementations are provided: a durable [`FileStore`]
//! (one file per chain, reopenable for cold-restart experiments) and an
//! in-memory [`MemStore`] for tests. [`FaultyStore`] wraps any store with
//! fault injection. [`IoProfile`] adds an optional synthetic per-read
//! latency so experiments can model slower cold storage than this machine's
//! page-cached files (see DESIGN.md, substitutions).

#![deny(missing_docs)]
#![forbid(unsafe_code)]

mod chain;
pub mod checksum;
mod error;
mod iostage;
mod metrics;
mod page;
mod pool;
mod store;
pub mod sync;

pub use chain::{ChainRef, ChainWriter};
pub use checksum::{crc32, page_checksum, Crc32};
pub use error::{FaultClass, StorageError, StorageResult};
pub use iostage::{DeadlineClass, IoStageConfig};
pub use metrics::{PoolMetrics, ShardMetrics};
pub use page::{ChainId, PageKey};
pub use pool::{
    BufferPool, PageGuard, PoolConfig, Prefetcher, RetryPolicy, DEFAULT_SHARD_COUNT,
};
pub use store::{
    real_sleeper, FaultPlan, FaultyStore, FileStore, GateStore, IoProfile, LatencyStore, MemStore,
    PageStore, Sleeper, TieredStore,
};
