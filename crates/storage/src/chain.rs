//! Chain writing helpers.
//!
//! Structure writers (data vector, dictionary, inverted index) build their
//! page chains through a [`ChainWriter`]: bytes are staged into the current
//! page and flushed when the writer decides a page is complete. The writer
//! never splits a single `push` across pages — layouts keep their own units
//! (chunks, value blocks, index blocks) page-local, which is what guarantees
//! iterators stable intra-page access.

use crate::{ChainId, PageStore, StorageError, StorageResult};
use std::sync::Arc;

/// A completed, immutable page chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainRef {
    /// The chain's id in its store.
    pub chain: ChainId,
    /// Number of pages written.
    pub pages: u64,
    /// The chain's page size in bytes.
    pub page_size: usize,
}

/// Appends pages to a fresh chain.
pub struct ChainWriter {
    store: Arc<dyn PageStore>,
    chain: ChainId,
    page_size: usize,
    cur: Vec<u8>,
    pages: u64,
}

impl ChainWriter {
    /// Creates a writer over a new chain with the given page size.
    pub fn new(store: Arc<dyn PageStore>, page_size: usize) -> StorageResult<Self> {
        let chain = store.create_chain(page_size)?;
        Ok(ChainWriter { store, chain, page_size, cur: Vec::with_capacity(page_size), pages: 0 })
    }

    /// The chain being written.
    pub fn chain(&self) -> ChainId {
        self.chain
    }

    /// The page size.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Bytes still free in the current page.
    pub fn remaining(&self) -> usize {
        self.page_size - self.cur.len()
    }

    /// Bytes used in the current page.
    pub fn used(&self) -> usize {
        self.cur.len()
    }

    /// Logical page number the *next* completed page will get, i.e. the page
    /// currently being filled.
    pub fn current_page_no(&self) -> u64 {
        self.pages
    }

    /// Appends bytes to the current page.
    ///
    /// Fails with [`StorageError::PageTooLarge`] if the bytes do not fit the
    /// remaining space — callers must check [`ChainWriter::remaining`] and
    /// call [`ChainWriter::finish_page`] first.
    pub fn push(&mut self, bytes: &[u8]) -> StorageResult<()> {
        if bytes.len() > self.remaining() {
            return Err(StorageError::PageTooLarge { got: bytes.len(), page_size: self.remaining() });
        }
        self.cur.extend_from_slice(bytes);
        Ok(())
    }

    /// Flushes the current page (zero-padded) to the store. No-op when the
    /// current page is empty.
    pub fn finish_page(&mut self) -> StorageResult<()> {
        if self.cur.is_empty() {
            return Ok(());
        }
        self.store.append_page(self.chain, &self.cur)?;
        self.cur.clear();
        self.pages += 1;
        Ok(())
    }

    /// Flushes the trailing page and returns the completed chain.
    pub fn finish(mut self) -> StorageResult<ChainRef> {
        self.finish_page()?;
        Ok(ChainRef { chain: self.chain, pages: self.pages, page_size: self.page_size })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MemStore, PageKey};

    #[test]
    fn writer_packs_pages_without_splitting_pushes() {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
        let mut w = ChainWriter::new(Arc::clone(&store), 16).unwrap();
        w.push(&[1; 10]).unwrap();
        assert_eq!(w.remaining(), 6);
        assert!(w.push(&[2; 7]).is_err(), "no silent page split");
        w.finish_page().unwrap();
        assert_eq!(w.current_page_no(), 1);
        w.push(&[2; 7]).unwrap();
        let r = w.finish().unwrap();
        assert_eq!(r.pages, 2);
        assert_eq!(store.chain_len(r.chain).unwrap(), 2);
        let p0 = store.read_page(PageKey::new(r.chain, 0)).unwrap();
        assert_eq!(&p0[..10], &[1; 10]);
        assert_eq!(&p0[10..], &[0; 6], "tail is zero-padded");
        let p1 = store.read_page(PageKey::new(r.chain, 1)).unwrap();
        assert_eq!(&p1[..7], &[2; 7]);
    }

    #[test]
    fn empty_writer_produces_empty_chain() {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
        let r = ChainWriter::new(store, 16).unwrap().finish().unwrap();
        assert_eq!(r.pages, 0);
    }

    #[test]
    fn finish_page_on_empty_current_page_is_noop() {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
        let mut w = ChainWriter::new(Arc::clone(&store), 16).unwrap();
        w.finish_page().unwrap();
        w.finish_page().unwrap();
        w.push(b"abc").unwrap();
        let r = w.finish().unwrap();
        assert_eq!(r.pages, 1);
    }
}
