//! Storage errors.
//!
//! This module is the **only** sanctioned place to construct the stringly
//! [`StorageError::Corrupt`] variant (enforced by `xtask lint`'s
//! `stringly-error` rule); callers elsewhere go through the
//! [`StorageError::corrupt`] / [`StorageError::corrupt_file`] helpers so the
//! taxonomy below stays the single source of truth for fault classification.

use crate::PageKey;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Errors from page stores and the buffer pool.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// A chain id that was never created (or already dropped).
    UnknownChain(u64),
    /// A logical page number beyond the end of its chain.
    PageOutOfBounds {
        /// The requested page.
        key: PageKey,
        /// Number of pages in the chain.
        chain_len: u64,
    },
    /// A page write larger than the chain's page size.
    PageTooLarge {
        /// Bytes offered.
        got: usize,
        /// The chain's page size.
        page_size: usize,
    },
    /// An injected read fault (tests only).
    InjectedFault(PageKey),
    /// An injected write fault while appending to a chain (tests only).
    InjectedWriteFault(u64),
    /// A persisted structure failed validation while being decoded.
    Corrupt(String),
    /// A page's stored checksum disagreed with the one recomputed from its
    /// payload: the page is torn, bit-rotted, or misdirected.
    ChecksumMismatch {
        /// The page whose payload failed verification.
        key: PageKey,
        /// The checksum persisted alongside the payload.
        stored: u32,
        /// The checksum recomputed from the payload as read.
        computed: u32,
    },
    /// A store file failed structural validation (bad magic, impossible
    /// header field, truncated body). Always names the file and the byte
    /// offset of the offending field.
    CorruptFile {
        /// The store file that failed validation.
        path: PathBuf,
        /// Byte offset of the field that failed validation.
        offset: u64,
        /// What was wrong at that offset.
        detail: String,
    },
    /// A single-flight load this pin was waiting on failed; carries the
    /// loader's actual error (shared, since every waiter receives it).
    LoadFailed {
        /// The page whose load failed.
        key: PageKey,
        /// The error the loading thread observed.
        source: Arc<StorageError>,
    },
    /// The page is quarantined after a permanent load failure; pins fail
    /// fast without touching the store until the quarantine TTL drains.
    Quarantined {
        /// The quarantined page.
        key: PageKey,
        /// Fail-fast pins remaining before the store is retried.
        pins_until_retry: u32,
        /// The permanent error that put the page in quarantine.
        source: Arc<StorageError>,
    },
}

/// Coarse classification of a storage fault, driving retry and quarantine
/// policy in the buffer pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultClass {
    /// Plausibly succeeds on retry: OS I/O errors, injected faults.
    Transient,
    /// Permanent data corruption: retrying re-reads the same bad bytes.
    Corrupt,
    /// Caller error (unknown chain, out-of-bounds page): retrying is
    /// pointless and the store is healthy.
    Logical,
}

impl FaultClass {
    /// Stable lowercase label, used for the `kind` metric label.
    pub fn label(self) -> &'static str {
        match self {
            FaultClass::Transient => "transient",
            FaultClass::Corrupt => "corrupt",
            FaultClass::Logical => "logical",
        }
    }
}

impl StorageError {
    /// Constructs the stringly corruption error for persisted-structure
    /// decoders. The one sanctioned constructor outside pattern matches.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StorageError::Corrupt(detail.into())
    }

    /// Constructs a structural store-file validation error naming the file
    /// and the byte offset of the offending field.
    pub fn corrupt_file(path: &Path, offset: u64, detail: impl Into<String>) -> Self {
        StorageError::CorruptFile { path: path.to_path_buf(), offset, detail: detail.into() }
    }

    /// Classifies this error for retry/quarantine policy.
    pub fn fault_class(&self) -> FaultClass {
        match self {
            StorageError::Io(_)
            | StorageError::InjectedFault(_)
            | StorageError::InjectedWriteFault(_) => FaultClass::Transient,
            StorageError::Corrupt(_)
            | StorageError::ChecksumMismatch { .. }
            | StorageError::CorruptFile { .. } => FaultClass::Corrupt,
            StorageError::UnknownChain(_)
            | StorageError::PageOutOfBounds { .. }
            | StorageError::PageTooLarge { .. } => FaultClass::Logical,
            StorageError::LoadFailed { source, .. }
            | StorageError::Quarantined { source, .. } => source.fault_class(),
        }
    }

    /// True when a retry of the failing operation could plausibly succeed
    /// (OS-level I/O hiccups); false for permanent corruption and for
    /// logical errors, where retrying re-observes the same state.
    pub fn is_transient(&self) -> bool {
        self.fault_class() == FaultClass::Transient
    }

    /// The page this error is about, when it names one.
    pub fn page_key(&self) -> Option<PageKey> {
        match self {
            StorageError::PageOutOfBounds { key, .. }
            | StorageError::InjectedFault(key)
            | StorageError::ChecksumMismatch { key, .. }
            | StorageError::LoadFailed { key, .. }
            | StorageError::Quarantined { key, .. } => Some(*key),
            _ => None,
        }
    }

    /// A faithful, shareable copy for fan-out to single-flight waiters and
    /// the quarantine set. `std::io::Error` is not `Clone`, so the I/O
    /// variant is rebuilt from its kind and message.
    pub fn to_shared(&self) -> Arc<StorageError> {
        let copy = match self {
            StorageError::Io(e) => StorageError::Io(std::io::Error::new(e.kind(), e.to_string())),
            StorageError::UnknownChain(c) => StorageError::UnknownChain(*c),
            StorageError::PageOutOfBounds { key, chain_len } => {
                StorageError::PageOutOfBounds { key: *key, chain_len: *chain_len }
            }
            StorageError::PageTooLarge { got, page_size } => {
                StorageError::PageTooLarge { got: *got, page_size: *page_size }
            }
            StorageError::InjectedFault(key) => StorageError::InjectedFault(*key),
            StorageError::InjectedWriteFault(chain) => StorageError::InjectedWriteFault(*chain),
            StorageError::Corrupt(msg) => StorageError::Corrupt(msg.clone()),
            StorageError::ChecksumMismatch { key, stored, computed } => {
                StorageError::ChecksumMismatch { key: *key, stored: *stored, computed: *computed }
            }
            StorageError::CorruptFile { path, offset, detail } => StorageError::CorruptFile {
                path: path.clone(),
                offset: *offset,
                detail: detail.clone(),
            },
            StorageError::LoadFailed { key, source } => {
                StorageError::LoadFailed { key: *key, source: Arc::clone(source) }
            }
            StorageError::Quarantined { key, pins_until_retry, source } => {
                StorageError::Quarantined {
                    key: *key,
                    pins_until_retry: *pins_until_retry,
                    source: Arc::clone(source),
                }
            }
        };
        Arc::new(copy)
    }
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::UnknownChain(c) => write!(f, "unknown page chain {c}"),
            StorageError::PageOutOfBounds { key, chain_len } => {
                write!(f, "page {key:?} out of bounds (chain has {chain_len} pages)")
            }
            StorageError::PageTooLarge { got, page_size } => {
                write!(f, "page payload of {got} bytes exceeds page size {page_size}")
            }
            StorageError::InjectedFault(key) => write!(f, "injected fault reading {key:?}"),
            StorageError::InjectedWriteFault(chain) => {
                write!(f, "injected fault appending to chain {chain}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
            StorageError::ChecksumMismatch { key, stored, computed } => write!(
                f,
                "checksum mismatch on page {key:?}: stored {stored:#010x}, computed {computed:#010x}"
            ),
            StorageError::CorruptFile { path, offset, detail } => {
                write!(f, "corrupt store file {} at offset {offset}: {detail}", path.display())
            }
            StorageError::LoadFailed { key, source } => {
                write!(f, "load of page {key:?} failed: {source}")
            }
            StorageError::Quarantined { key, pins_until_retry, source } => write!(
                f,
                "page {key:?} is quarantined ({pins_until_retry} fail-fast pins until the \
                 store is retried): {source}"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            StorageError::LoadFailed { source, .. } | StorageError::Quarantined { source, .. } => {
                Some(source.as_ref())
            }
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{ChainId, PageKey};

    fn key() -> PageKey {
        PageKey::new(ChainId(7), 3)
    }

    #[test]
    fn fault_classes_split_transient_from_permanent() {
        let io = StorageError::Io(std::io::Error::other("disk hiccup"));
        assert!(io.is_transient());
        assert!(StorageError::InjectedFault(key()).is_transient());
        assert!(StorageError::InjectedWriteFault(7).is_transient());

        let bad = StorageError::ChecksumMismatch { key: key(), stored: 1, computed: 2 };
        assert_eq!(bad.fault_class(), FaultClass::Corrupt);
        assert!(!bad.is_transient());
        assert_eq!(StorageError::corrupt("truncated header").fault_class(), FaultClass::Corrupt);

        assert_eq!(StorageError::UnknownChain(9).fault_class(), FaultClass::Logical);
        let oob = StorageError::PageOutOfBounds { key: key(), chain_len: 1 };
        assert_eq!(oob.fault_class(), FaultClass::Logical);
    }

    #[test]
    fn wrapping_variants_classify_and_source_through_to_the_cause() {
        let cause = StorageError::ChecksumMismatch { key: key(), stored: 1, computed: 2 };
        let shared = cause.to_shared();
        let waited = StorageError::LoadFailed { key: key(), source: Arc::clone(&shared) };
        assert_eq!(waited.fault_class(), FaultClass::Corrupt);
        assert_eq!(waited.page_key(), Some(key()));
        assert!(std::error::Error::source(&waited).is_some());

        let quarantined =
            StorageError::Quarantined { key: key(), pins_until_retry: 4, source: shared };
        assert!(!quarantined.is_transient());
        assert!(quarantined.to_string().contains("quarantined"));
    }

    #[test]
    fn shared_io_copy_preserves_kind_and_message() {
        let io = StorageError::Io(std::io::Error::new(
            std::io::ErrorKind::TimedOut,
            "slow spindle",
        ));
        let copy = io.to_shared();
        match copy.as_ref() {
            StorageError::Io(e) => {
                assert_eq!(e.kind(), std::io::ErrorKind::TimedOut);
                assert!(e.to_string().contains("slow spindle"));
            }
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_file_errors_name_path_and_offset() {
        let e = StorageError::corrupt_file(Path::new("/tmp/chain_0.pg"), 8, "zero page size");
        let text = e.to_string();
        assert!(text.contains("/tmp/chain_0.pg"), "missing path: {text}");
        assert!(text.contains("offset 8"), "missing offset: {text}");
        assert!(text.contains("zero page size"), "missing detail: {text}");
    }
}
