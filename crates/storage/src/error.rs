//! Storage errors.

use crate::PageKey;

/// Errors from page stores and the buffer pool.
#[derive(Debug)]
pub enum StorageError {
    /// An operating-system I/O failure.
    Io(std::io::Error),
    /// A chain id that was never created (or already dropped).
    UnknownChain(u64),
    /// A logical page number beyond the end of its chain.
    PageOutOfBounds {
        /// The requested page.
        key: PageKey,
        /// Number of pages in the chain.
        chain_len: u64,
    },
    /// A page write larger than the chain's page size.
    PageTooLarge {
        /// Bytes offered.
        got: usize,
        /// The chain's page size.
        page_size: usize,
    },
    /// An injected fault (tests only).
    InjectedFault(PageKey),
    /// A persisted structure failed validation while being decoded.
    Corrupt(String),
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::UnknownChain(c) => write!(f, "unknown page chain {c}"),
            StorageError::PageOutOfBounds { key, chain_len } => {
                write!(f, "page {key:?} out of bounds (chain has {chain_len} pages)")
            }
            StorageError::PageTooLarge { got, page_size } => {
                write!(f, "page payload of {got} bytes exceeds page size {page_size}")
            }
            StorageError::InjectedFault(key) => write!(f, "injected fault reading {key:?}"),
            StorageError::Corrupt(msg) => write!(f, "corrupt page data: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;
