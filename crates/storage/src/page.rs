//! Page addressing.

/// Identifies one page chain within a [`crate::PageStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ChainId(pub u64);

/// Addresses one page: a chain plus the logical page number within it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    /// The chain the page belongs to.
    pub chain: ChainId,
    /// Zero-based logical page number within the chain.
    pub page_no: u64,
}

impl PageKey {
    /// Convenience constructor.
    pub fn new(chain: ChainId, page_no: u64) -> Self {
        PageKey { chain, page_no }
    }
}
