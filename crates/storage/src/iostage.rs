//! The cold-path I/O stage: request-coalescing asynchronous fetch between
//! the buffer pool and the [`PageStore`](crate::PageStore).
//!
//! A pool miss no longer reads the store inline. Instead the pinning thread
//! installs its single-flight `Loading` slot as before, then submits a
//! [`FetchRequest`] to a bounded two-class queue and parks on a completion
//! *ticket*. A small worker pool drains the queue in batches, sorts each
//! batch by `(chain, page_no)`, and **coalesces adjacent page numbers into
//! one ranged [`read_pages`](crate::PageStore::read_pages) call** — so a
//! cold sweep whose misses arrive from many scan workers pays one
//! positioned read per run of consecutive pages instead of one per page.
//!
//! Every request still completes *individually*: per-page CRC verification
//! happens inside the store's ranged read, a transient fault on one page of
//! a batch re-enters the pool's [`RetryPolicy`](crate::RetryPolicy) for
//! that page alone, and a corrupt page quarantines only itself. The
//! completion protocol is exactly the inline pool's publish sequence
//! (insert `Resident`, publish the load state, then resolve the ticket), so
//! single-flight waiters become completion subscribers without code changes.
//!
//! Two deadline classes order the queue: `Urgent` (a thread is parked on
//! the ticket) always pops before `Prefetch` (advisory, droppable). The
//! prefetch side is bounded; a submission beyond the cap is *cancelled* —
//! the submitter withdraws its `Loading` slot and publishes so any pin that
//! joined in the meantime re-inspects and loads itself.
//!
//! Lock ranks: the queue mutex is rank `IoQueue` (3), below every pool
//! lock, and is never held across a store call; tickets are rank `IoTicket`
//! (6) and are waited on with no other lock held. Under the `payg_check`
//! model-check cfg the stage degrades to inline fetches (no unmanaged
//! threads race the explored schedule).

use crate::pool::{Frame, LoadState, PoolInner, Slot};
use crate::sync::{Condvar, LockRank, Mutex};
use crate::{FaultClass, PageKey, StorageResult};
use payg_obs::{EventKind, SpanKind};
use std::collections::VecDeque;
use std::sync::{Arc, Weak};
use std::thread::JoinHandle;

/// Tuning for the cold-path I/O stage. [`Default`] matches
/// [`PoolConfig::default`](crate::PoolConfig): two workers, 16-page
/// batches, a 256-entry prefetch backlog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoStageConfig {
    /// I/O worker threads draining the submission queue. `0` disables the
    /// stage (misses fetch inline, exactly the pre-stage pool).
    pub workers: usize,
    /// Maximum requests popped (and thus coalesced) per worker wakeup.
    pub max_batch: usize,
    /// Prefetch-class backlog bound; submissions beyond it are cancelled.
    /// Urgent requests are never dropped.
    pub queue_cap: usize,
}

impl Default for IoStageConfig {
    fn default() -> Self {
        IoStageConfig { workers: 2, max_batch: 16, queue_cap: 256 }
    }
}

/// Urgency of one fetch request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeadlineClass {
    /// A pinning thread is parked on the completion; pops before any
    /// prefetch and is never dropped.
    Urgent,
    /// Advisory read-ahead: droppable when the backlog is full, completes
    /// by leaving the frame resident and unpinned.
    Prefetch,
}

/// How a completed fetch is delivered.
pub(crate) enum Completion {
    /// A pin is parked on this ticket; resolve it with the pinned frame or
    /// the raw load error.
    Ticket(Arc<Ticket>),
    /// Advisory: leave the frame resident, release the registration pin.
    Advisory,
}

/// One queued cold-path fetch.
pub(crate) struct FetchRequest {
    pub key: PageKey,
    pub class: DeadlineClass,
    /// The single-flight slot this request owns; completion publishes or
    /// fails it (with the usual pointer-identity ABA guard).
    pub ls: Arc<LoadState>,
    pub completion: Completion,
    /// Originating span id (0 = none), captured at submit time on the
    /// pinning/prefetching thread. Completions tag their events with it so
    /// a coalesced batch records *every* beneficiary query, not just the
    /// one whose miss triggered the physical read.
    pub span: u64,
}

enum TicketState {
    Pending,
    Done(StorageResult<Arc<Frame>>),
}

/// Completion latch between a submitting pin and the worker resolving it.
/// A resolved `Ok` carries the frame *with its registration pin still
/// held*: the submitter turns it into a `PageGuard` without a pin/evict
/// race, exactly like the inline load path.
pub(crate) struct Ticket {
    state: Mutex<TicketState>,
    cv: Condvar,
}

impl Ticket {
    pub fn new() -> Arc<Self> {
        Arc::new(Ticket {
            state: Mutex::with_rank(TicketState::Pending, LockRank::IoTicket),
            cv: Condvar::new(),
        })
    }

    fn resolve(&self, result: StorageResult<Arc<Frame>>) {
        *self.state.lock() = TicketState::Done(result);
        self.cv.notify_all();
    }

    /// Blocks until the worker resolves this ticket.
    pub fn wait(&self) -> StorageResult<Arc<Frame>> {
        let mut state = self.state.lock();
        loop {
            match std::mem::replace(&mut *state, TicketState::Pending) {
                TicketState::Pending => self.cv.wait(&mut state),
                TicketState::Done(result) => return result,
            }
        }
    }
}

struct QueueState {
    urgent: VecDeque<FetchRequest>,
    prefetch: VecDeque<FetchRequest>,
    closed: bool,
}

/// The two-class bounded submission queue.
struct IoQueue {
    state: Mutex<QueueState>,
    cv: Condvar,
    prefetch_cap: usize,
}

impl IoQueue {
    fn new(prefetch_cap: usize) -> Arc<Self> {
        Arc::new(IoQueue {
            state: Mutex::with_rank(
                QueueState { urgent: VecDeque::new(), prefetch: VecDeque::new(), closed: false },
                LockRank::IoQueue,
            ),
            cv: Condvar::new(),
            prefetch_cap,
        })
    }

    /// Enqueues an urgent request (always accepted); returns the queue
    /// depth after the push.
    fn push_urgent(&self, req: FetchRequest) -> usize {
        let mut st = self.state.lock();
        st.urgent.push_back(req);
        let depth = st.urgent.len() + st.prefetch.len();
        self.cv.notify_one();
        depth
    }

    /// Enqueues a prefetch request, or hands it back when the backlog is
    /// full or the stage is shutting down (the caller cancels).
    fn push_prefetch(&self, req: FetchRequest) -> Result<usize, FetchRequest> {
        let mut st = self.state.lock();
        if st.closed || st.prefetch.len() >= self.prefetch_cap {
            return Err(req);
        }
        st.prefetch.push_back(req);
        let depth = st.urgent.len() + st.prefetch.len();
        self.cv.notify_one();
        Ok(depth)
    }

    /// Pops up to `max` requests, urgent class first. Blocks while the
    /// queue is empty; returns `None` once closed *and* drained.
    fn pop_batch(&self, max: usize) -> Option<Vec<FetchRequest>> {
        let mut st = self.state.lock();
        loop {
            if st.urgent.is_empty() && st.prefetch.is_empty() {
                if st.closed {
                    return None;
                }
                self.cv.wait(&mut st);
                continue;
            }
            let mut out = Vec::new();
            while out.len() < max {
                if let Some(r) = st.urgent.pop_front() {
                    out.push(r);
                } else if let Some(r) = st.prefetch.pop_front() {
                    out.push(r);
                } else {
                    break;
                }
            }
            return Some(out);
        }
    }

    fn close(&self) {
        self.state.lock().closed = true;
        self.cv.notify_all();
    }
}

/// A running I/O stage: the queue plus its worker threads. Owned by
/// `PoolInner`; dropping it closes the queue and joins the workers.
pub(crate) struct IoStage {
    queue: Arc<IoQueue>,
    workers: Vec<JoinHandle<()>>,
}

impl IoStage {
    /// Starts the stage, or returns `None` when it is configured off
    /// (`workers == 0`) or the build is a `payg_check` model check — the
    /// deterministic scheduler must not race unmanaged worker threads, so
    /// model builds always fetch inline.
    pub fn start(pool: &Weak<PoolInner>, config: IoStageConfig) -> Option<IoStage> {
        let workers = if cfg!(payg_check) { 0 } else { config.workers };
        if workers == 0 {
            return None;
        }
        let queue = IoQueue::new(config.queue_cap.max(1));
        let max_batch = config.max_batch.max(1);
        let handles = (0..workers)
            .map(|i| {
                let queue = Arc::clone(&queue);
                let pool = Weak::clone(pool);
                std::thread::Builder::new()
                    .name(format!("payg-io-{i}"))
                    .spawn(move || worker_loop(&pool, &queue, max_batch))
                    // lint: allow(unwrap) invariant: thread spawn fails only on OS resource exhaustion
                    .expect("spawn io-stage worker")
            })
            .collect();
        Some(IoStage { queue, workers: handles })
    }

    /// Submits a request, routed by its [`DeadlineClass`]: urgent requests
    /// are always accepted, prefetch requests are handed back for
    /// cancellation when the backlog is full. Returns the queue depth
    /// after an accepted push.
    pub fn submit(&self, req: FetchRequest) -> Result<usize, FetchRequest> {
        match req.class {
            DeadlineClass::Urgent => Ok(self.queue.push_urgent(req)),
            DeadlineClass::Prefetch => self.queue.push_prefetch(req),
        }
    }
}

impl Drop for IoStage {
    fn drop(&mut self) {
        self.queue.close();
        let me = std::thread::current().id();
        for handle in self.workers.drain(..) {
            // A worker can run the pool's final drop (it held the last
            // upgraded Arc): it must not join itself — the queue is closed,
            // so its own loop exits right after this drop returns.
            if handle.thread().id() == me {
                continue;
            }
            let _ = handle.join();
        }
    }
}

fn worker_loop(pool: &Weak<PoolInner>, queue: &Arc<IoQueue>, max_batch: usize) {
    while let Some(batch) = queue.pop_batch(max_batch) {
        let Some(pool) = pool.upgrade() else {
            // Pool destruction in progress: no ticket can exist (tickets
            // are only held by live pins), so leftover advisory requests
            // are simply dropped.
            continue;
        };
        process_batch(&pool, batch);
    }
}

/// Sorts a popped batch by `(chain, page_no)` and fetches each run of
/// consecutive pages with one ranged read.
fn process_batch(pool: &Arc<PoolInner>, mut batch: Vec<FetchRequest>) {
    batch.sort_by_key(|r| (r.key.chain.0, r.key.page_no));
    let mut runs: Vec<usize> = Vec::new();
    let mut start = 0usize;
    for i in 1..batch.len() {
        let prev = batch[i - 1].key;
        let cur = batch[i].key;
        if cur.chain != prev.chain || cur.page_no != prev.page_no.wrapping_add(1) {
            runs.push(i - start);
            start = i;
        }
    }
    if !batch.is_empty() {
        runs.push(batch.len() - start);
    }
    let mut it = batch.into_iter();
    for len in runs {
        let run: Vec<FetchRequest> = it.by_ref().take(len).collect();
        process_run(pool, run);
    }
}

/// One physical read covering `run` (consecutive pages of one chain), then
/// per-request completion. A transient fault on one page re-enters the
/// retry policy for that page alone; other pages of the batch are
/// unaffected.
fn process_run(pool: &Arc<PoolInner>, run: Vec<FetchRequest>) {
    let first = run[0].key;
    let n = run.len();
    pool.metrics.io_physical_reads.inc();
    pool.metrics.io_batch_pages.record(n as u64);
    if n > 1 {
        pool.metrics.io_coalesced.add(n as u64);
    }
    // The batch span covers just the physical read; its id doubles as the
    // batch id carried in `aux` by IoBatchIssued and every IoCompleted of
    // the run, so a drained log can tell batches *joined* (my page rode a
    // read initiated by another query's span) from batches *initiated*.
    // Parentage goes to the run's first request by page order.
    let batch_span = pool.tracer.span_with_parent(SpanKind::IoBatch, run[0].span, n as u64);
    let batch_id = batch_span.id();
    pool.tracer.emit_tagged(
        EventKind::IoBatchIssued,
        first.chain.0,
        first.page_no,
        n as u64,
        run[0].span,
        batch_id,
    );
    // Charge the read against the memory footprint while it is in flight;
    // on success the bytes transfer to the registered frame resources.
    let expected = pool.store.page_size(first.chain).unwrap_or(0) * n;
    pool.resman.begin_inflight(expected);
    pool.io.apply_read();
    let results = pool.store.read_pages(first.chain, first.page_no, n);
    pool.resman.end_inflight(expected);
    // Close the read span before per-request completion so the plain emits
    // inside admit_frame do not adopt the batch span: per-request
    // attribution belongs to each request's own originating span.
    drop(batch_span);
    debug_assert_eq!(results.len(), n, "read_pages must return one result per page");
    for (req, result) in run.into_iter().zip(results) {
        let outcome = match result {
            Ok(data) => Ok(data),
            Err(e) => {
                // The ranged read was this page's attempt 1: count its
                // fault, then continue the per-page retry loop if the
                // policy has attempts left and the fault is transient.
                pool.metrics.fault_counter(e.fault_class()).inc();
                if e.is_transient() && pool.retry.max_attempts > 1 {
                    pool.metrics.load_retries.inc();
                    pool.tracer.emit_tagged(
                        EventKind::LoadRetried,
                        req.key.chain.0,
                        req.key.page_no,
                        1,
                        req.span,
                        batch_id,
                    );
                    let backoff = pool.retry.backoff_for(1);
                    if !backoff.is_zero() {
                        (pool.sleeper)(backoff);
                    }
                    fetch_with_retry(pool, req.key, 1, true, req.span)
                } else {
                    Err(e)
                }
            }
        };
        complete(pool, req, outcome, batch_id);
    }
}

/// The store-read loop with transient retry — the single place in the pool
/// stack that calls [`read_page`](crate::PageStore::read_page). `attempt`
/// is how many attempts already failed (0 for a fresh inline fetch);
/// `staged` makes each read count as an I/O-stage physical read. `span` is
/// the originating request's span, tagged onto retry events.
pub(crate) fn fetch_with_retry(
    pool: &PoolInner,
    key: PageKey,
    mut attempt: u32,
    staged: bool,
    span: u64,
) -> StorageResult<Box<[u8]>> {
    loop {
        attempt += 1;
        if staged {
            pool.metrics.io_physical_reads.inc();
        }
        pool.io.apply_read();
        match pool.store.read_page(key) {
            Ok(data) => return Ok(data),
            Err(e) => {
                pool.metrics.fault_counter(e.fault_class()).inc();
                if e.is_transient() && attempt < pool.retry.max_attempts {
                    pool.metrics.load_retries.inc();
                    pool.tracer.emit_tagged(
                        EventKind::LoadRetried,
                        key.chain.0,
                        key.page_no,
                        staged as u64,
                        span,
                        0,
                    );
                    let backoff = pool.retry.backoff_for(attempt);
                    if !backoff.is_zero() {
                        (pool.sleeper)(backoff);
                    }
                    continue;
                }
                return Err(e);
            }
        }
    }
}

/// Completes one request: the inline pool's exact publish/fail sequence,
/// then ticket resolution or the advisory unpin. `batch` is the coalesced
/// read's batch id, tagged onto the completion event so every beneficiary
/// request records which physical read served it.
fn complete(pool: &Arc<PoolInner>, req: FetchRequest, outcome: StorageResult<Box<[u8]>>, batch: u64) {
    match outcome {
        Ok(data) => {
            let bytes = data.len() as u64;
            let frame = pool.admit_frame(req.key, data);
            pool.shard(req.key)
                .lock()
                .slots
                .insert(req.key, Slot::Resident(Arc::clone(&frame)));
            // Count the completion before publishing: the publish wakes the
            // submitter, which may read the metrics immediately.
            pool.metrics.io_completions.inc();
            pool.tracer.emit_tagged(
                EventKind::IoCompleted,
                req.key.chain.0,
                req.key.page_no,
                bytes,
                req.span,
                batch,
            );
            req.ls.publish();
            match req.completion {
                // The registration pin rides the ticket to the submitter.
                Completion::Ticket(ticket) => ticket.resolve(Ok(frame)),
                Completion::Advisory => pool.resman.unpin(frame.rid()),
            }
        }
        Err(err) => {
            let shared = err.to_shared();
            {
                let mut state = pool.shard(req.key).lock();
                // Remove our load state so later pins retry; the pointer
                // check guards against ABA with a newer load.
                if matches!(
                    state.slots.get(&req.key),
                    Some(Slot::Loading(cur)) if Arc::ptr_eq(cur, &req.ls)
                ) {
                    state.slots.remove(&req.key);
                }
                if err.fault_class() == FaultClass::Corrupt {
                    pool.quarantine(&mut state, req.key, Arc::clone(&shared));
                }
            }
            // Count the completion, then wake waiters with the actual error
            // after the slot update so none of them can observe a stale
            // Loading entry (or a completion count behind their own wakeup).
            pool.metrics.io_completions.inc();
            pool.tracer.emit_tagged(
                EventKind::IoCompleted,
                req.key.chain.0,
                req.key.page_no,
                0,
                req.span,
                batch,
            );
            req.ls.fail(shared);
            match req.completion {
                Completion::Ticket(ticket) => ticket.resolve(Err(err)),
                Completion::Advisory => {}
            }
        }
    }
}
