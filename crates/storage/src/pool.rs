//! The buffer pool: load-on-miss page frames with RAII pin guards.

use crate::iostage::{self, Completion, DeadlineClass, FetchRequest, IoStage, IoStageConfig, Ticket};
use crate::metrics::{MetricCounters, ShardCounters, ShardMetrics};
use crate::store::{real_sleeper, Sleeper};
use crate::sync::{Condvar, LockRank, Mutex, MutexGuard, RwLock};
use crate::{
    ChainId, FaultClass, IoProfile, PageKey, PageStore, PoolMetrics, StorageError, StorageResult,
};
use crossbeam::channel::{unbounded, Sender};
use payg_check::PinTracker;
use payg_obs::{EventKind, Registry, SpanKind, Tracer};
use payg_resman::{Disposition, ResourceId, ResourceManager};
use std::any::Any;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default number of lock-striped shards (a power of two; plenty for the
/// worker counts the scan experiments use).
pub const DEFAULT_SHARD_COUNT: usize = 16;

/// One resident page. Page data is immutable after load (main fragments are
/// read-only between delta merges), so frames can be shared freely.
pub struct Frame {
    key: PageKey,
    data: Box<[u8]>,
    rid: OnceLock<ResourceId>,
    /// Transient data rebuilt on every load and destroyed on eviction
    /// (paper §3.2.1: the dictionary's block-offset vector).
    transient: RwLock<Option<Arc<dyn Any + Send + Sync>>>,
    transient_bytes: AtomicUsize,
}

impl Frame {
    pub(crate) fn rid(&self) -> ResourceId {
        // lint: allow(unwrap) invariant: set by load_frame before the frame is published
        *self.rid.get().expect("frame registered")
    }
}

/// How one in-flight single-flight load ended.
enum LoadOutcome {
    Pending,
    /// The frame was published into the shard; waiters re-inspect and hit.
    Published,
    /// The load failed; waiters receive the loader's actual error instead
    /// of blindly retrying as loaders.
    Failed(Arc<StorageError>),
}

/// Tracks one in-flight page load so concurrent pins of the same key wait
/// for the loading thread instead of issuing duplicate reads.
pub(crate) struct LoadState {
    outcome: Mutex<LoadOutcome>,
    cv: Condvar,
}

impl LoadState {
    fn new() -> Arc<Self> {
        Arc::new(LoadState {
            outcome: Mutex::with_rank(LoadOutcome::Pending, LockRank::LoadState),
            cv: Condvar::new(),
        })
    }

    pub(crate) fn publish(&self) {
        *self.outcome.lock() = LoadOutcome::Published;
        self.cv.notify_all();
    }

    pub(crate) fn fail(&self, error: Arc<StorageError>) {
        *self.outcome.lock() = LoadOutcome::Failed(error);
        self.cv.notify_all();
    }

    /// Blocks until the load resolves. `None` means the frame was published
    /// (re-inspect the shard); `Some(e)` carries the loader's error.
    fn wait(&self) -> Option<Arc<StorageError>> {
        let mut outcome = self.outcome.lock();
        loop {
            match &*outcome {
                LoadOutcome::Pending => self.cv.wait(&mut outcome),
                LoadOutcome::Published => return None,
                LoadOutcome::Failed(e) => return Some(Arc::clone(e)),
            }
        }
    }
}

/// A shard's slot: either a resident frame or a load in flight.
pub(crate) enum Slot {
    Resident(Arc<Frame>),
    Loading(Arc<LoadState>),
}

/// A quarantined page: load failed permanently; pins fail fast until
/// `pins_left` drains to zero, then the store is retried.
struct QuarantineEntry {
    error: Arc<StorageError>,
    pins_left: u32,
}

/// Everything a shard guards under its stripe lock: the frame/load slots
/// plus the quarantine set for keys hashing to this stripe.
pub(crate) struct ShardState {
    pub(crate) slots: HashMap<PageKey, Slot>,
    quarantine: HashMap<PageKey, QuarantineEntry>,
}

pub(crate) struct Shard {
    state: Mutex<ShardState>,
    counters: ShardCounters,
}

impl Shard {
    fn new(registry: &Registry, pool_label: &str, index: usize) -> Self {
        Shard {
            state: Mutex::with_rank(
                ShardState { slots: HashMap::new(), quarantine: HashMap::new() },
                LockRank::PoolShard,
            ),
            counters: ShardCounters::register(registry, pool_label, index),
        }
    }

    /// Locks the shard state, counting acquisitions that had to block.
    pub(crate) fn lock(&self) -> MutexGuard<'_, ShardState> {
        match self.state.try_lock() {
            Some(guard) => guard,
            None => {
                self.counters.contended.inc();
                self.state.lock()
            }
        }
    }
}

/// Bounded retry with exponential backoff for transient load faults.
/// Attempt `k`'s failure sleeps `initial_backoff * multiplier^(k-1)` before
/// attempt `k+1`; permanent (corrupt/logical) faults never retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total load attempts, including the first (`>= 1`).
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub initial_backoff: Duration,
    /// Backoff growth factor per additional attempt.
    pub multiplier: u32,
}

impl RetryPolicy {
    /// No retries: a single attempt, faults surface immediately (the
    /// pre-fault-tolerance pool behavior).
    pub const NONE: RetryPolicy =
        RetryPolicy { max_attempts: 1, initial_backoff: Duration::ZERO, multiplier: 1 };

    /// Backoff after `failed_attempts` (1-based) have failed.
    pub fn backoff_for(&self, failed_attempts: u32) -> Duration {
        self.initial_backoff * self.multiplier.saturating_pow(failed_attempts.saturating_sub(1))
    }
}

impl Default for RetryPolicy {
    /// Three attempts, 100µs then 400µs of backoff — absorbs the short
    /// transient hiccups real disks produce without adding meaningful
    /// latency to genuinely failed pins.
    fn default() -> Self {
        RetryPolicy { max_attempts: 3, initial_backoff: Duration::from_micros(100), multiplier: 4 }
    }
}

/// Construction-time pool tuning: I/O simulation, shard count, fault
/// tolerance. [`Default`] matches `BufferPool::new`.
#[derive(Clone)]
pub struct PoolConfig {
    /// Synthetic latency applied to every load attempt.
    pub io: IoProfile,
    /// Number of lock stripes (clamped to at least 1).
    pub shards: usize,
    /// Bounded retry for transient load faults.
    pub retry: RetryPolicy,
    /// Fail-fast pins a quarantined page serves before the store is retried.
    pub quarantine_ttl: u32,
    /// Maximum quarantined pages per shard; inserting beyond it evicts the
    /// entry closest to expiry.
    pub quarantine_cap: usize,
    /// Where retry backoff is spent; tests inject a recording sleeper.
    pub sleeper: Sleeper,
    /// The cold-path I/O stage (batched asynchronous fetch). `None` — or a
    /// config with `workers == 0` — fetches misses inline on the pinning
    /// thread, the pre-stage behavior.
    pub io_stage: Option<IoStageConfig>,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            io: IoProfile::NONE,
            shards: DEFAULT_SHARD_COUNT,
            retry: RetryPolicy::default(),
            quarantine_ttl: 8,
            quarantine_cap: 32,
            sleeper: real_sleeper(),
            io_stage: Some(IoStageConfig::default()),
        }
    }
}

pub(crate) struct PoolInner {
    pub(crate) store: Arc<dyn PageStore>,
    pub(crate) resman: ResourceManager,
    pub(crate) io: IoProfile,
    pub(crate) retry: RetryPolicy,
    quarantine_ttl: u32,
    quarantine_cap: usize,
    pub(crate) sleeper: Sleeper,
    shards: Box<[Shard]>,
    pub(crate) metrics: MetricCounters,
    /// The resman's registry; this pool's counters live in it under a
    /// `pool="<instance>"` label.
    registry: Registry,
    /// The value of that `pool` label, kept so structure builders can emit
    /// their own per-pool series (codec bytes, compression ratios) that
    /// join this pool's.
    label: String,
    /// The registry's page-lifecycle tracer (cached: emit is on hot paths).
    pub(crate) tracer: Tracer,
    /// Pin-leak detector (`strict-invariants` only; zero-sized otherwise).
    pins: PinTracker,
    /// The cold-path I/O stage; `None` fetches misses inline. Dropped with
    /// the pool: closing the queue joins the workers.
    stage: Option<IoStage>,
}

impl PoolInner {
    pub(crate) fn shard(&self, key: PageKey) -> &Shard {
        // Cheap multiplicative hash over (chain, page_no); the shard count
        // need not be a power of two.
        let mut h = key.chain.0.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= key.page_no.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 32;
        &self.shards[(h % self.shards.len() as u64) as usize]
    }

    /// Inserts `key` into the shard's capped quarantine set.
    pub(crate) fn quarantine(
        &self,
        state: &mut ShardState,
        key: PageKey,
        error: Arc<StorageError>,
    ) {
        if state.quarantine.len() >= self.quarantine_cap && !state.quarantine.contains_key(&key) {
            // Capped: drop the entry closest to expiry (fewest pins left).
            if let Some(evict) = state
                .quarantine
                .iter()
                .min_by_key(|(_, e)| e.pins_left)
                .map(|(k, _)| *k)
            {
                state.quarantine.remove(&evict);
            }
        }
        state
            .quarantine
            .insert(key, QuarantineEntry { error, pins_left: self.quarantine_ttl });
        self.metrics.quarantine_inserts.inc();
        self.tracer.emit(EventKind::PageQuarantined, key.chain.0, key.page_no, 0);
    }

    /// Accounts a successfully read page and registers its frame (pinned)
    /// with the resource manager. The caller owns the registration pin: a
    /// demand load turns it into the `PageGuard`'s pin, an advisory
    /// prefetch releases it after publishing.
    pub(crate) fn admit_frame(self: &Arc<Self>, key: PageKey, data: Box<[u8]>) -> Arc<Frame> {
        self.metrics.loads.inc();
        self.metrics.bytes_loaded.add(data.len() as u64);
        self.tracer
            .emit(EventKind::PageLoaded, key.chain.0, key.page_no, data.len() as u64);
        let frame = Arc::new(Frame {
            key,
            data,
            rid: OnceLock::new(),
            transient: RwLock::with_rank(None, LockRank::FrameTransient),
            transient_bytes: AtomicUsize::new(0),
        });
        let pool_weak: Weak<PoolInner> = Arc::downgrade(self);
        let frame_weak: Weak<Frame> = Arc::downgrade(&frame);
        let rid = self.resman.register_pinned(
            frame.data.len(),
            Disposition::PagedAttribute,
            move || {
                let (Some(pool), Some(frame)) = (pool_weak.upgrade(), frame_weak.upgrade()) else {
                    return;
                };
                {
                    let shard = pool.shard(frame.key);
                    let mut state = shard.lock();
                    // Only remove the exact frame this resource backs; a newer
                    // frame or an in-flight load may already occupy the key.
                    if matches!(
                        state.slots.get(&frame.key),
                        Some(Slot::Resident(cur)) if Arc::ptr_eq(cur, &frame)
                    ) {
                        state.slots.remove(&frame.key);
                    }
                    *frame.transient.write() = None;
                }
                // Emitted after the shard lock drops; includes transient
                // bytes so the event reflects the full reclaimed size.
                let bytes =
                    frame.data.len() + frame.transient_bytes.load(Ordering::Relaxed);
                pool.tracer.emit(
                    EventKind::PageEvicted,
                    frame.key.chain.0,
                    frame.key.page_no,
                    bytes as u64,
                );
            },
        );
        // lint: allow(unwrap) invariant: the OnceLock is fresh, set exactly here
        frame.rid.set(rid).expect("rid set once");
        frame
    }
}

/// What `pin` decided to do after inspecting the shard slot.
enum PinAction {
    Hit(Arc<Frame>),
    Load(Arc<LoadState>),
    Wait(Arc<LoadState>),
    /// The key is quarantined: fail without touching the store.
    FailFast(StorageError),
}

/// The buffer pool for page-loadable structures.
///
/// Every loaded page is registered with the resource manager as a separate
/// resource with [`Disposition::PagedAttribute`]; eviction (reactive or
/// proactive) drops the frame and its transient data. Pinned pages (live
/// [`PageGuard`]s) are never evicted.
///
/// Concurrency: the frame map is **lock-striped** over
/// [`DEFAULT_SHARD_COUNT`] shards keyed by page-key hash, so pins of
/// different pages rarely contend. A miss installs a per-key *load state*
/// and performs the store read **outside** the shard lock; concurrent pins
/// of the same key block on that load state rather than issuing duplicate
/// reads ("single-flight" loads).
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Creates a pool over `store`, registering loads with `resman`.
    pub fn new(store: Arc<dyn PageStore>, resman: ResourceManager) -> Self {
        Self::with_io_profile(store, resman, IoProfile::NONE)
    }

    /// Creates a pool that applies `io` latency on every page load.
    pub fn with_io_profile(
        store: Arc<dyn PageStore>,
        resman: ResourceManager,
        io: IoProfile,
    ) -> Self {
        Self::with_config(store, resman, PoolConfig { io, ..PoolConfig::default() })
    }

    /// Creates a pool with an explicit shard count (tests use `1` to force
    /// maximal contention).
    pub fn with_shards(
        store: Arc<dyn PageStore>,
        resman: ResourceManager,
        io: IoProfile,
        shards: usize,
    ) -> Self {
        Self::with_config(store, resman, PoolConfig { io, shards, ..PoolConfig::default() })
    }

    /// Creates a pool with full construction-time tuning — fault-tolerance
    /// tests use this to inject deterministic retry backoff and small
    /// quarantine TTLs.
    pub fn with_config(store: Arc<dyn PageStore>, resman: ResourceManager, config: PoolConfig) -> Self {
        let shards = config.shards.max(1);
        // Report into the resman's registry so pool and resman series land
        // in one snapshot. Each pool instance gets its own label: metrics()
        // reads this pool's handles only, never another instance's.
        let registry = resman.registry().clone();
        let pool_label = registry.next_instance("pool").to_string();
        // `new_cyclic` lets the I/O stage workers hold a weak back-pointer:
        // they never keep the pool alive, and pool drop closes their queue.
        let inner = Arc::new_cyclic(|weak: &Weak<PoolInner>| PoolInner {
            store,
            resman,
            io: config.io,
            retry: config.retry,
            quarantine_ttl: config.quarantine_ttl.max(1),
            quarantine_cap: config.quarantine_cap.max(1),
            sleeper: config.sleeper,
            shards: (0..shards)
                .map(|i| Shard::new(&registry, &pool_label, i))
                .collect(),
            metrics: MetricCounters::register(&registry, &pool_label),
            tracer: registry.tracer().clone(),
            registry,
            label: pool_label,
            pins: PinTracker::new(),
            stage: config.io_stage.and_then(|c| IoStage::start(weak, c)),
        });
        BufferPool { inner }
    }

    /// True when the cold-path I/O stage is running (misses are fetched by
    /// its workers; [`BufferPool::prefetch_submit`] is available). False
    /// when configured off or in a `payg_check` model build.
    pub fn io_stage_active(&self) -> bool {
        self.inner.stage.is_some()
    }

    /// The metric registry this pool reports into (the resource manager's).
    /// Its tracer carries the pool's page-lifecycle events.
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The value of this pool's `pool` metric label. Structure builders use
    /// it to emit per-pool series (per-codec chain bytes, compression
    /// ratios) that join the pool's own.
    pub fn metrics_label(&self) -> &str {
        &self.inner.label
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.inner.store
    }

    /// The resource manager this pool registers loads with.
    pub fn resource_manager(&self) -> &ResourceManager {
        &self.inner.resman
    }

    /// Number of lock stripes.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// Pins a page, loading it on a miss. The returned guard keeps the page
    /// resident until dropped. Concurrent pins of the same absent page
    /// perform one store read between them.
    #[track_caller]
    pub fn pin(&self, key: PageKey) -> StorageResult<PageGuard> {
        let caller = std::panic::Location::caller();
        let started = Instant::now();
        let shard = self.inner.shard(key);
        // Whether this pin touched a cold path (started or joined a load):
        // cold pins record into `load_ns`, pure hits into `pin_ns`, so the
        // warm histogram stays readable at nanosecond scale.
        let mut cold = false;
        let guard = loop {
            let action = {
                let mut state = shard.lock();
                // Quarantine gate: a permanently failed page serves fail-fast
                // errors (no store traffic) until its pin-count TTL drains.
                if let Some(entry) = state.quarantine.get_mut(&key) {
                    entry.pins_left -= 1;
                    let err = StorageError::Quarantined {
                        key,
                        pins_until_retry: entry.pins_left,
                        source: Arc::clone(&entry.error),
                    };
                    if entry.pins_left == 0 {
                        // Expired: the *next* pin retries the store.
                        state.quarantine.remove(&key);
                    }
                    PinAction::FailFast(err)
                } else {
                    match state.slots.get(&key) {
                        Some(Slot::Resident(frame)) => {
                            let frame = Arc::clone(frame);
                            if self.inner.resman.pin(frame.rid()) {
                                // Counters and events happen outside the lock.
                                PinAction::Hit(frame)
                            } else {
                                // Evicted between the handler firing and us
                                // observing the map: replace the stale frame
                                // with a fresh load.
                                let ls = LoadState::new();
                                state.slots.insert(key, Slot::Loading(Arc::clone(&ls)));
                                PinAction::Load(ls)
                            }
                        }
                        Some(Slot::Loading(ls)) => PinAction::Wait(Arc::clone(ls)),
                        None => {
                            let ls = LoadState::new();
                            state.slots.insert(key, Slot::Loading(Arc::clone(&ls)));
                            PinAction::Load(ls)
                        }
                    }
                }
            };
            match action {
                PinAction::Hit(frame) => {
                    shard.counters.hits.inc();
                    break PageGuard::new(Arc::clone(&self.inner), frame, caller);
                }
                PinAction::Load(ls) => {
                    cold = true;
                    break self.load_and_publish(key, shard, &ls, caller)?;
                }
                PinAction::Wait(ls) => {
                    cold = true;
                    // Wait outside the shard lock. The loader publishes a
                    // resident frame (hit next round) or fails — in which
                    // case we surface its actual error instead of blindly
                    // retrying as a loader.
                    self.inner.metrics.load_waits.inc();
                    self.inner
                        .tracer
                        .emit(EventKind::SingleFlightWait, key.chain.0, key.page_no, 0);
                    // Spans the blocked stretch so explain_analyze can
                    // attribute it (closed when the arm's scope ends).
                    let _wait_span = self.inner.tracer.span(SpanKind::PageWait, key.page_no);
                    if let Some(err) = ls.wait() {
                        // A failed pin is a miss: every pin lands in exactly
                        // one of hits/misses, errors included.
                        shard.counters.misses.inc();
                        return Err(StorageError::LoadFailed { key, source: err });
                    }
                }
                PinAction::FailFast(err) => {
                    shard.counters.misses.inc();
                    self.inner.metrics.quarantine_fail_fast.inc();
                    return Err(err);
                }
            }
        };
        let elapsed = started.elapsed().as_nanos() as u64;
        if cold {
            self.inner.metrics.load_ns.record(elapsed);
        } else {
            self.inner.metrics.pin_ns.record(elapsed);
        }
        self.inner
            .tracer
            .emit(EventKind::PagePinned, key.chain.0, key.page_no, guard.bytes().len() as u64);
        Ok(guard)
    }

    /// Fetches the page this pin was elected to load. With the I/O stage
    /// running, the miss becomes an urgent [`FetchRequest`] and this thread
    /// parks on a completion ticket — the store read happens on a stage
    /// worker, coalesced with neighboring misses. Without it, the read
    /// happens inline (shard lock *not* held), publishing the frame and
    /// signalling waiters exactly as the stage workers do.
    fn load_and_publish(
        &self,
        key: PageKey,
        shard: &Shard,
        ls: &Arc<LoadState>,
        caller: &'static std::panic::Location<'static>,
    ) -> StorageResult<PageGuard> {
        shard.counters.misses.inc();
        // The originating span rides the request so completions on stage
        // worker threads stay attributable to this query (provenance).
        let span = self.inner.tracer.current_span();
        if let Some(stage) = &self.inner.stage {
            let ticket = Ticket::new();
            let submitted = stage.submit(FetchRequest {
                key,
                class: DeadlineClass::Urgent,
                ls: Arc::clone(ls),
                completion: Completion::Ticket(Arc::clone(&ticket)),
                span,
            });
            let depth = submitted.unwrap_or_else(|_| unreachable!("urgent never dropped"));
            self.inner.metrics.io_submitted.inc();
            self.inner.metrics.io_queue_depth.record(depth as u64);
            self.inner
                .tracer
                .emit_tagged(EventKind::IoSubmitted, key.chain.0, key.page_no, 0, span, 0);
            // The worker has already inserted the Resident slot, published
            // the load state, and (on failure) quarantined — the ticket
            // only transfers the pinned frame or the raw error.
            let frame = ticket.wait()?;
            return Ok(PageGuard::new(Arc::clone(&self.inner), frame, caller));
        }
        match iostage::fetch_with_retry(&self.inner, key, 0, false, span) {
            Ok(data) => {
                let frame = self.inner.admit_frame(key, data);
                shard.lock().slots.insert(key, Slot::Resident(Arc::clone(&frame)));
                ls.publish();
                Ok(PageGuard::new(Arc::clone(&self.inner), frame, caller))
            }
            Err(err) => {
                let shared = err.to_shared();
                {
                    let mut state = shard.lock();
                    // Remove our load state so later pins retry; a ptr check
                    // guards against ABA with a newer load.
                    if matches!(
                        state.slots.get(&key),
                        Some(Slot::Loading(cur)) if Arc::ptr_eq(cur, ls)
                    ) {
                        state.slots.remove(&key);
                    }
                    // Permanent corruption quarantines the key so repeated
                    // pins fail fast instead of hammering the store.
                    // Transient faults (retries already exhausted) and
                    // logical errors do not: the store itself is healthy.
                    if err.fault_class() == FaultClass::Corrupt {
                        self.inner.quarantine(&mut state, key, Arc::clone(&shared));
                    }
                }
                // Wake waiters with the actual error after the slot update
                // so none of them can observe a stale Loading entry.
                ls.fail(shared);
                Err(err)
            }
        }
    }

    /// Submits an advisory prefetch for `key` to the I/O stage. Returns
    /// `true` when a fetch was queued; `false` when the page is already
    /// resident, loading, or quarantined, when the stage is off, or when
    /// the prefetch backlog is full (the request is then *cancelled*: the
    /// just-installed load slot is withdrawn and published so pins that
    /// joined it re-inspect and load themselves).
    ///
    /// Unlike a pin, an accepted prefetch holds nothing: the loaded frame
    /// is left resident and unpinned, and errors are dropped (a later pin
    /// surfaces them). Never blocks on I/O.
    pub fn prefetch_submit(&self, key: PageKey) -> bool {
        let Some(stage) = &self.inner.stage else { return false };
        let shard = self.inner.shard(key);
        let ls = {
            let mut state = shard.lock();
            if state.quarantine.contains_key(&key) || state.slots.contains_key(&key) {
                return false;
            }
            let ls = LoadState::new();
            state.slots.insert(key, Slot::Loading(Arc::clone(&ls)));
            ls
        };
        // Prefetches are attributed to the scan-partition span that asked
        // for them, so explain_analyze sees who dragged in which page.
        let span = self.inner.tracer.current_span();
        let req = FetchRequest {
            key,
            class: DeadlineClass::Prefetch,
            ls,
            completion: Completion::Advisory,
            span,
        };
        match stage.submit(req) {
            Ok(depth) => {
                self.inner.metrics.io_submitted.inc();
                self.inner.metrics.prefetches.inc();
                self.inner.metrics.io_queue_depth.record(depth as u64);
                self.inner
                    .tracer
                    .emit_tagged(EventKind::IoSubmitted, key.chain.0, key.page_no, 0, span, 0);
                true
            }
            Err(req) => {
                self.inner.metrics.io_shed.inc();
                // Cancelled: withdraw our Loading slot (pointer-checked
                // against a newer load), then publish so any pin already
                // parked on it re-inspects the empty slot and loads itself.
                {
                    let mut state = shard.lock();
                    if matches!(
                        state.slots.get(&key),
                        Some(Slot::Loading(cur)) if Arc::ptr_eq(cur, &req.ls)
                    ) {
                        state.slots.remove(&key);
                    }
                }
                req.ls.publish();
                false
            }
        }
    }

    /// True when the page is currently resident (regardless of pins).
    pub fn is_resident(&self, key: PageKey) -> bool {
        matches!(self.inner.shard(key).lock().slots.get(&key), Some(Slot::Resident(_)))
    }

    /// Number of resident frames.
    pub fn resident_pages(&self) -> usize {
        self.inner
            .shards
            .iter()
            .map(|s| {
                s.lock()
                    .slots
                    .values()
                    .filter(|slot| matches!(slot, Slot::Resident(_)))
                    .count()
            })
            .sum()
    }

    /// True when the page is quarantined (pins fail fast without a store
    /// read until the TTL drains).
    pub fn is_quarantined(&self, key: PageKey) -> bool {
        self.inner.shard(key).lock().quarantine.contains_key(&key)
    }

    /// Number of quarantined pages across all shards.
    pub fn quarantined_pages(&self) -> usize {
        self.inner.shards.iter().map(|s| s.lock().quarantine.len()).sum()
    }

    /// Empties the quarantine set — e.g. after the operator replaced the
    /// failing medium — so the next pin of each key retries the store
    /// immediately instead of draining its TTL.
    pub fn clear_quarantine(&self) {
        for shard in self.inner.shards.iter() {
            shard.lock().quarantine.clear();
        }
    }

    /// Drops every unpinned frame, deregistering its resource. Pinned frames
    /// and in-flight loads survive. Used to simulate a cold restart between
    /// experiment runs.
    pub fn clear(&self) {
        for shard in self.inner.shards.iter() {
            let mut state = shard.lock();
            state.slots.retain(|_, slot| {
                let Slot::Resident(frame) = slot else {
                    return true;
                };
                // Strong count > 1 means live guards exist (the map holds one
                // reference; eviction closures hold only weak ones).
                if Arc::strong_count(frame) > 1 {
                    return true;
                }
                self.inner.resman.deregister(frame.rid());
                *frame.transient.write() = None;
                false
            });
        }
    }

    /// Discards one chain wholesale: every unpinned resident frame of the
    /// chain is dropped (resource deregistered, transient state destroyed),
    /// its quarantine entries are forgotten, and the chain is deleted from
    /// the backing store. This is the table layer's version-retirement hook:
    /// it runs only once the last snapshot holding the owning fragment has
    /// dropped, so no scan can pin these pages again. In-flight loads and
    /// still-pinned frames are left alone — their guards keep working
    /// against the already-read bytes; the frames die on their next
    /// eviction sweep.
    pub fn discard_chain(&self, chain: ChainId) {
        for shard in self.inner.shards.iter() {
            let mut state = shard.lock();
            state.quarantine.retain(|key, _| key.chain != chain);
            state.slots.retain(|key, slot| {
                if key.chain != chain {
                    return true;
                }
                let Slot::Resident(frame) = slot else {
                    return true;
                };
                if Arc::strong_count(frame) > 1 {
                    return true;
                }
                self.inner.resman.deregister(frame.rid());
                *frame.transient.write() = None;
                false
            });
        }
        // Best-effort on the store side: a chain another path already
        // dropped (or a store without the page ever written) is fine — the
        // chain is unreachable from every live version either way.
        let _ = self.inner.store.drop_chain(chain);
    }

    /// Pool activity counters, rolled up over all shards.
    pub fn metrics(&self) -> PoolMetrics {
        let mut hits = 0;
        let mut misses = 0;
        let mut contended = 0;
        for s in self.inner.shards.iter() {
            let m = s.counters.snapshot();
            hits += m.hits;
            misses += m.misses;
            contended += m.contended;
        }
        PoolMetrics {
            loads: self.inner.metrics.loads.get(),
            hits,
            misses,
            bytes_loaded: self.inner.metrics.bytes_loaded.get(),
            load_waits: self.inner.metrics.load_waits.get(),
            contended,
            prefetches: self.inner.metrics.prefetches.get(),
            load_retries: self.inner.metrics.load_retries.get(),
            load_faults: self.inner.metrics.faults_transient.get()
                + self.inner.metrics.faults_corrupt.get()
                + self.inner.metrics.faults_logical.get(),
            quarantine_inserts: self.inner.metrics.quarantine_inserts.get(),
            quarantine_fail_fast: self.inner.metrics.quarantine_fail_fast.get(),
            io_submitted: self.inner.metrics.io_submitted.get(),
            io_coalesced: self.inner.metrics.io_coalesced.get(),
            io_completions: self.inner.metrics.io_completions.get(),
            io_physical_reads: self.inner.metrics.io_physical_reads.get(),
            io_shed: self.inner.metrics.io_shed.get(),
        }
    }

    /// Number of live [`PageGuard`]s as seen by the pin-leak detector.
    /// Always 0 unless the `strict-invariants` feature is enabled.
    pub fn live_pins(&self) -> usize {
        self.inner.pins.live_count()
    }

    /// Panics listing every leaked [`PageGuard`] (owner tag: pin call site
    /// and thread) when any guard is still live. No-op without the
    /// `strict-invariants` feature. Call at quiesce points where all
    /// guards are expected to have been dropped.
    pub fn assert_no_live_pins(&self, context: &str) {
        self.inner.pins.assert_none_live(context);
    }

    /// Per-shard hit/miss/contention counters, in shard order.
    pub fn shard_metrics(&self) -> Vec<ShardMetrics> {
        self.inner
            .shards
            .iter()
            .map(|s| s.counters.snapshot())
            .collect()
    }

    /// Spawns a read-ahead worker bound to this pool. Each scan worker owns
    /// one [`Prefetcher`] (its "read-ahead slot"): requesting a page pins it
    /// on the worker thread so the store read overlaps the caller's compute;
    /// the caller's own later `pin` then hits (or joins the in-flight load).
    pub fn prefetcher(&self) -> Prefetcher {
        let pool = self.clone();
        let (tx, rx) = unbounded::<PageKey>();
        let handle = std::thread::Builder::new()
            .name("payg-prefetch".into())
            .spawn(move || {
                // The slot holds the most recent prefetched guard so the page
                // stays resident until the next request supersedes it.
                let mut slot: Option<PageGuard> = None;
                while let Ok(mut key) = rx.recv() {
                    // Coalesce a backlog to the newest request; older ones
                    // are behind the consumer already.
                    while let Ok(next) = rx.try_recv() {
                        key = next;
                    }
                    pool.inner.metrics.prefetches.inc();
                    // Errors are ignored: prefetch is advisory, the consumer's
                    // own pin will surface them.
                    slot = pool.pin(key).ok();
                }
                drop(slot);
            })
            // lint: allow(unwrap) invariant: thread spawn fails only on OS resource exhaustion
            .expect("spawn prefetch worker");
        Prefetcher { tx: Some(tx), handle: Some(handle) }
    }
}

/// An asynchronous read-ahead slot: one background thread that pins
/// requested pages so their load latency overlaps the owner's compute.
/// Dropping the prefetcher releases its held pin and joins the thread.
pub struct Prefetcher {
    tx: Option<Sender<PageKey>>,
    handle: Option<JoinHandle<()>>,
}

impl Prefetcher {
    /// Requests `key` to be loaded and held resident. Supersedes any earlier
    /// request that has not started yet; never blocks.
    pub fn request(&self, key: PageKey) {
        if let Some(tx) = &self.tx {
            let _ = tx.send(key);
        }
    }
}

impl Drop for Prefetcher {
    fn drop(&mut self) {
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

/// RAII pin on one page. Dereferences to the page bytes. While any guard for
/// a page is alive, the resource manager will not evict it (§3.1.2: "pins
/// the page in memory to make sure the page does not get evicted by the
/// resource manager when it is being read").
pub struct PageGuard {
    frame: Arc<Frame>,
    pool: Arc<PoolInner>,
    /// Pin-leak detector token (`strict-invariants` only; zero-sized
    /// otherwise).
    pin_token: payg_check::PinToken,
}

impl PageGuard {
    fn new(
        pool: Arc<PoolInner>,
        frame: Arc<Frame>,
        caller: &'static std::panic::Location<'static>,
    ) -> Self {
        let pin_token = pool
            .pins
            .pin(|| format!("page {:?} pinned at {caller}", frame.key));
        PageGuard { frame, pool, pin_token }
    }

    /// The page's address.
    pub fn key(&self) -> PageKey {
        self.frame.key
    }

    /// The page bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.frame.data
    }

    /// Returns the page's transient structure, building it on first access.
    ///
    /// `build` receives the page bytes and returns the structure plus its
    /// heap size in bytes; the size is added to the page resource's
    /// accounting (transient data is charged to the paged pool, §3.2.1).
    /// The structure is destroyed when the page is evicted and rebuilt on
    /// the next load.
    pub fn transient_or_build<T, F>(&self, build: F) -> StorageResult<Arc<T>>
    where
        T: Any + Send + Sync,
        F: FnOnce(&[u8]) -> StorageResult<(T, usize)>,
    {
        {
            let read = self.frame.transient.read();
            if let Some(t) = read.as_ref() {
                return Ok(Arc::clone(t)
                    .downcast::<T>()
                    // lint: allow(unwrap) invariant: one transient type per page structure
                    .expect("transient type is stable per page"));
            }
        }
        let mut write = self.frame.transient.write();
        if let Some(t) = write.as_ref() {
            return Ok(Arc::clone(t)
                .downcast::<T>()
                // lint: allow(unwrap) invariant: one transient type per page structure
                .expect("transient type is stable per page"));
        }
        let (value, bytes) = build(&self.frame.data)?;
        let arc: Arc<T> = Arc::new(value);
        *write = Some(arc.clone());
        self.frame.transient_bytes.store(bytes, Ordering::Relaxed);
        self.pool
            .resman
            .resize(self.frame.rid(), self.frame.data.len() + bytes);
        Ok(arc)
    }

    /// Marks the page as recently used without re-pinning.
    pub fn touch(&self) {
        self.pool.resman.touch(self.frame.rid());
    }
}

impl Deref for PageGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.frame.data
    }
}

impl Clone for PageGuard {
    #[track_caller]
    fn clone(&self) -> Self {
        // A clone is another pin; pin can only fail for evicted resources
        // and a live guard prevents eviction.
        assert!(self.pool.resman.pin(self.frame.rid()), "pinned frame cannot vanish");
        PageGuard::new(
            Arc::clone(&self.pool),
            Arc::clone(&self.frame),
            std::panic::Location::caller(),
        )
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.pool.pins.unpin(&self.pin_token);
        self.pool.resman.unpin(self.frame.rid());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChainId, MemStore};
    use payg_resman::PoolLimits;

    fn pool_with_pages(n: u64, page_size: usize) -> (BufferPool, ChainId) {
        let store = MemStore::new();
        let chain = store.create_chain(page_size).unwrap();
        for i in 0..n {
            store.append_page(chain, &[i as u8; 8]).unwrap();
        }
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        (pool, chain)
    }

    #[test]
    fn pin_loads_once_then_hits() {
        let (pool, chain) = pool_with_pages(3, 32);
        let key = PageKey::new(chain, 1);
        {
            let g = pool.pin(key).unwrap();
            assert_eq!(g[0], 1);
            assert_eq!(g.key(), key);
        }
        let _g2 = pool.pin(key).unwrap();
        let m = pool.metrics();
        assert_eq!(m.loads, 1);
        assert_eq!(m.hits, 1);
        assert_eq!(m.bytes_loaded, 32);
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn loaded_pages_are_paged_resources() {
        let (pool, chain) = pool_with_pages(2, 64);
        let _a = pool.pin(PageKey::new(chain, 0)).unwrap();
        let _b = pool.pin(PageKey::new(chain, 1)).unwrap();
        let stats = pool.resource_manager().stats();
        assert_eq!(stats.paged_bytes, 128);
        assert_eq!(stats.paged_count, 2);
    }

    #[test]
    fn eviction_drops_unpinned_frames_but_not_pinned() {
        let store = MemStore::new();
        let chain = store.create_chain(64).unwrap();
        for i in 0..4 {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        let resman = ResourceManager::with_paged_limits(PoolLimits::new(0, usize::MAX));
        let pool = BufferPool::new(Arc::new(store), resman.clone());
        let pinned = pool.pin(PageKey::new(chain, 0)).unwrap();
        for i in 1..4 {
            drop(pool.pin(PageKey::new(chain, i)).unwrap());
        }
        assert_eq!(pool.resident_pages(), 4);
        // Reactive unload to the lower limit (0): everything unpinned goes.
        let freed = resman.reactive_unload();
        assert_eq!(freed, 3 * 64);
        assert_eq!(pool.resident_pages(), 1);
        assert!(pool.is_resident(PageKey::new(chain, 0)));
        assert_eq!(pinned[0], 0, "pinned page still readable");
        drop(pinned);
        assert_eq!(resman.reactive_unload(), 64);
        assert_eq!(pool.resident_pages(), 0);
        // Re-pinning reloads from the store.
        let g = pool.pin(PageKey::new(chain, 0)).unwrap();
        assert_eq!(g[0], 0);
        assert_eq!(pool.metrics().loads, 5);
    }

    #[test]
    fn transient_built_once_charged_and_dropped_on_evict() {
        let store = MemStore::new();
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, &[7; 16]).unwrap();
        let resman = ResourceManager::new();
        resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        let pool = BufferPool::new(Arc::new(store), resman.clone());
        let key = PageKey::new(chain, 0);
        let mut builds = 0;
        {
            let g = pool.pin(key).unwrap();
            let t = g
                .transient_or_build(|bytes| {
                    builds += 1;
                    Ok((bytes.iter().map(|&b| b as usize).sum::<usize>(), 100))
                })
                .unwrap();
            assert_eq!(*t, 7 * 16);
            // Transient bytes charged on top of the page bytes.
            assert_eq!(resman.stats().paged_bytes, 16 + 100);
            let t2 = g
                .transient_or_build(|_| -> StorageResult<(usize, usize)> {
                    panic!("must not rebuild while loaded")
                })
                .unwrap();
            assert_eq!(*t2, *t);
        }
        assert_eq!(builds, 1);
        resman.reactive_unload();
        assert_eq!(resman.stats().paged_bytes, 0);
        // Reload: the transient is rebuilt.
        let g = pool.pin(key).unwrap();
        let t = g.transient_or_build(|_| Ok((1usize, 0))).unwrap();
        assert_eq!(*t, 1);
    }

    #[test]
    fn clear_simulates_cold_restart() {
        let (pool, chain) = pool_with_pages(3, 32);
        let keep = pool.pin(PageKey::new(chain, 2)).unwrap();
        for i in 0..2 {
            drop(pool.pin(PageKey::new(chain, i)).unwrap());
        }
        pool.clear();
        assert_eq!(pool.resident_pages(), 1, "pinned page survives clear");
        assert_eq!(pool.resource_manager().stats().paged_count, 1);
        drop(keep);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.resource_manager().stats().total_bytes, 0);
    }

    #[test]
    fn read_errors_surface_as_err() {
        let store = crate::FaultyStore::new(MemStore::new(), crate::FaultPlan::None);
        let chain = store.create_chain(8).unwrap();
        store.append_page(chain, b"x").unwrap();
        store.set_plan(crate::FaultPlan::EveryNthRead(1));
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        assert!(pool.pin(PageKey::new(chain, 0)).is_err());
        assert_eq!(pool.resident_pages(), 0, "failed load leaves no frame");
    }

    #[test]
    fn guard_clone_holds_second_pin() {
        let (pool, chain) = pool_with_pages(1, 16);
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        let g1 = pool.pin(PageKey::new(chain, 0)).unwrap();
        let g2 = g1.clone();
        drop(g1);
        // Still pinned through g2: reactive unload cannot evict it.
        assert_eq!(resman.reactive_unload(), 0);
        assert!(pool.is_resident(PageKey::new(chain, 0)));
        drop(g2);
        assert_eq!(resman.reactive_unload(), 16);
    }

    #[test]
    fn concurrent_pins_single_flight_one_load() {
        // Deterministic: the gate holds the in-flight window open until we
        // have *observed* that exactly one read reached the store. All
        // threads pin the same absent page; one read must reach the store.
        let store = Arc::new(crate::GateStore::new(MemStore::new()));
        let chain = store.create_chain(32).unwrap();
        store.append_page(chain, &[9; 8]).unwrap();
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn crate::PageStore>,
                                   ResourceManager::new());
        let key = PageKey::new(chain, 0);
        store.close();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    let g = pool.pin(key).unwrap();
                    assert_eq!(g[0], 9);
                });
            }
            // Single-flight: only the elected loader may appear at the
            // store, no matter how long the window stays open.
            store.wait_for_waiters(1);
            assert_eq!(store.waiting(), 1, "exactly one reader at the store");
            store.open();
        });
        let m = pool.metrics();
        assert_eq!(m.loads, 1, "single-flight: one store read");
        assert_eq!(m.hits + m.load_waits + m.loads, 8 + m.load_waits, "all pins accounted");
    }

    #[test]
    fn failed_load_wakes_waiters_who_retry() {
        // First read fails; a waiter must not hang, it retries and succeeds.
        let store = crate::FaultyStore::new(MemStore::new(), crate::FaultPlan::None);
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, &[3; 4]).unwrap();
        store.set_plan(crate::FaultPlan::EveryNthRead(2));
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        let key = PageKey::new(chain, 0);
        let mut oks = 0;
        for _ in 0..4 {
            if pool.pin(key).is_ok() {
                oks += 1;
            }
        }
        assert!(oks >= 2, "retries after a failed load succeed");
        assert!(pool.is_resident(key));
    }

    /// A recording sleeper: captures each requested backoff instead of
    /// sleeping, so retry pacing is asserted deterministically.
    fn recording_sleeper() -> (Arc<std::sync::Mutex<Vec<std::time::Duration>>>, crate::Sleeper) {
        let slept: Arc<std::sync::Mutex<Vec<std::time::Duration>>> = Arc::default();
        let sleeper: crate::Sleeper = {
            let slept = Arc::clone(&slept);
            Arc::new(move |d| slept.lock().unwrap().push(d))
        };
        (slept, sleeper)
    }

    #[test]
    fn retry_absorbs_transient_faults_with_backoff() {
        let store = Arc::new(crate::FaultyStore::new(
            MemStore::new(),
            crate::FaultPlan::Transient { after: 0, count: 2 },
        ));
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, &[9; 16]).unwrap();
        let (slept, sleeper) = recording_sleeper();
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn crate::PageStore>,
            ResourceManager::new(),
            PoolConfig {
                retry: RetryPolicy {
                    max_attempts: 3,
                    initial_backoff: std::time::Duration::from_millis(7),
                    multiplier: 3,
                },
                sleeper,
                ..PoolConfig::default()
            },
        );
        let g = pool.pin(PageKey::new(chain, 0)).expect("third attempt succeeds");
        assert_eq!(g[0], 9);
        assert_eq!(store.reads(), 3, "two failed attempts plus the success");
        assert_eq!(
            *slept.lock().unwrap(),
            vec![std::time::Duration::from_millis(7), std::time::Duration::from_millis(21)],
            "exponential backoff between attempts"
        );
        let m = pool.metrics();
        assert_eq!((m.loads, m.misses, m.hits), (1, 1, 0), "a retried load is still one miss");
        assert_eq!(m.load_retries, 2);
        assert_eq!(m.load_faults, 2, "absorbed faults still count");
    }

    #[test]
    fn exhausted_retries_surface_the_transient_error() {
        let store = Arc::new(crate::FaultyStore::new(MemStore::new(), crate::FaultPlan::None));
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, b"x").unwrap();
        store.set_plan(crate::FaultPlan::EveryNthRead(1));
        let (_, sleeper) = recording_sleeper();
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn crate::PageStore>,
            ResourceManager::new(),
            PoolConfig {
                retry: RetryPolicy { max_attempts: 2, ..RetryPolicy::default() },
                sleeper,
                ..PoolConfig::default()
            },
        );
        let key = PageKey::new(chain, 0);
        let err = pool.pin(key).map(|_| ()).expect_err("every attempt fails");
        assert!(err.is_transient(), "the surfaced error keeps its class: {err}");
        assert_eq!(store.reads(), 2, "bounded: max_attempts store reads");
        assert!(!pool.is_quarantined(key), "transient failures do not quarantine");
        let m = pool.metrics();
        assert_eq!((m.loads, m.misses, m.load_retries, m.load_faults), (0, 1, 1, 2));
    }

    #[test]
    fn corrupt_load_quarantines_then_ttl_drains_and_recovers() {
        let store = Arc::new(crate::FaultyStore::new(MemStore::new(), crate::FaultPlan::None));
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, &[5; 16]).unwrap();
        let key = PageKey::new(chain, 0);
        store.set_plan(crate::FaultPlan::CorruptPages(vec![key]));
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn crate::PageStore>,
            ResourceManager::new(),
            PoolConfig { retry: RetryPolicy::NONE, quarantine_ttl: 2, ..PoolConfig::default() },
        );
        // Pin 1 reads the store, observes corruption, quarantines.
        assert!(matches!(pool.pin(key), Err(crate::StorageError::ChecksumMismatch { .. })));
        assert_eq!(store.reads(), 1, "corruption is never retried");
        assert!(pool.is_quarantined(key));
        // Pins 2-3 fail fast without store traffic, draining the TTL.
        assert!(matches!(
            pool.pin(key),
            Err(crate::StorageError::Quarantined { pins_until_retry: 1, .. })
        ));
        assert!(matches!(
            pool.pin(key),
            Err(crate::StorageError::Quarantined { pins_until_retry: 0, .. })
        ));
        assert_eq!(store.reads(), 1, "fail-fast pins never touch the store");
        assert!(!pool.is_quarantined(key), "TTL drained");
        // Pin 4: still corrupt — re-reads and re-quarantines.
        assert!(matches!(pool.pin(key), Err(crate::StorageError::ChecksumMismatch { .. })));
        assert_eq!(store.reads(), 2);
        assert!(pool.is_quarantined(key));
        // Medium replaced: clear quarantine, pin 5 succeeds.
        store.set_plan(crate::FaultPlan::None);
        pool.clear_quarantine();
        let g = pool.pin(key).unwrap();
        assert_eq!(g[0], 5);
        let m = pool.metrics();
        assert_eq!(m.quarantine_inserts, 2);
        assert_eq!(m.quarantine_fail_fast, 2);
        assert_eq!((m.hits, m.misses, m.loads), (0, 5, 1));
    }

    #[test]
    fn quarantine_cap_evicts_the_entry_closest_to_expiry() {
        let store = Arc::new(crate::FaultyStore::new(MemStore::new(), crate::FaultPlan::None));
        let chain = store.create_chain(16).unwrap();
        for i in 0..3u8 {
            store.append_page(chain, &[i; 4]).unwrap();
        }
        let keys: Vec<_> = (0..3).map(|p| PageKey::new(chain, p)).collect();
        store.set_plan(crate::FaultPlan::CorruptPages(keys.clone()));
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn crate::PageStore>,
            ResourceManager::new(),
            PoolConfig {
                retry: RetryPolicy::NONE,
                quarantine_cap: 2,
                shards: 1, // all keys share one quarantine set
                ..PoolConfig::default()
            },
        );
        for &k in &keys {
            assert!(pool.pin(k).is_err());
        }
        assert_eq!(pool.quarantined_pages(), 2, "cap bounds the set");
        assert!(pool.is_quarantined(keys[2]), "newest entry always present");
    }

    /// Satellite regression: a waiter parked on a single-flight load whose
    /// loader fails must receive the loader's actual error — not observe a
    /// generic removal and blindly retry as a loader.
    #[test]
    fn waiter_receives_the_loaders_actual_error() {
        let store = Arc::new(crate::GateStore::new(crate::FaultyStore::new(
            MemStore::new(),
            crate::FaultPlan::None,
        )));
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, b"doomed").unwrap();
        let key = PageKey::new(chain, 0);
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn crate::PageStore>,
            ResourceManager::new(),
            PoolConfig { retry: RetryPolicy::NONE, ..PoolConfig::default() },
        );
        store.close();
        std::thread::scope(|s| {
            let loader = {
                let pool = pool.clone();
                s.spawn(move || pool.pin(key).map(|_| ()))
            };
            // The loader is provably parked at the store before the waiter
            // starts, so the roles cannot swap.
            store.wait_for_waiters(1);
            let waiter = {
                let pool = pool.clone();
                s.spawn(move || pool.pin(key).map(|_| ()))
            };
            // Observe the waiter parked on the load state, then inject the
            // corruption and release the gate.
            while pool.metrics().load_waits < 1 {
                std::thread::yield_now();
            }
            store.inner().set_plan(crate::FaultPlan::CorruptPages(vec![key]));
            store.open();
            let loader_err = loader.join().unwrap().expect_err("loader sees corruption");
            let waiter_err = waiter.join().unwrap().expect_err("waiter must not hang or retry");
            assert!(matches!(loader_err, crate::StorageError::ChecksumMismatch { .. }));
            match waiter_err {
                crate::StorageError::LoadFailed { key: k, source } => {
                    assert_eq!(k, key);
                    assert!(
                        matches!(*source, crate::StorageError::ChecksumMismatch { .. }),
                        "waiter carries the loader's real cause, got {source}"
                    );
                }
                other => panic!("expected LoadFailed, got {other:?}"),
            }
        });
        let m = pool.metrics();
        assert_eq!((m.hits, m.misses, m.loads), (0, 2, 0), "both failed pins are misses");
        assert_eq!(m.load_waits, 1);
        assert_eq!(store.inner().reads(), 1, "the waiter never re-read the store");
        assert!(pool.is_quarantined(key), "corruption quarantines for later pins");
        pool.assert_no_live_pins("waiter error regression");
    }

    #[test]
    fn shard_metrics_roll_up_into_pool_metrics() {
        let store = MemStore::new();
        let chain = store.create_chain(32).unwrap();
        for i in 0..16 {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        let pool = BufferPool::with_shards(
            Arc::new(store),
            ResourceManager::new(),
            IoProfile::NONE,
            4,
        );
        for i in 0..16 {
            drop(pool.pin(PageKey::new(chain, i)).unwrap());
            drop(pool.pin(PageKey::new(chain, i)).unwrap());
        }
        let shards = pool.shard_metrics();
        assert_eq!(shards.len(), 4);
        let m = pool.metrics();
        assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), m.hits);
        assert_eq!(shards.iter().map(|s| s.misses).sum::<u64>(), 16);
        assert_eq!(m.hits, 16);
        assert_eq!(m.loads, 16);
        // Keys spread over more than one stripe.
        assert!(shards.iter().filter(|s| s.misses > 0).count() > 1);
    }

    #[test]
    fn prefetcher_overlaps_load_and_counts() {
        // Deterministic: the gate proves the prefetch thread reached the
        // store *before* the consumer pinned — a real overlap, not a sleep.
        let store = Arc::new(crate::GateStore::new(MemStore::new()));
        let chain = store.create_chain(32).unwrap();
        for i in 0..3 {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        let pool = BufferPool::new(Arc::clone(&store) as Arc<dyn crate::PageStore>,
                                   ResourceManager::new());
        let pf = pool.prefetcher();
        store.close();
        pf.request(PageKey::new(chain, 1));
        store.wait_for_waiters(1); // prefetch load is in flight at the store
        store.open();
        // The consumer's pin either hits the prefetched frame or joins the
        // in-flight load; either way exactly one store read happens.
        let g = pool.pin(PageKey::new(chain, 1)).unwrap();
        assert_eq!(g[0], 1);
        drop(pf);
        let m = pool.metrics();
        assert_eq!(m.loads, 1);
        assert_eq!(m.prefetches, 1);
    }
}
