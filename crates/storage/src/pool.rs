//! The buffer pool: load-on-miss page frames with RAII pin guards.

use crate::metrics::MetricCounters;
use crate::{IoProfile, PageKey, PageStore, PoolMetrics, StorageResult};
use parking_lot::{Mutex, RwLock};
use payg_resman::{Disposition, ResourceId, ResourceManager};
use std::any::Any;
use std::collections::HashMap;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock, Weak};

/// One resident page. Page data is immutable after load (main fragments are
/// read-only between delta merges), so frames can be shared freely.
pub struct Frame {
    key: PageKey,
    data: Box<[u8]>,
    rid: OnceLock<ResourceId>,
    /// Transient data rebuilt on every load and destroyed on eviction
    /// (paper §3.2.1: the dictionary's block-offset vector).
    transient: RwLock<Option<Arc<dyn Any + Send + Sync>>>,
    transient_bytes: AtomicUsize,
}

impl Frame {
    fn rid(&self) -> ResourceId {
        *self.rid.get().expect("frame registered")
    }
}

struct PoolInner {
    store: Arc<dyn PageStore>,
    resman: ResourceManager,
    io: IoProfile,
    frames: Mutex<HashMap<PageKey, Arc<Frame>>>,
    metrics: MetricCounters,
}

/// The buffer pool for page-loadable structures.
///
/// Every loaded page is registered with the resource manager as a separate
/// resource with [`Disposition::PagedAttribute`]; eviction (reactive or
/// proactive) drops the frame and its transient data. Pinned pages (live
/// [`PageGuard`]s) are never evicted.
///
/// Note on concurrency: the frame map lock is held across the store read on
/// a miss, so concurrent loads serialize. This matches the experiments'
/// single-query-stream workloads; a production pool would use per-key load
/// states.
#[derive(Clone)]
pub struct BufferPool {
    inner: Arc<PoolInner>,
}

impl BufferPool {
    /// Creates a pool over `store`, registering loads with `resman`.
    pub fn new(store: Arc<dyn PageStore>, resman: ResourceManager) -> Self {
        Self::with_io_profile(store, resman, IoProfile::NONE)
    }

    /// Creates a pool that applies `io` latency on every page load.
    pub fn with_io_profile(
        store: Arc<dyn PageStore>,
        resman: ResourceManager,
        io: IoProfile,
    ) -> Self {
        BufferPool {
            inner: Arc::new(PoolInner {
                store,
                resman,
                io,
                frames: Mutex::new(HashMap::new()),
                metrics: MetricCounters::default(),
            }),
        }
    }

    /// The underlying page store.
    pub fn store(&self) -> &Arc<dyn PageStore> {
        &self.inner.store
    }

    /// The resource manager this pool registers loads with.
    pub fn resource_manager(&self) -> &ResourceManager {
        &self.inner.resman
    }

    /// Pins a page, loading it on a miss. The returned guard keeps the page
    /// resident until dropped.
    pub fn pin(&self, key: PageKey) -> StorageResult<PageGuard> {
        let mut frames = self.inner.frames.lock();
        if let Some(frame) = frames.get(&key) {
            let frame = Arc::clone(frame);
            if self.inner.resman.pin(frame.rid()) {
                self.inner.metrics.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(PageGuard { frame, pool: Arc::clone(&self.inner) });
            }
            // The resource was evicted between the handler firing and us
            // observing the map: drop the stale frame and reload below.
            frames.remove(&key);
        }
        // Miss: load while holding the map lock (see type docs).
        self.inner.io.apply_read();
        let data = self.inner.store.read_page(key)?;
        self.inner.metrics.loads.fetch_add(1, Ordering::Relaxed);
        self.inner
            .metrics
            .bytes_loaded
            .fetch_add(data.len() as u64, Ordering::Relaxed);
        let frame = Arc::new(Frame {
            key,
            data,
            rid: OnceLock::new(),
            transient: RwLock::new(None),
            transient_bytes: AtomicUsize::new(0),
        });
        let pool_weak: Weak<PoolInner> = Arc::downgrade(&self.inner);
        let frame_weak: Weak<Frame> = Arc::downgrade(&frame);
        let rid = self.inner.resman.register_pinned(
            frame.data.len(),
            Disposition::PagedAttribute,
            move || {
                let (Some(pool), Some(frame)) = (pool_weak.upgrade(), frame_weak.upgrade()) else {
                    return;
                };
                let mut frames = pool.frames.lock();
                // Only remove the exact frame this resource backs; a newer
                // frame may already occupy the key.
                if frames
                    .get(&frame.key)
                    .is_some_and(|cur| Arc::ptr_eq(cur, &frame))
                {
                    frames.remove(&frame.key);
                }
                *frame.transient.write() = None;
            },
        );
        frame.rid.set(rid).expect("rid set once");
        frames.insert(key, Arc::clone(&frame));
        Ok(PageGuard { frame, pool: Arc::clone(&self.inner) })
    }

    /// True when the page is currently resident (regardless of pins).
    pub fn is_resident(&self, key: PageKey) -> bool {
        self.inner.frames.lock().contains_key(&key)
    }

    /// Number of resident frames.
    pub fn resident_pages(&self) -> usize {
        self.inner.frames.lock().len()
    }

    /// Drops every unpinned frame, deregistering its resource. Pinned frames
    /// survive. Used to simulate a cold restart between experiment runs.
    pub fn clear(&self) {
        let mut frames = self.inner.frames.lock();
        frames.retain(|_, frame| {
            // Strong count > 1 means live guards exist (the map holds one
            // reference; eviction closures hold only weak ones).
            if Arc::strong_count(frame) > 1 {
                return true;
            }
            self.inner.resman.deregister(frame.rid());
            *frame.transient.write() = None;
            false
        });
    }

    /// Pool activity counters.
    pub fn metrics(&self) -> PoolMetrics {
        self.inner.metrics.snapshot()
    }
}

/// RAII pin on one page. Dereferences to the page bytes. While any guard for
/// a page is alive, the resource manager will not evict it (§3.1.2: "pins
/// the page in memory to make sure the page does not get evicted by the
/// resource manager when it is being read").
pub struct PageGuard {
    frame: Arc<Frame>,
    pool: Arc<PoolInner>,
}

impl PageGuard {
    /// The page's address.
    pub fn key(&self) -> PageKey {
        self.frame.key
    }

    /// The page bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.frame.data
    }

    /// Returns the page's transient structure, building it on first access.
    ///
    /// `build` receives the page bytes and returns the structure plus its
    /// heap size in bytes; the size is added to the page resource's
    /// accounting (transient data is charged to the paged pool, §3.2.1).
    /// The structure is destroyed when the page is evicted and rebuilt on
    /// the next load.
    pub fn transient_or_build<T, F>(&self, build: F) -> StorageResult<Arc<T>>
    where
        T: Any + Send + Sync,
        F: FnOnce(&[u8]) -> StorageResult<(T, usize)>,
    {
        {
            let read = self.frame.transient.read();
            if let Some(t) = read.as_ref() {
                return Ok(Arc::clone(t)
                    .downcast::<T>()
                    .expect("transient type is stable per page"));
            }
        }
        let mut write = self.frame.transient.write();
        if let Some(t) = write.as_ref() {
            return Ok(Arc::clone(t)
                .downcast::<T>()
                .expect("transient type is stable per page"));
        }
        let (value, bytes) = build(&self.frame.data)?;
        let arc: Arc<T> = Arc::new(value);
        *write = Some(arc.clone());
        self.frame.transient_bytes.store(bytes, Ordering::Relaxed);
        self.pool
            .resman
            .resize(self.frame.rid(), self.frame.data.len() + bytes);
        Ok(arc)
    }

    /// Marks the page as recently used without re-pinning.
    pub fn touch(&self) {
        self.pool.resman.touch(self.frame.rid());
    }
}

impl Deref for PageGuard {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.frame.data
    }
}

impl Clone for PageGuard {
    fn clone(&self) -> Self {
        // A clone is another pin; pin can only fail for evicted resources
        // and a live guard prevents eviction.
        assert!(self.pool.resman.pin(self.frame.rid()), "pinned frame cannot vanish");
        PageGuard { frame: Arc::clone(&self.frame), pool: Arc::clone(&self.pool) }
    }
}

impl Drop for PageGuard {
    fn drop(&mut self) {
        self.pool.resman.unpin(self.frame.rid());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ChainId, MemStore};
    use payg_resman::PoolLimits;

    fn pool_with_pages(n: u64, page_size: usize) -> (BufferPool, ChainId) {
        let store = MemStore::new();
        let chain = store.create_chain(page_size).unwrap();
        for i in 0..n {
            store.append_page(chain, &[i as u8; 8]).unwrap();
        }
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        (pool, chain)
    }

    #[test]
    fn pin_loads_once_then_hits() {
        let (pool, chain) = pool_with_pages(3, 32);
        let key = PageKey::new(chain, 1);
        {
            let g = pool.pin(key).unwrap();
            assert_eq!(g[0], 1);
            assert_eq!(g.key(), key);
        }
        let _g2 = pool.pin(key).unwrap();
        let m = pool.metrics();
        assert_eq!(m.loads, 1);
        assert_eq!(m.hits, 1);
        assert_eq!(m.bytes_loaded, 32);
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn loaded_pages_are_paged_resources() {
        let (pool, chain) = pool_with_pages(2, 64);
        let _a = pool.pin(PageKey::new(chain, 0)).unwrap();
        let _b = pool.pin(PageKey::new(chain, 1)).unwrap();
        let stats = pool.resource_manager().stats();
        assert_eq!(stats.paged_bytes, 128);
        assert_eq!(stats.paged_count, 2);
    }

    #[test]
    fn eviction_drops_unpinned_frames_but_not_pinned() {
        let store = MemStore::new();
        let chain = store.create_chain(64).unwrap();
        for i in 0..4 {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        let resman = ResourceManager::with_paged_limits(PoolLimits::new(0, usize::MAX));
        let pool = BufferPool::new(Arc::new(store), resman.clone());
        let pinned = pool.pin(PageKey::new(chain, 0)).unwrap();
        for i in 1..4 {
            drop(pool.pin(PageKey::new(chain, i)).unwrap());
        }
        assert_eq!(pool.resident_pages(), 4);
        // Reactive unload to the lower limit (0): everything unpinned goes.
        let freed = resman.reactive_unload();
        assert_eq!(freed, 3 * 64);
        assert_eq!(pool.resident_pages(), 1);
        assert!(pool.is_resident(PageKey::new(chain, 0)));
        assert_eq!(pinned[0], 0, "pinned page still readable");
        drop(pinned);
        assert_eq!(resman.reactive_unload(), 64);
        assert_eq!(pool.resident_pages(), 0);
        // Re-pinning reloads from the store.
        let g = pool.pin(PageKey::new(chain, 0)).unwrap();
        assert_eq!(g[0], 0);
        assert_eq!(pool.metrics().loads, 5);
    }

    #[test]
    fn transient_built_once_charged_and_dropped_on_evict() {
        let store = MemStore::new();
        let chain = store.create_chain(16).unwrap();
        store.append_page(chain, &[7; 16]).unwrap();
        let resman = ResourceManager::new();
        resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        let pool = BufferPool::new(Arc::new(store), resman.clone());
        let key = PageKey::new(chain, 0);
        let mut builds = 0;
        {
            let g = pool.pin(key).unwrap();
            let t = g
                .transient_or_build(|bytes| {
                    builds += 1;
                    Ok((bytes.iter().map(|&b| b as usize).sum::<usize>(), 100))
                })
                .unwrap();
            assert_eq!(*t, 7 * 16);
            // Transient bytes charged on top of the page bytes.
            assert_eq!(resman.stats().paged_bytes, 16 + 100);
            let t2 = g
                .transient_or_build(|_| -> StorageResult<(usize, usize)> {
                    panic!("must not rebuild while loaded")
                })
                .unwrap();
            assert_eq!(*t2, *t);
        }
        assert_eq!(builds, 1);
        resman.reactive_unload();
        assert_eq!(resman.stats().paged_bytes, 0);
        // Reload: the transient is rebuilt.
        let g = pool.pin(key).unwrap();
        let t = g.transient_or_build(|_| Ok((1usize, 0))).unwrap();
        assert_eq!(*t, 1);
    }

    #[test]
    fn clear_simulates_cold_restart() {
        let (pool, chain) = pool_with_pages(3, 32);
        let keep = pool.pin(PageKey::new(chain, 2)).unwrap();
        for i in 0..2 {
            drop(pool.pin(PageKey::new(chain, i)).unwrap());
        }
        pool.clear();
        assert_eq!(pool.resident_pages(), 1, "pinned page survives clear");
        assert_eq!(pool.resource_manager().stats().paged_count, 1);
        drop(keep);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.resource_manager().stats().total_bytes, 0);
    }

    #[test]
    fn read_errors_surface_as_err() {
        let store = crate::FaultyStore::new(MemStore::new(), crate::FaultPlan::None);
        let chain = store.create_chain(8).unwrap();
        store.append_page(chain, b"x").unwrap();
        store.set_plan(crate::FaultPlan::EveryNthRead(1));
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        assert!(pool.pin(PageKey::new(chain, 0)).is_err());
        assert_eq!(pool.resident_pages(), 0, "failed load leaves no frame");
    }

    #[test]
    fn guard_clone_holds_second_pin() {
        let (pool, chain) = pool_with_pages(1, 16);
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        let g1 = pool.pin(PageKey::new(chain, 0)).unwrap();
        let g2 = g1.clone();
        drop(g1);
        // Still pinned through g2: reactive unload cannot evict it.
        assert_eq!(resman.reactive_unload(), 0);
        assert!(pool.is_resident(PageKey::new(chain, 0)));
        drop(g2);
        assert_eq!(resman.reactive_unload(), 16);
    }
}
