//! Deterministic chaos: seeded fault storms against the pool's full
//! concurrency surface (pins, evictions, cold restarts, quarantine).
//!
//! Every operation must land in the trichotomy the fault model promises:
//! a correct result, or a clean typed error — never a panic, deadlock,
//! leaked pin, or accounting violation. Each seed drives the store's
//! [`FaultPlan::Seeded`] plan, whose decisions depend only on
//! `(seed, key, attempt)`, so a failing seed reproduces locally with
//! `PAYG_CHAOS_SEED=<seed> cargo test -p payg-storage --test chaos`.

use payg_resman::ResourceManager;
use payg_storage::{
    BufferPool, FaultClass, FaultPlan, FaultyStore, MemStore, PageKey, PageStore, PoolConfig,
    StorageError,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const PAGES: u64 = 8;
const PAGE_SIZE: usize = 32;

/// Seeds to storm with: the CI matrix pins one via `PAYG_CHAOS_SEED`; a
/// plain local run sweeps a small default set.
fn chaos_seeds() -> Vec<u64> {
    match std::env::var("PAYG_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("PAYG_CHAOS_SEED must be a u64")],
        Err(_) => vec![1, 2, 3, 4],
    }
}

/// Thread-local pseudo-random page selector — deliberately distinct from
/// the store's fault RNG so the access pattern and the fault pattern are
/// uncorrelated.
fn mix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn chaos_pool(
    seed: u64,
) -> (Arc<FaultyStore<MemStore>>, BufferPool, ResourceManager, payg_storage::ChainId) {
    let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
    let chain = store.create_chain(PAGE_SIZE).unwrap();
    for p in 0..PAGES {
        store.append_page(chain, &[p as u8; PAGE_SIZE]).unwrap();
    }
    let resman = ResourceManager::new();
    let pool = BufferPool::with_config(
        Arc::clone(&store) as Arc<dyn PageStore>,
        ResourceManager::clone(&resman),
        PoolConfig {
            // Real backoff would serialize the storm on sleeps; the retry
            // *logic* is what the chaos exercises.
            sleeper: Arc::new(|_| {}),
            quarantine_ttl: 3,
            ..PoolConfig::default()
        },
    );
    store.set_plan(FaultPlan::Seeded { seed, p_read: 0.15, p_corrupt: 0.08, p_write: 0.0 });
    (store, pool, resman, chain)
}

/// One seeded storm: 4 threads × 64 pins over 8 pages with concurrent
/// cold restarts (`clear`) and eviction passes, then the post-run
/// invariant audit and a recovery pass with the faults lifted.
fn storm(seed: u64) {
    let (store, pool, resman, chain) = chaos_pool(seed);
    let pins = AtomicU64::new(0);
    let failures = AtomicU64::new(0);
    std::thread::scope(|s| {
        for tid in 0..4u64 {
            let pool = pool.clone();
            let resman = &resman;
            let pins = &pins;
            let failures = &failures;
            s.spawn(move || {
                for i in 0..64u64 {
                    let key = PageKey::new(chain, mix(seed ^ (tid << 32) ^ i) % PAGES);
                    pins.fetch_add(1, Ordering::Relaxed);
                    match pool.pin(key) {
                        Ok(guard) => {
                            assert_eq!(
                                &guard[..],
                                &[key.page_no as u8; PAGE_SIZE][..],
                                "seed {seed}: pinned bytes must be the page's"
                            );
                        }
                        Err(e) => {
                            failures.fetch_add(1, Ordering::Relaxed);
                            audit_error(seed, key, &e);
                        }
                    }
                    // Interleave the pool's other mutation surfaces.
                    match (tid, i % 16) {
                        (0, 15) => {
                            pool.clear();
                        }
                        (1, 7) => {
                            resman.reactive_unload();
                        }
                        _ => {}
                    }
                }
            });
        }
    });
    let m = pool.metrics();
    let pins = pins.load(Ordering::Relaxed);
    let failures = failures.load(Ordering::Relaxed);
    assert_eq!(m.hits + m.misses, pins, "seed {seed}: every pin is a hit xor a miss: {m:?}");
    assert_eq!(m.misses - m.loads, failures, "seed {seed}: failed pins are misses without loads");
    assert!(m.quarantine_fail_fast <= failures, "seed {seed}: fail-fasts are failures: {m:?}");
    assert_eq!(m.bytes_loaded, m.loads * PAGE_SIZE as u64, "seed {seed}: bytes follow loads");
    // Each seed's decisions are deterministic, so this is not flaky: the
    // storm's ~40+ load attempts at p≈0.23 always produce faults.
    assert!(m.load_faults > 0, "seed {seed}: the storm injected no faults: {m:?}");
    pool.assert_no_live_pins("chaos quiesce");

    // Recovery: lift the faults, drain the quarantine, and every page must
    // come back byte-perfect — chaos must not leave the pool wedged.
    store.set_plan(FaultPlan::None);
    pool.clear_quarantine();
    pool.clear();
    for p in 0..PAGES {
        let guard = pool.pin(PageKey::new(chain, p)).unwrap();
        assert_eq!(&guard[..], &[p as u8; PAGE_SIZE][..], "seed {seed}: recovery read");
    }
    pool.assert_no_live_pins("chaos recovery quiesce");
}

/// A chaos failure must be a *typed* error from the fault taxonomy that
/// names the page it failed on — never a stringly or logical error.
fn audit_error(seed: u64, key: PageKey, e: &StorageError) {
    assert_ne!(
        e.fault_class(),
        FaultClass::Logical,
        "seed {seed}: chaos only injects transient/corrupt faults, got {e}"
    );
    if let Some(named) = e.page_key() {
        assert_eq!(named, key, "seed {seed}: error {e} names the wrong page");
    }
    match e {
        StorageError::InjectedFault(_)
        | StorageError::ChecksumMismatch { .. }
        | StorageError::LoadFailed { .. }
        | StorageError::Quarantined { .. } => {}
        other => panic!("seed {seed}: unexpected chaos error shape: {other}"),
    }
}

#[test]
fn seeded_pin_storms_land_in_the_trichotomy() {
    for seed in chaos_seeds() {
        storm(seed);
    }
}

#[test]
fn seeded_write_faults_fail_cleanly_and_survivors_read_back() {
    for seed in chaos_seeds() {
        let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
        let chain = store.create_chain(16).unwrap();
        store.set_plan(FaultPlan::Seeded { seed, p_read: 0.0, p_corrupt: 0.0, p_write: 0.3 });
        // Pages that survive the write storm, in append order.
        let mut written = Vec::new();
        for i in 0..40u8 {
            match store.append_page(chain, &[i; 16]) {
                Ok(page_no) => {
                    assert_eq!(page_no, written.len() as u64, "appends stay dense");
                    written.push(i);
                }
                Err(StorageError::InjectedWriteFault(_)) => {}
                Err(other) => panic!("seed {seed}: write fault must be typed, got {other}"),
            }
        }
        assert!(!written.is_empty(), "seed {seed}: some appends survived");
        store.set_plan(FaultPlan::None);
        for (page_no, fill) in written.iter().enumerate() {
            let bytes = store.read_page(PageKey::new(chain, page_no as u64)).unwrap();
            assert_eq!(&bytes[..], &[*fill; 16][..], "seed {seed}: surviving page {page_no}");
        }
    }
}
