//! Observability integration tests: counter-accounting regressions
//! (every pin lands in exactly one of hits/misses; failed loads are not
//! double-counted; waits are counted on the single-flight wait path) and
//! page-lifecycle event tracing (the acceptance check: with tracing
//! enabled, a pressure-eviction run reconstructs the exact
//! load → pin → evict sequence per page from the event buffers).

use payg_obs::{EventKind, ObsSnapshot};
use payg_resman::{PoolLimits, ResourceManager};
use payg_storage::{
    BufferPool, FaultPlan, FaultyStore, GateStore, MemStore, PageKey, PageStore,
};
use std::sync::Arc;

#[test]
fn failed_load_is_one_miss_and_no_load() {
    // Regression (bug sweep): a failed load must count exactly one miss and
    // zero loads/hits — never a miss *and* something else.
    let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
    let chain = store.create_chain(16).unwrap();
    store.append_page(chain, &[1; 4]).unwrap();
    store.set_plan(FaultPlan::EveryNthRead(1));
    let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
    assert!(pool.pin(PageKey::new(chain, 0)).is_err());
    let m = pool.metrics();
    assert_eq!(m.misses, 1, "the failed pin is one miss");
    assert_eq!(m.loads, 0, "no successful load");
    assert_eq!(m.hits, 0);
    assert_eq!(m.misses - m.loads, 1, "misses - loads counts the failed loads");
}

#[test]
fn every_pin_lands_in_exactly_one_of_hits_or_misses() {
    // Mixed workload with injected failures: hits + misses must equal the
    // number of pin calls, regardless of how many loads failed. The outage
    // is permanent (AfterReads) rather than periodic so the pool's bounded
    // retry cannot absorb it — failed pins must still be observable here.
    let store = FaultyStore::new(MemStore::new(), FaultPlan::None);
    let chain = store.create_chain(32).unwrap();
    for i in 0..8 {
        store.append_page(chain, &[i as u8; 8]).unwrap();
    }
    store.set_plan(FaultPlan::AfterReads(10));
    let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
    let mut pins = 0u64;
    let mut failures = 0u64;
    for round in 0..4 {
        for p in 0..8u64 {
            pins += 1;
            if pool.pin(PageKey::new(chain, p)).is_err() {
                failures += 1;
            }
            // Evict everything between rounds so later rounds miss again.
            if round % 2 == 1 {
                continue;
            }
        }
        pool.clear();
    }
    assert!(failures > 0, "the fault plan fired");
    let m = pool.metrics();
    assert_eq!(m.hits + m.misses, pins, "every pin call is a hit xor a miss: {m:?}");
    assert_eq!(m.misses - m.loads, failures, "failed pins are misses without loads");
}

#[test]
fn single_flight_wait_counts_and_emits_events() {
    // Deterministic wait window: the gate parks the elected loader at the
    // store while the other pins enter the wait path.
    let store = Arc::new(GateStore::new(MemStore::new()));
    let chain = store.create_chain(32).unwrap();
    store.append_page(chain, &[9; 8]).unwrap();
    let pool = BufferPool::new(
        Arc::clone(&store) as Arc<dyn PageStore>,
        ResourceManager::new(),
    );
    let tracer = pool.registry().tracer().clone();
    tracer.enable();
    let key = PageKey::new(chain, 0);
    store.close();
    std::thread::scope(|s| {
        for _ in 0..4 {
            let pool = pool.clone();
            s.spawn(move || {
                pool.pin(key).unwrap();
            });
        }
        store.wait_for_waiters(1);
        store.open();
    });
    let m = pool.metrics();
    assert_eq!(m.loads, 1);
    assert!(m.load_waits > 0, "waiters were counted: {m:?}");
    let events = tracer.drain();
    let waits = events
        .iter()
        .filter(|e| e.kind == EventKind::SingleFlightWait)
        .count() as u64;
    assert_eq!(waits, m.load_waits, "one wait event per counted wait");
    assert!(events
        .iter()
        .filter(|e| e.kind == EventKind::SingleFlightWait)
        .all(|e| e.chain == chain.0 && e.page_no == 0));
}

#[test]
fn pressure_eviction_sequence_is_reconstructable_from_events() {
    // Acceptance: with tracing enabled, the event buffers reconstruct the
    // exact load → pin → evict order for every page of a chain driven
    // through memory pressure.
    let store = MemStore::new();
    let page_size = 64usize;
    let chain = store.create_chain(page_size).unwrap();
    let pages = 6u64;
    for i in 0..pages {
        store.append_page(chain, &[i as u8; 64]).unwrap();
    }
    let resman = ResourceManager::with_paged_limits(PoolLimits::new(0, usize::MAX));
    let pool = BufferPool::new(Arc::new(store), resman.clone());
    let tracer = pool.registry().tracer().clone();
    tracer.enable();

    // Drive: pin each page (load + pin), then evict everything, twice.
    for _ in 0..2 {
        for p in 0..pages {
            drop(pool.pin(PageKey::new(chain, p)).unwrap());
        }
        assert_eq!(resman.reactive_unload(), pages as usize * page_size);
    }

    let events = tracer.drain();
    assert_eq!(tracer.dropped(), 0, "ring capacity not exceeded");
    // The I/O stage adds IoSubmitted/IoBatchIssued/IoCompleted around each
    // cold load; the lifecycle reconstruction looks at the page's
    // load/pin/evict kinds only.
    let lifecycle = [EventKind::PageLoaded, EventKind::PagePinned, EventKind::PageEvicted];
    for p in 0..pages {
        let kinds: Vec<EventKind> = events
            .iter()
            .filter(|e| e.chain == chain.0 && e.page_no == p && lifecycle.contains(&e.kind))
            .map(|e| e.kind)
            .collect();
        assert_eq!(
            kinds,
            vec![
                EventKind::PageLoaded,
                EventKind::PagePinned,
                EventKind::PageEvicted,
                EventKind::PageLoaded,
                EventKind::PagePinned,
                EventKind::PageEvicted,
            ],
            "page {p}: exact load → pin → evict sequence, twice"
        );
        // Loads and pins carry the page size; evictions at least that (plus
        // any transient bytes).
        for e in events
            .iter()
            .filter(|e| e.chain == chain.0 && e.page_no == p && lifecycle.contains(&e.kind))
        {
            assert!(e.bytes >= page_size as u64, "{e:?}");
        }
        // Stage events bracket each cold load: submitted before the load,
        // completed after, every time. Inline builds (model checks, or a
        // pool configured with `io_stage: None`) fetch without the stage
        // and emit no Io* events at all.
        let per_load = usize::from(pool.io_stage_active());
        let submits =
            events.iter().filter(|e| e.page_no == p && e.kind == EventKind::IoSubmitted).count();
        let completes =
            events.iter().filter(|e| e.page_no == p && e.kind == EventKind::IoCompleted).count();
        assert_eq!(
            (submits, completes),
            (2 * per_load, 2 * per_load),
            "page {p}: one submit/complete per cold load"
        );
    }
    // Events are globally ordered by sequence number, and timestamps are
    // monotone along that order per construction of the drain.
    for w in events.windows(2) {
        assert!(w[0].seq < w[1].seq);
    }
}

#[test]
fn proactive_sweep_emits_one_summary_event() {
    let store = MemStore::new();
    let chain = store.create_chain(32).unwrap();
    for i in 0..4 {
        store.append_page(chain, &[i as u8; 32]).unwrap();
    }
    // Manual limits (no background worker): the pool exceeds the 64-byte
    // upper bound, so one proactive pass sweeps everything unpinned down to
    // the lower bound of 0.
    let resman = ResourceManager::new();
    resman.set_paged_limits_manual(Some(PoolLimits::new(0, 64)));
    let pool = BufferPool::new(Arc::new(store), resman.clone());
    let tracer = pool.registry().tracer().clone();
    tracer.enable();
    for p in 0..4 {
        drop(pool.pin(PageKey::new(chain, p)).unwrap());
    }
    let freed = resman.proactive_unload();
    assert_eq!(freed, 4 * 32);
    let events = tracer.drain();
    let sweeps: Vec<_> = events
        .iter()
        .filter(|e| e.kind == EventKind::ProactiveSweep)
        .collect();
    assert_eq!(sweeps.len(), 1, "one summary event per sweep");
    assert_eq!(sweeps[0].page_no, 4, "victim count rides in page_no");
    assert_eq!(sweeps[0].bytes, 4 * 32, "reclaimed bytes");
    // The sweep's evictions are also individually visible.
    assert_eq!(
        events.iter().filter(|e| e.kind == EventKind::PageEvicted).count(),
        4
    );
}

#[test]
fn registry_snapshot_covers_pool_and_resman() {
    // One ObsSnapshot::collect carries the pool's and the resman's series.
    let store = MemStore::new();
    let chain = store.create_chain(16).unwrap();
    for i in 0..3 {
        store.append_page(chain, &[i as u8; 16]).unwrap();
    }
    let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
    for p in 0..3 {
        drop(pool.pin(PageKey::new(chain, p)).unwrap());
        drop(pool.pin(PageKey::new(chain, p)).unwrap());
    }
    let snap = ObsSnapshot::collect(pool.registry());
    assert_eq!(snap.counter("pool_loads"), 3);
    assert_eq!(snap.counter("pool_shard_hits"), 3);
    assert_eq!(snap.counter("pool_shard_misses"), 3);
    assert_eq!(snap.gauge("resman_paged_count"), 3);
    assert_eq!(snap.gauge("resman_paged_bytes"), 3 * 16);
    let text = snap.to_prometheus_text();
    assert!(text.contains("pool_loads"), "{text}");
    assert!(text.contains("resman_paged_bytes"), "{text}");
}
