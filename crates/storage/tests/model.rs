//! Model checks of the **real** `BufferPool` under `--cfg payg_check`.
//!
//! Built with `RUSTFLAGS="--cfg payg_check"`, every lock in
//! `payg-storage` and `payg-resman` resolves to the modeled wrappers, so
//! these tests drive the production pin/load/evict code — not a port —
//! through a deterministic scheduler. State spaces here are far larger
//! than the `MiniPool` models in `payg-check`, so every check is bounded;
//! the bound is the knob CI turns.
//!
//! Build/run: `RUSTFLAGS="--cfg payg_check" cargo test -p payg-storage --test model`
#![cfg(payg_check)]

use payg_check::{thread, Checker};
use payg_resman::{PoolLimits, ResourceManager};
use payg_storage::{BufferPool, MemStore, PageKey, PageStore};
use std::sync::Arc;

/// Schedules explored per check: real-pool paths have many yield points,
/// so full exhaustion is out of reach; this prefix still covers the
/// decisive orderings around the shard map and the single-flight publish.
const BOUND: usize = 300;

fn pool_with_pages(n: u64) -> (BufferPool, payg_storage::ChainId) {
    let store = MemStore::new();
    let chain = store.create_chain(32).expect("create chain");
    for i in 0..n {
        store.append_page(chain, &[i as u8; 8]).expect("append page");
    }
    let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
    (pool, chain)
}

#[test]
fn real_pool_single_flight_under_model() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let (pool, chain) = pool_with_pages(1);
        let pool = Arc::new(pool);
        let key = PageKey::new(chain, 0);
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let p = Arc::clone(&pool);
                thread::spawn(move || {
                    let g = p.pin(key).expect("pin");
                    assert_eq!(g[0], 0, "page bytes must be stable");
                })
            })
            .collect();
        for t in threads {
            t.join().expect("model thread");
        }
        let m = pool.metrics();
        assert_eq!(m.loads, 1, "single-flight: the page must be read from the store once");
        pool.assert_no_live_pins("model quiesce");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
}

#[test]
fn real_pool_pinned_page_survives_unload_race() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let (pool, chain) = pool_with_pages(2);
        let pool = Arc::new(pool);
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits_manual(Some(PoolLimits::new(0, usize::MAX)));
        let held = pool.pin(PageKey::new(chain, 0)).expect("pin");
        let r = resman.clone();
        let t = thread::spawn(move || {
            // Reactive unload racing a held pin: must skip the pinned page.
            r.reactive_unload();
        });
        t.join().expect("model thread");
        assert_eq!(held[0], 0, "pinned page bytes changed under eviction race");
        drop(held);
        resman.reactive_unload();
        assert_eq!(pool.resident_pages(), 0, "unpinned pages must unload to the lower limit");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
}

#[test]
fn registry_counters_consistent_under_pin_evict_race() {
    // Observability invariant under every explored interleaving of
    // concurrent pins and a racing eviction sweep: the registry's shard
    // counters partition the pin calls exactly — hits + misses == pins —
    // and successful loads never exceed misses.
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let (pool, chain) = pool_with_pages(2);
        let pool = Arc::new(pool);
        let resman = pool.resource_manager().clone();
        resman.set_paged_limits_manual(Some(PoolLimits::new(0, usize::MAX)));
        let pins = 3u64; // one warm-up + two racing
        drop(pool.pin(PageKey::new(chain, 0)).expect("warm-up pin"));
        let threads: Vec<_> = (0..2u64)
            .map(|i| {
                let p = Arc::clone(&pool);
                thread::spawn(move || {
                    let g = p.pin(PageKey::new(chain, i % 2)).expect("pin");
                    assert_eq!(g[0], (i % 2) as u8);
                })
            })
            .collect();
        let r = resman.clone();
        let evictor = thread::spawn(move || {
            r.reactive_unload();
        });
        for t in threads {
            t.join().expect("model thread");
        }
        evictor.join().expect("model thread");
        let snap = payg_obs::ObsSnapshot::collect(pool.registry());
        let hits = snap.counter("pool_shard_hits");
        let misses = snap.counter("pool_shard_misses");
        let loads = snap.counter("pool_loads");
        assert_eq!(hits + misses, pins, "hits({hits}) + misses({misses}) != pins({pins})");
        assert!(loads <= misses, "loads({loads}) > misses({misses})");
        assert_eq!(loads, misses, "no failed loads here: every miss loaded");
        pool.assert_no_live_pins("model quiesce");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
}

#[test]
fn real_pool_clear_racing_pin_leaves_consistent_state() {
    let report = Checker::exhaustive().max_iterations(BOUND).check(|| {
        let (pool, chain) = pool_with_pages(1);
        let pool = Arc::new(pool);
        let key = PageKey::new(chain, 0);
        let p = Arc::clone(&pool);
        let pinner = thread::spawn(move || {
            let g = p.pin(key).expect("pin");
            // Whatever clear() did around us, our view must be coherent.
            assert_eq!(g[0], 0, "guard bytes must be stable across clear()");
        });
        pool.clear();
        pinner.join().expect("model thread");
        // After the dust settles a fresh pin must work and be consistent.
        let g = pool.pin(key).expect("pin after clear");
        assert_eq!(g[0], 0);
        drop(g);
        pool.assert_no_live_pins("model quiesce");
    });
    assert!(report.failure.is_none(), "unexpected failure: {:?}", report.failure);
}
