//! Integration tests for the cold-path I/O stage: deterministic batch
//! coalescing (via a gated store that parks the worker while submissions
//! accumulate), per-request fault granularity inside a coalesced read,
//! queue-pressure shedding, and the warm/cold pin-latency split.

use payg_obs::ObsSnapshot;
use payg_resman::ResourceManager;
#[cfg(not(payg_check))]
use payg_storage::{FaultPlan, FaultyStore, GateStore, IoStageConfig, PoolConfig};
use payg_storage::{BufferPool, MemStore, PageKey, PageStore};
use std::sync::Arc;

/// A single-worker staged pool over a gate so tests can park the worker
/// mid-read and control exactly what accumulates in the submission queue.
/// Model-check builds (`--cfg payg_check`) run the stage inline with no
/// worker threads, so the gate-driven tests are compiled out there (the
/// submit/complete/cancel protocol is model-checked in
/// `payg-check/tests/iostage_model.rs` instead).
#[cfg(not(payg_check))]
fn gated_pool(
    queue_cap: usize,
) -> (Arc<GateStore<FaultyStore<MemStore>>>, BufferPool, payg_storage::ChainId) {
    let store = Arc::new(GateStore::new(FaultyStore::new(MemStore::new(), FaultPlan::None)));
    let chain = store.create_chain(32).unwrap();
    for i in 0..8u64 {
        store.append_page(chain, &[i as u8; 8]).unwrap();
    }
    let pool = BufferPool::with_config(
        Arc::clone(&store) as Arc<dyn PageStore>,
        ResourceManager::new(),
        PoolConfig {
            io_stage: Some(IoStageConfig { workers: 1, max_batch: 16, queue_cap }),
            ..PoolConfig::default()
        },
    );
    (store, pool, chain)
}

#[test]
#[cfg(not(payg_check))]
fn coalesced_batch_isolates_a_corrupt_page() {
    // Park the single worker on a decoy read while six adjacent prefetches
    // (one of them corrupt) pile up, then release it: the worker must pop
    // all six as one batch, issue exactly one ranged read for the run, and
    // still fail/quarantine only the corrupt page.
    let (store, pool, chain) = gated_pool(256);
    store.inner().set_plan(FaultPlan::CorruptPages(vec![PageKey::new(chain, 3)]));
    store.close();
    assert!(pool.prefetch_submit(PageKey::new(chain, 7)), "decoy prefetch accepted");
    store.wait_for_waiters(1); // the worker is parked inside the decoy read
    for p in 0..6u64 {
        assert!(pool.prefetch_submit(PageKey::new(chain, p)), "prefetch {p} accepted");
    }
    store.open();
    // Demand pins join the staged completions via single flight.
    for p in 0..6u64 {
        let key = PageKey::new(chain, p);
        if p == 3 {
            assert!(pool.pin(key).is_err(), "corrupt page must fail");
        } else {
            assert_eq!(pool.pin(key).unwrap()[0], p as u8, "neighbour pages publish");
        }
    }
    assert_eq!(pool.quarantined_pages(), 1, "only the corrupt page quarantines");
    let m = pool.metrics();
    assert_eq!(m.loads, 6, "decoy + five good neighbours");
    assert_eq!(m.io_submitted, 7, "seven accepted prefetches");
    assert_eq!(m.io_completions, 7, "every request individually completed");
    assert_eq!(m.io_physical_reads, 2, "decoy read + ONE ranged read for the run of six");
    assert_eq!(m.io_coalesced, 6, "all six run members rode the coalesced read");
    pool.assert_no_live_pins("iostage coalescing quiesce");
}

#[test]
#[cfg(not(payg_check))]
fn queue_pressure_sheds_prefetches_but_never_demand() {
    // Capacity 2 with the worker parked: the third prefetch is shed and its
    // placeholder cancelled, so a later demand pin on that page elects
    // itself loader instead of waiting forever.
    let (store, pool, chain) = gated_pool(2);
    store.close();
    assert!(pool.prefetch_submit(PageKey::new(chain, 0)), "parked read");
    store.wait_for_waiters(1);
    assert!(pool.prefetch_submit(PageKey::new(chain, 1)));
    assert!(pool.prefetch_submit(PageKey::new(chain, 2)));
    assert!(!pool.prefetch_submit(PageKey::new(chain, 3)), "cap 2 sheds the third");
    store.open();
    for p in 0..4u64 {
        assert_eq!(pool.pin(PageKey::new(chain, p)).unwrap()[0], p as u8);
    }
    let m = pool.metrics();
    assert_eq!(m.loads, 4, "shed page still loads — via its demand pin");
    assert_eq!(m.prefetches, 3, "the shed submission is not counted");
    assert_eq!(m.io_submitted, 4, "three prefetches + the demand fetch for page 3");
    assert_eq!(m.io_completions, 4);
    pool.assert_no_live_pins("iostage shedding quiesce");
}

#[test]
fn cold_pins_record_load_latency_warm_pins_record_pin_latency() {
    // The warm/cold split: a cold pin (elected loader or single-flight
    // waiter) lands in `pool_load_ns`, a warm pin in `pool_pin_ns` — the
    // two histograms partition the successful pins.
    let store = MemStore::new();
    let chain = store.create_chain(32).unwrap();
    for i in 0..4u64 {
        store.append_page(chain, &[i as u8; 8]).unwrap();
    }
    let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
    for p in 0..4u64 {
        drop(pool.pin(PageKey::new(chain, p)).unwrap()); // cold
    }
    for _ in 0..3 {
        drop(pool.pin(PageKey::new(chain, 0)).unwrap()); // warm
    }
    let snap = ObsSnapshot::collect(pool.registry());
    assert_eq!(snap.histogram("pool_load_ns").count(), 4, "one cold pin per page");
    assert_eq!(snap.histogram("pool_pin_ns").count(), 3, "three warm re-pins");
}
