//! Property tests for the storage layer: arbitrary chain contents round-trip
//! through the pool under arbitrary interleavings of pins and evictions.

use payg_resman::{PoolLimits, ResourceManager};
use payg_storage::{
    BufferPool, ChainWriter, FaultPlan, FaultyStore, MemStore, PageKey, PageStore, PoolConfig,
    RetryPolicy,
};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the writer pushed comes back byte-identical through the
    /// pool, no matter how reads interleave with evictions.
    #[test]
    fn chain_roundtrip_under_eviction(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..20),
        page_size in 64usize..128,
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 1..60),
    ) {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
        let mut w = ChainWriter::new(Arc::clone(&store), page_size).unwrap();
        for p in &pages {
            w.push(p).unwrap();
            w.finish_page().unwrap();
        }
        let chain = w.finish().unwrap();
        prop_assert_eq!(chain.pages, pages.len() as u64);
        let resman = ResourceManager::new();
        resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        let pool = BufferPool::new(store, resman.clone());
        for (sel, evict) in ops {
            let page_no = u64::from(sel) % chain.pages;
            let guard = pool.pin(PageKey::new(chain.chain, page_no)).unwrap();
            let expect = &pages[page_no as usize];
            prop_assert_eq!(&guard[..expect.len()], expect.as_slice());
            prop_assert!(guard[expect.len()..].iter().all(|&b| b == 0), "zero padding");
            drop(guard);
            if evict {
                resman.reactive_unload();
                prop_assert_eq!(resman.stats().paged_bytes, 0);
            }
        }
    }

    /// Pool metrics: loads + hits equals pin calls, and every load reads
    /// exactly one page worth of bytes.
    #[test]
    fn pool_metrics_are_consistent(
        n_pages in 1u64..12,
        pins in prop::collection::vec(any::<u8>(), 1..80),
    ) {
        let store = MemStore::new();
        let chain = store.create_chain(32).unwrap();
        for i in 0..n_pages {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        for sel in &pins {
            let key = PageKey::new(chain, u64::from(*sel) % n_pages);
            let _ = pool.pin(key).unwrap();
        }
        let m = pool.metrics();
        prop_assert_eq!(m.loads + m.hits, pins.len() as u64);
        prop_assert_eq!(m.bytes_loaded, m.loads * 32);
        prop_assert!(m.loads <= n_pages, "never more loads than distinct pages");
    }

    /// One transient fault injected at an arbitrary point of an arbitrary
    /// pin/evict workload never breaks the metric invariants: every pin is
    /// a hit xor a miss, `misses - loads` counts exactly the failed pins,
    /// and a transient fault never quarantines. With retry enabled the
    /// fault is absorbed (zero failed pins); with retry disabled it
    /// surfaces on exactly the pin whose read hit it.
    #[test]
    fn single_injected_fault_preserves_metric_invariants(
        n_pages in 1u64..10,
        ops in prop::collection::vec((any::<u8>(), any::<bool>()), 1..60),
        fault_after in 0u64..40,
        retry in any::<bool>(),
    ) {
        let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
        let chain = store.create_chain(32).unwrap();
        for i in 0..n_pages {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        store.set_plan(FaultPlan::Transient { after: fault_after, count: 1 });
        let resman = ResourceManager::new();
        let pool = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn PageStore>,
            resman.clone(),
            PoolConfig {
                retry: if retry { RetryPolicy::default() } else { RetryPolicy::NONE },
                sleeper: Arc::new(|_| {}),
                ..PoolConfig::default()
            },
        );
        let mut failures = 0u64;
        for (sel, evict) in &ops {
            let key = PageKey::new(chain, u64::from(*sel) % n_pages);
            match pool.pin(key) {
                Ok(guard) => prop_assert_eq!(guard[0], key.page_no as u8),
                Err(_) => failures += 1,
            }
            if *evict {
                resman.reactive_unload();
            }
        }
        let m = pool.metrics();
        prop_assert_eq!(m.hits + m.misses, ops.len() as u64, "hit xor miss per pin: {:?}", m);
        prop_assert_eq!(m.misses - m.loads, failures, "failed pins == misses - loads: {:?}", m);
        prop_assert!(m.load_faults <= 1, "Transient count:1 fires at most once: {:?}", m);
        prop_assert_eq!(failures, if retry { 0 } else { m.load_faults },
            "retry absorbs the single fault; no-retry surfaces it: {:?}", m);
        prop_assert_eq!(m.load_retries, if retry { m.load_faults } else { 0 });
        prop_assert_eq!(m.quarantine_inserts, 0, "a transient fault never quarantines");
        prop_assert_eq!(pool.quarantined_pages(), 0);
        prop_assert_eq!(m.bytes_loaded, m.loads * 32);
        pool.assert_no_live_pins("proptest quiesce");
    }

    /// Batched/coalesced loads through the cold-path I/O stage are
    /// equivalent to sequential loads through a stage-less pool: identical
    /// bytes for every good page, identical per-page outcome when one page
    /// is corrupt — the bad page (and only the bad page) fails and
    /// quarantines, its neighbours in the same coalesced read publish.
    // Model-check builds run the pool inline (no stage threads), so the
    // staged side of the comparison does not exist there.
    #[cfg(not(payg_check))]
    #[test]
    fn staged_coalesced_loads_match_sequential(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..32), 1..24),
        corrupt_sel in any::<u16>(),
        inject in any::<bool>(),
    ) {
        let store = Arc::new(FaultyStore::new(MemStore::new(), FaultPlan::None));
        let chain = store.create_chain(64).unwrap();
        for p in &pages {
            store.append_page(chain, p).unwrap();
        }
        let n = pages.len() as u64;
        let bad = u64::from(corrupt_sel) % n;
        if inject {
            store.set_plan(FaultPlan::CorruptPages(vec![PageKey::new(chain, bad)]));
        }
        let staged = BufferPool::new(
            Arc::clone(&store) as Arc<dyn PageStore>,
            ResourceManager::new(),
        );
        prop_assert!(staged.io_stage_active(), "stage is on by default");
        let sequential = BufferPool::with_config(
            Arc::clone(&store) as Arc<dyn PageStore>,
            ResourceManager::new(),
            PoolConfig { io_stage: None, ..PoolConfig::default() },
        );
        prop_assert!(!sequential.io_stage_active());
        // Flood the stage with adjacent submissions so completions ride
        // coalesced ranged reads whenever the workers batch them up.
        for p in 0..n {
            staged.prefetch_submit(PageKey::new(chain, p));
        }
        for p in 0..n {
            let key = PageKey::new(chain, p);
            let a = staged.pin(key).map(|g| g.to_vec());
            let b = sequential.pin(key).map(|g| g.to_vec());
            match (a, b) {
                (Ok(x), Ok(y)) => {
                    prop_assert_eq!(&x, &y, "page {} bytes diverge", p);
                    prop_assert_eq!(&x[..pages[p as usize].len()], pages[p as usize].as_slice());
                }
                (Err(_), Err(_)) => {
                    prop_assert!(inject && p == bad, "only the corrupt page may fail");
                }
                (a, b) => prop_assert!(
                    false,
                    "outcome diverges at page {}: staged ok={} sequential ok={}",
                    p, a.is_ok(), b.is_ok()
                ),
            }
        }
        let failed = u64::from(inject);
        prop_assert_eq!(staged.quarantined_pages(), failed as usize,
            "exactly the corrupt page quarantines");
        let m = staged.metrics();
        prop_assert_eq!(m.loads, n - failed, "every good page loaded exactly once");
        prop_assert_eq!(m.io_completions, m.io_submitted,
            "every accepted submission completes: {:?}", m);
        prop_assert!(m.io_physical_reads <= m.io_completions,
            "coalescing never issues more reads than requests: {:?}", m);
        staged.assert_no_live_pins("staged proptest quiesce");
    }
}
