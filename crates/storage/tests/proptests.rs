//! Property tests for the storage layer: arbitrary chain contents round-trip
//! through the pool under arbitrary interleavings of pins and evictions.

use payg_resman::{PoolLimits, ResourceManager};
use payg_storage::{BufferPool, ChainWriter, MemStore, PageKey, PageStore};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Whatever the writer pushed comes back byte-identical through the
    /// pool, no matter how reads interleave with evictions.
    #[test]
    fn chain_roundtrip_under_eviction(
        pages in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..64), 1..20),
        page_size in 64usize..128,
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 1..60),
    ) {
        let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
        let mut w = ChainWriter::new(Arc::clone(&store), page_size).unwrap();
        for p in &pages {
            w.push(p).unwrap();
            w.finish_page().unwrap();
        }
        let chain = w.finish().unwrap();
        prop_assert_eq!(chain.pages, pages.len() as u64);
        let resman = ResourceManager::new();
        resman.set_paged_limits(Some(PoolLimits::new(0, usize::MAX)));
        let pool = BufferPool::new(store, resman.clone());
        for (sel, evict) in ops {
            let page_no = u64::from(sel) % chain.pages;
            let guard = pool.pin(PageKey::new(chain.chain, page_no)).unwrap();
            let expect = &pages[page_no as usize];
            prop_assert_eq!(&guard[..expect.len()], expect.as_slice());
            prop_assert!(guard[expect.len()..].iter().all(|&b| b == 0), "zero padding");
            drop(guard);
            if evict {
                resman.reactive_unload();
                prop_assert_eq!(resman.stats().paged_bytes, 0);
            }
        }
    }

    /// Pool metrics: loads + hits equals pin calls, and every load reads
    /// exactly one page worth of bytes.
    #[test]
    fn pool_metrics_are_consistent(
        n_pages in 1u64..12,
        pins in prop::collection::vec(any::<u8>(), 1..80),
    ) {
        let store = MemStore::new();
        let chain = store.create_chain(32).unwrap();
        for i in 0..n_pages {
            store.append_page(chain, &[i as u8]).unwrap();
        }
        let pool = BufferPool::new(Arc::new(store), ResourceManager::new());
        for sel in &pins {
            let key = PageKey::new(chain, u64::from(*sel) % n_pages);
            let _ = pool.pin(key).unwrap();
        }
        let m = pool.metrics();
        prop_assert_eq!(m.loads + m.hits, pins.len() as u64);
        prop_assert_eq!(m.bytes_loaded, m.loads * 32);
        prop_assert!(m.loads <= n_pages, "never more loads than distinct pages");
    }
}
