//! Stress: many threads pinning, releasing and evicting across pool shards
//! under a tight paged-pool limit. The properties under test: no deadlock
//! (the run finishes), no lost pins (a held guard always reads its page's
//! bytes, even while the resource manager evicts around it), and the paged
//! limits hold once the pool quiesces.

use payg_resman::{PoolLimits, ResourceManager};
use payg_storage::{BufferPool, ChainWriter, MemStore, PageKey, PageStore};
use std::sync::Arc;

const PAGE_SIZE: usize = 64;
const PAGES: u64 = 64;
const THREADS: u64 = 8;
const OPS_PER_THREAD: u64 = 400;

fn fill_byte(page_no: u64) -> u8 {
    (page_no as u8).wrapping_mul(37).wrapping_add(11)
}

#[test]
fn concurrent_pins_and_evictions_respect_limits() {
    let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
    let mut w = ChainWriter::new(Arc::clone(&store), PAGE_SIZE).unwrap();
    for p in 0..PAGES {
        w.push(&[fill_byte(p); 24]).unwrap();
        w.finish_page().unwrap();
    }
    let chain = w.finish().unwrap();

    // Tight limits: at most 8 unpinned pages stay resident, and the async
    // proactive worker keeps evicting down to 4 while the threads run.
    let resman = ResourceManager::new();
    resman.set_paged_limits(Some(PoolLimits::new(4 * PAGE_SIZE, 8 * PAGE_SIZE)));
    let pool = BufferPool::new(store, resman.clone());

    std::thread::scope(|s| {
        for t in 0..THREADS {
            let pool = pool.clone();
            let resman = resman.clone();
            s.spawn(move || {
                let mut x = t.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
                let mut held = Vec::new();
                for i in 0..OPS_PER_THREAD {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                    let page_no = (x >> 33) % PAGES;
                    let guard = pool.pin(PageKey::new(chain.chain, page_no)).unwrap();
                    assert_eq!(guard[0], fill_byte(page_no), "pinned frame holds its page");
                    assert_eq!(guard[23], fill_byte(page_no));
                    assert_eq!(guard[24], 0, "zero padding");
                    // Hold a few guards across iterations so pins from
                    // different threads overlap on shards, and eviction runs
                    // against genuinely pinned frames.
                    held.push((page_no, guard));
                    if held.len() > 3 {
                        held.remove(0);
                    }
                    match i % 17 {
                        0 => {
                            resman.reactive_unload();
                        }
                        9 => {
                            // Held guards must survive the purge.
                            for (p, g) in &held {
                                assert_eq!(g[0], fill_byte(*p), "pin lost under eviction");
                            }
                        }
                        _ => {}
                    }
                }
            });
        }
    });

    // All guards dropped: once the manager quiesces, the paged pool must sit
    // within its limits (the last proactive pass stops at the lower mark, so
    // anything at or below the upper mark is conformant).
    resman.quiesce();
    let paged = resman.stats().paged_bytes;
    assert!(
        paged <= 8 * PAGE_SIZE,
        "paged bytes {paged} exceed the upper limit after quiesce"
    );

    // Accounting: the pool's frame census matches the manager's byte count,
    // and the shard counters roll up into the pool totals.
    assert_eq!(paged, pool.resident_pages() * PAGE_SIZE);
    let m = pool.metrics();
    let pins = THREADS * OPS_PER_THREAD;
    assert!(
        m.loads + m.hits >= pins,
        "every pin resolved as a hit or a load ({} + {} < {pins})",
        m.loads,
        m.hits
    );
    assert_eq!(m.bytes_loaded, m.loads * PAGE_SIZE as u64);
    let shards = pool.shard_metrics();
    assert_eq!(shards.iter().map(|s| s.hits).sum::<u64>(), m.hits);
    assert!(
        shards.iter().filter(|s| s.hits + s.misses > 0).count() > 1,
        "work spread across more than one shard"
    );
}

#[test]
fn clear_races_with_pins_without_losing_frames() {
    let store: Arc<dyn PageStore> = Arc::new(MemStore::new());
    let mut w = ChainWriter::new(Arc::clone(&store), PAGE_SIZE).unwrap();
    for p in 0..PAGES {
        w.push(&[fill_byte(p); 24]).unwrap();
        w.finish_page().unwrap();
    }
    let chain = w.finish().unwrap();
    let pool = BufferPool::new(store, ResourceManager::new());

    std::thread::scope(|s| {
        for t in 0..4u64 {
            let pool = pool.clone();
            s.spawn(move || {
                for i in 0..300u64 {
                    let page_no = (t * 131 + i * 7) % PAGES;
                    let g = pool.pin(PageKey::new(chain.chain, page_no)).unwrap();
                    assert_eq!(g[0], fill_byte(page_no));
                    if i % 31 == 0 {
                        pool.clear();
                        // The guard outlives the purge.
                        assert_eq!(g[0], fill_byte(page_no));
                    }
                }
            });
        }
    });
}
