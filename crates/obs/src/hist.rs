//! Fixed-bucket power-of-two latency histograms.
//!
//! Bucket `0` holds the value `0`; bucket `i >= 1` holds values in
//! `[2^(i-1), 2^i - 1]`. With 64-bit values that is 65 buckets total —
//! enough to span nanoseconds to centuries with one `fetch_add` per
//! record and no configuration. Percentiles are answered from a snapshot
//! as the *upper bound* of the bucket containing the requested rank
//! (conservative: never under-reports).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Number of buckets in a [`Histogram`]: one per power of two of a `u64`,
/// plus a dedicated zero bucket.
pub const HIST_BUCKETS: usize = 65;

/// The bucket a value falls into.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

/// Inclusive upper bound of a bucket (what percentile queries report).
fn bucket_upper(i: usize) -> u64 {
    match i {
        0 => 0,
        64 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

struct HistInner {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// A lock-free fixed-bucket histogram handle. Cloning is cheap and clones
/// share the same underlying buckets.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A new, empty histogram (detached from any registry).
    pub fn new() -> Self {
        Histogram {
            inner: Arc::new(HistInner {
                buckets: [(); HIST_BUCKETS].map(|_| AtomicU64::new(0)),
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
            }),
        }
    }

    /// Records one observation.
    pub fn record(&self, v: u64) {
        let i = bucket_of(v);
        self.inner.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Number of observations recorded so far.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets. Concurrent recording may tear
    /// across buckets (a record between two bucket reads), which shifts the
    /// snapshot's totals by at most the number of in-flight records.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets = std::array::from_fn(|i| self.inner.buckets[i].load(Ordering::Relaxed));
        HistogramSnapshot {
            buckets,
            count: self.inner.count.load(Ordering::Relaxed),
            sum: self.inner.sum.load(Ordering::Relaxed),
        }
    }

    /// Whether two handles share the same underlying histogram.
    pub fn same_as(&self, other: &Histogram) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("count", &self.count()).finish()
    }
}

/// An immutable copy of a [`Histogram`]'s buckets, mergeable and queryable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; HIST_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HIST_BUCKETS], count: 0, sum: 0 }
    }
}

impl HistogramSnapshot {
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observed values, modulo 2^64: recording is one relaxed
    /// `fetch_add` per observation, so the sum wraps rather than saturates.
    /// (At nanosecond granularity that is ~584 years of accumulated time.)
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Observations in bucket `i` (values in `[2^(i-1), 2^i - 1]`; bucket 0
    /// is the value 0). Out-of-range indices read as 0.
    pub fn bucket(&self, i: usize) -> u64 {
        self.buckets.get(i).copied().unwrap_or(0)
    }

    /// Inclusive upper bound of bucket `i`'s value range.
    pub fn bucket_bound(i: usize) -> u64 {
        bucket_upper(i.min(HIST_BUCKETS - 1))
    }

    /// Folds another snapshot into this one: bucket counts add
    /// (saturating), and `sum` adds modulo 2^64 so that merging two
    /// snapshots equals recording both observation streams into one
    /// histogram — wrapping addition is associative, saturation is not.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.wrapping_add(other.sum);
    }

    /// Bucket-wise difference against an earlier snapshot of the same
    /// histogram (saturating, so a reset or mismatched baseline degrades to
    /// zeros rather than wrapping).
    pub fn delta(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for i in 0..HIST_BUCKETS {
            out.buckets[i] = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        out.count = self.count.saturating_sub(earlier.count);
        out.sum = self.sum.saturating_sub(earlier.sum);
        out
    }

    /// The value at quantile `q` in `[0, 1]`, reported as the upper bound of
    /// the bucket containing that rank (a conservative over-estimate within
    /// 2x of the true value). Returns 0 for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the requested observation, 1-based.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut cum = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            cum += b;
            if cum >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HIST_BUCKETS - 1)
    }

    /// Mean observed value (0 for an empty histogram).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Index of the highest non-empty bucket, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&b| b > 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(255), 8);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
        for i in 1..HIST_BUCKETS {
            // The lower edge of bucket i is one past the upper edge of i-1.
            assert_eq!(bucket_of(bucket_upper(i - 1).wrapping_add(1)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn record_and_percentiles() {
        let h = Histogram::new();
        for v in [0u64, 1, 1, 7, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        assert_eq!(s.sum(), 1109);
        assert_eq!(s.bucket(0), 1);
        assert_eq!(s.bucket(1), 2);
        // p50 -> rank 3 -> the second `1`, reported as bucket 1's bound.
        assert_eq!(s.percentile(0.5), 1);
        // p100 -> the 1000, bucket 10 (512..=1023), bound 1023.
        assert_eq!(s.percentile(1.0), 1023);
        assert_eq!(s.max_bucket(), Some(10));
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max_bucket(), None);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(3);
        b.record(3);
        b.record(1000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.bucket(2), 2);
        assert_eq!(s.sum(), 1006);
    }

    #[test]
    fn delta_subtracts_earlier() {
        let h = Histogram::new();
        h.record(5);
        let before = h.snapshot();
        h.record(5);
        h.record(9);
        let d = h.snapshot().delta(&before);
        assert_eq!(d.count(), 2);
        assert_eq!(d.sum(), 14);
        assert_eq!(d.bucket(3), 1);
        assert_eq!(d.bucket(4), 1);
    }
}
