//! Hierarchical query spans — the flight-recorder half of the [`Tracer`].
//!
//! A [`Span`] is an RAII scope that records one timed region of a query:
//! the query itself, one worker's scan partition, a pin blocked behind an
//! in-flight load, one coalesced I/O batch, or a codec dispatch decision.
//! Span ids are allocated from the tracer's existing global sequence, so
//! ids, event sequence numbers, and I/O batch ids share one totally
//! ordered namespace. Opening a span on a disabled tracer is one relaxed
//! load returning a no-op guard — the same budget as [`Tracer::emit`].
//!
//! While a span is open it becomes the calling thread's *current* span:
//! every `Tracer::emit` on that thread tags its event with the span id, so
//! a drained event log can be grouped back under the query that caused it.
//! Crossing threads is explicit: capture a [`QueryCtx`] before spawning
//! and call [`QueryCtx::enter`] in the worker — thread locals do not
//! follow `std::thread::scope`.
//!
//! Closed spans land in a bounded side store on the tracer, *separate*
//! from the per-thread event rings. Events are high-rate and may be
//! overwritten under load; spans are low-rate (a handful per query), so
//! keeping them aside guarantees parent links stay resolvable even when
//! every event ring has wrapped.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

use crate::trace::Tracer;

/// Closed spans a tracer's side store holds before dropping new ones.
pub const SPAN_STORE_CAPACITY: usize = 65_536;

/// What a [`Span`] covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// One table query end to end.
    Query,
    /// One worker's partition of a parallel scan (`detail` = first row).
    ScanPartition,
    /// A pin blocked behind another thread's in-flight load of the same
    /// page (`detail` = page number).
    PageWait,
    /// One coalesced physical read by the I/O stage (`detail` = pages
    /// covered). The span's id doubles as the batch id that
    /// `IoBatchIssued`/`IoCompleted` events carry in their `aux` field.
    IoBatch,
    /// One codec dispatch decision in a paged reader (`detail` = 1 for
    /// compressed-domain traversal, 0 for decode-then-scan).
    ChunkDispatch,
    /// One online delta merge of a partition (`detail` = partition index).
    Merge,
    /// A session admission that had to queue behind the concurrency limit
    /// (`detail` = queue depth observed on entry).
    Admission,
}

impl SpanKind {
    /// Short stable name for rendering (text trees, Chrome traces).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Query => "query",
            SpanKind::ScanPartition => "scan-partition",
            SpanKind::PageWait => "page-wait",
            SpanKind::IoBatch => "io-batch",
            SpanKind::ChunkDispatch => "chunk-dispatch",
            SpanKind::Merge => "merge",
            SpanKind::Admission => "admission",
        }
    }
}

/// One closed span: a timed region with a parent link into the span tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, allocated from the tracer's global sequence (never 0).
    pub id: u64,
    /// Parent span id, 0 for a root span.
    pub parent: u64,
    /// What the span covers.
    pub kind: SpanKind,
    /// Kind-specific payload (see [`SpanKind`]).
    pub detail: u64,
    /// Small per-thread ordinal (stable within the process) — lets
    /// exporters lane spans by thread without exposing OS thread ids.
    pub tid: u64,
    /// Nanoseconds since the tracer was created when the span opened.
    pub start_ns: u64,
    /// Nanoseconds since the tracer was created when the span closed.
    pub end_ns: u64,
}

impl SpanRecord {
    /// Wall-clock duration of the span in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

thread_local! {
    /// (tracer id, span id) of this thread's innermost open span.
    static CURRENT: Cell<(u64, u64)> = const { Cell::new((u64::MAX, 0)) };
    /// This thread's ordinal for span records (assigned on first span).
    static THREAD_ORD: Cell<u64> = const { Cell::new(0) };
}

fn thread_ordinal() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    THREAD_ORD.with(|c| {
        if c.get() == 0 {
            c.set(NEXT.get_or_init(|| AtomicU64::new(1)).fetch_add(1, Ordering::Relaxed));
        }
        c.get()
    })
}

/// The calling thread's current span id for `tracer_id`, 0 when none or
/// when the innermost open span belongs to a different tracer.
pub(crate) fn current_for(tracer_id: u64) -> u64 {
    CURRENT.with(|c| {
        let (tid, span) = c.get();
        if tid == tracer_id {
            span
        } else {
            0
        }
    })
}

/// An open span scope. Dropping it closes the span: the record (with both
/// timestamps) lands in the tracer's side store and the thread's current
/// span reverts to whatever was active before. `#[must_use]` because a
/// span bound to `_` closes immediately and times nothing.
#[must_use = "binding a span to `_` drops it immediately and times nothing"]
#[derive(Debug)]
pub struct Span {
    /// `None` for the disabled-tracer no-op guard.
    tracer: Option<Tracer>,
    id: u64,
    parent: u64,
    /// The thread's previous `CURRENT` value, restored on drop.
    restore: (u64, u64),
    kind: SpanKind,
    detail: u64,
    start_ns: u64,
}

impl Span {
    /// The span's id (0 for the disabled no-op guard). Pass it across
    /// threads or into I/O requests to tag work with its originator.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Whether the span will produce a record (i.e. the tracer was
    /// enabled when it opened).
    pub fn is_recording(&self) -> bool {
        self.tracer.is_some()
    }

    pub(crate) fn disabled() -> Span {
        Span {
            tracer: None,
            id: 0,
            parent: 0,
            restore: (u64::MAX, 0),
            kind: SpanKind::Query,
            detail: 0,
            start_ns: 0,
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer.take() {
            CURRENT.with(|c| c.set(self.restore));
            let end_ns = tracer.now_ns();
            tracer.push_span(SpanRecord {
                id: self.id,
                parent: self.parent,
                kind: self.kind,
                detail: self.detail,
                tid: thread_ordinal(),
                start_ns: self.start_ns,
                end_ns,
            });
        }
    }
}

/// The query context carried across threads: the span id under which work
/// on another thread should parent itself. Capture it with
/// [`QueryCtx::current`] *before* spawning workers, move it into the
/// closure, and open child spans with [`QueryCtx::enter`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueryCtx {
    span: u64,
}

impl QueryCtx {
    /// Captures the calling thread's current span for `tracer` (the
    /// no-op context when the tracer is disabled or no span is open).
    pub fn current(tracer: &Tracer) -> QueryCtx {
        QueryCtx { span: tracer.current_span() }
    }

    /// A context with no parent — children opened through it are roots.
    pub fn root() -> QueryCtx {
        QueryCtx { span: 0 }
    }

    /// The captured span id (0 = none).
    pub fn span(&self) -> u64 {
        self.span
    }

    /// Opens a child span parented to the captured span, making it the
    /// calling thread's current span for the guard's lifetime.
    pub fn enter(&self, tracer: &Tracer, kind: SpanKind, detail: u64) -> Span {
        tracer.span_with_parent(kind, self.span, detail)
    }
}

impl Tracer {
    /// Opens a span parented to the calling thread's current span. When
    /// the tracer is disabled this is one relaxed load returning a no-op
    /// guard (id 0), matching the [`Tracer::emit`] budget.
    pub fn span(&self, kind: SpanKind, detail: u64) -> Span {
        if !self.enabled() {
            return Span::disabled();
        }
        let parent = current_for(self.tracer_id());
        self.open_span(kind, parent, detail)
    }

    /// Opens a span with an explicit parent id (0 = root) — the
    /// cross-thread form: the parent was captured on another thread via
    /// [`Span::id`] or [`QueryCtx`].
    pub fn span_with_parent(&self, kind: SpanKind, parent: u64, detail: u64) -> Span {
        if !self.enabled() {
            return Span::disabled();
        }
        self.open_span(kind, parent, detail)
    }

    fn open_span(&self, kind: SpanKind, parent: u64, detail: u64) -> Span {
        // Ids come from the shared event sequence; skip 0, which means
        // "no span" in event tags and parent links.
        let mut id = self.alloc_seq();
        if id == 0 {
            id = self.alloc_seq();
        }
        let restore = CURRENT.with(|c| c.replace((self.tracer_id(), id)));
        Span {
            tracer: Some(self.clone()),
            id,
            parent,
            restore,
            kind,
            detail,
            start_ns: self.now_ns(),
        }
    }

    /// The calling thread's current span id for this tracer (0 when the
    /// tracer is disabled or no span is open). Use this to tag work
    /// handed to other threads (I/O requests, batch completions).
    pub fn current_span(&self) -> u64 {
        if !self.enabled() {
            return 0;
        }
        current_for(self.tracer_id())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::EventKind;

    #[test]
    fn disabled_span_is_noop() {
        let t = Tracer::new();
        let s = t.span(SpanKind::Query, 0);
        assert_eq!(s.id(), 0);
        assert!(!s.is_recording());
        drop(s);
        assert!(t.drain_spans().is_empty());
        assert_eq!(t.current_span(), 0);
    }

    #[test]
    fn nesting_sets_parents_and_restores_current() {
        let t = Tracer::new();
        t.enable();
        let q = t.span(SpanKind::Query, 0);
        let qid = q.id();
        assert_eq!(t.current_span(), qid);
        {
            let p = t.span(SpanKind::ScanPartition, 7);
            assert_eq!(t.current_span(), p.id());
            let w = t.span(SpanKind::PageWait, 3);
            drop(w);
            assert_eq!(t.current_span(), p.id(), "drop restores the parent scope");
        }
        assert_eq!(t.current_span(), qid);
        drop(q);
        assert_eq!(t.current_span(), 0);

        let spans = t.drain_spans();
        assert_eq!(spans.len(), 3);
        let query = spans.iter().find(|s| s.kind == SpanKind::Query).unwrap();
        let part = spans.iter().find(|s| s.kind == SpanKind::ScanPartition).unwrap();
        let wait = spans.iter().find(|s| s.kind == SpanKind::PageWait).unwrap();
        assert_eq!(query.parent, 0);
        assert_eq!(part.parent, query.id);
        assert_eq!(wait.parent, part.id);
        assert_eq!(part.detail, 7);
        assert!(wait.start_ns >= part.start_ns);
        assert!(query.end_ns >= part.end_ns);
        assert!(t.drain_spans().is_empty(), "drain empties the store");
    }

    #[test]
    fn events_are_tagged_with_the_current_span() {
        let t = Tracer::new();
        t.enable();
        let q = t.span(SpanKind::Query, 0);
        t.emit(EventKind::PagePinned, 1, 2, 0);
        drop(q);
        t.emit(EventKind::PagePinned, 1, 3, 0);
        let evs = t.drain();
        assert_eq!(evs.len(), 2);
        assert_ne!(evs[0].span, 0, "emit inside a span carries its id");
        assert_eq!(evs[1].span, 0, "emit outside any span is untagged");
    }

    #[test]
    fn query_ctx_carries_parent_across_threads() {
        let t = Tracer::new();
        t.enable();
        let q = t.span(SpanKind::Query, 0);
        let ctx = QueryCtx::current(&t);
        assert_eq!(ctx.span(), q.id());
        let handles: Vec<_> = (0..2)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    assert_eq!(t.current_span(), 0, "thread locals do not cross threads");
                    let s = ctx.enter(&t, SpanKind::ScanPartition, i);
                    t.emit(EventKind::PagePinned, 0, i, 0);
                    drop(s);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let qid = q.id();
        drop(q);
        let spans = t.drain_spans();
        let parts: Vec<_> =
            spans.iter().filter(|s| s.kind == SpanKind::ScanPartition).collect();
        assert_eq!(parts.len(), 2);
        assert!(parts.iter().all(|s| s.parent == qid));
        let evs = t.drain();
        assert!(evs.iter().all(|e| parts.iter().any(|s| s.id == e.span)));
    }

    #[test]
    fn span_ids_are_unique_and_nonzero() {
        let t = Tracer::new();
        t.enable();
        for _ in 0..8 {
            let s = t.span(SpanKind::ChunkDispatch, 0);
            assert_ne!(s.id(), 0);
        }
        let spans = t.drain_spans();
        for (i, a) in spans.iter().enumerate() {
            for b in &spans[i + 1..] {
                assert_ne!(a.id, b.id);
            }
        }
    }

    #[test]
    fn two_tracers_keep_separate_current_spans() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.enable();
        b.enable();
        let sa = a.span(SpanKind::Query, 0);
        assert_eq!(b.current_span(), 0, "b's events must not adopt a's span");
        b.emit(EventKind::PagePinned, 0, 0, 0);
        assert_eq!(b.drain()[0].span, 0);
        drop(sa);
    }
}
