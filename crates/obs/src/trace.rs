//! Page-lifecycle event tracing into per-thread bounded ring buffers.
//!
//! A [`Tracer`] is off by default: [`Tracer::emit`] is then a single
//! relaxed `AtomicBool` load and an immediate return, cheap enough to
//! leave in every pool hot path. When enabled, each event takes a global
//! sequence number (one relaxed `fetch_add`) and is appended to the
//! calling thread's private ring buffer — no cross-thread contention on
//! the emit path beyond the two atomics. Rings are bounded
//! ([`TRACE_RING_CAPACITY`] events): when full, the oldest event is
//! overwritten and a drop counter advances, so tracing can stay on
//! indefinitely without growing memory.
//!
//! [`Tracer::drain`] collects every thread's events, sorts them by
//! sequence number, and empties the rings — giving the *exact* global
//! order in which loads, pins, and evictions happened (the sequence is
//! taken while the event happens, not when it is flushed).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::span::{self, SpanRecord, SPAN_STORE_CAPACITY};

/// Events a ring buffer holds before overwriting the oldest.
pub const TRACE_RING_CAPACITY: usize = 65_536;

/// What happened to a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A page's bytes were read from the store into a pool frame.
    PageLoaded,
    /// A pool `pin()` handed out a guard for the page.
    PagePinned,
    /// The resource manager evicted the page's frame from the pool.
    PageEvicted,
    /// A `pin()` blocked behind another thread's in-flight load.
    SingleFlightWait,
    /// The proactive sweeper completed a pass (`page_no` carries the
    /// victim count, `bytes` the bytes reclaimed; `chain` is 0).
    ProactiveSweep,
    /// A fetch request entered the cold-path I/O stage's submission queue.
    IoSubmitted,
    /// An I/O-stage worker issued one physical read (`page_no` is the first
    /// page of the coalesced run, `bytes` the number of pages it covers).
    IoBatchIssued,
    /// The I/O stage completed one fetch request (`bytes` is the page size
    /// on success, 0 on failure).
    IoCompleted,
    /// A load attempt was re-issued after a transient store fault
    /// (`bytes` is 1 when the retry ran inside the I/O stage, 0 inline).
    LoadRetried,
    /// A page entered per-shard quarantine after a permanent load failure.
    PageQuarantined,
}

/// One traced page-lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageEvent {
    /// What happened.
    pub kind: EventKind,
    /// Chain (column) the page belongs to.
    pub chain: u64,
    /// Logical page number within the chain.
    pub page_no: u64,
    /// Byte size involved (page bytes for load/evict, 0 where unknown).
    pub bytes: u64,
    /// Global sequence number: a total order across all threads.
    pub seq: u64,
    /// Nanoseconds since the tracer was created (monotonic clock).
    pub ts_ns: u64,
    /// Id of the span this event happened under (0 = none): the calling
    /// thread's current span for plain emits, the originating request's
    /// span for tagged emits from I/O worker threads.
    pub span: u64,
    /// Kind-specific extra id (0 = none): the I/O batch id on
    /// `IoBatchIssued`/`IoCompleted`, linking every beneficiary request
    /// of a coalesced read back to the one physical read that served it.
    pub aux: u64,
}

struct Ring {
    buf: VecDeque<PageEvent>,
    dropped: u64,
}

struct ThreadRing {
    data: Mutex<Ring>,
}

struct SpanStore {
    recs: Vec<SpanRecord>,
    dropped: u64,
}

struct TracerInner {
    /// Unique across all tracers in the process: keys the thread-local
    /// ring lookup so a thread emitting into two tracers (or a recreated
    /// tracer at a reused address) never mixes rings.
    id: u64,
    enabled: AtomicBool,
    seq: AtomicU64,
    origin: Instant,
    capacity: usize,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// Closed spans, kept apart from the event rings so parent links
    /// survive ring overflow (see [`crate::span`]).
    spans: Mutex<SpanStore>,
}

thread_local! {
    /// This thread's rings, keyed by tracer id. Tiny (one entry per live
    /// tracer this thread has emitted into while enabled).
    static LOCAL_RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

fn next_tracer_id() -> u64 {
    static NEXT: OnceLock<AtomicU64> = OnceLock::new();
    NEXT.get_or_init(|| AtomicU64::new(0)).fetch_add(1, Ordering::Relaxed)
}

/// A page-lifecycle event tracer. Cloning is cheap; clones share state.
#[derive(Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// A new, disabled tracer with the default ring capacity.
    pub fn new() -> Self {
        Self::with_capacity(TRACE_RING_CAPACITY)
    }

    /// A new, disabled tracer whose per-thread rings hold `capacity`
    /// events (older events are overwritten beyond that).
    pub fn with_capacity(capacity: usize) -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                id: next_tracer_id(),
                enabled: AtomicBool::new(false),
                seq: AtomicU64::new(0),
                origin: Instant::now(),
                capacity: capacity.max(1),
                rings: Mutex::new(Vec::new()),
                spans: Mutex::new(SpanStore { recs: Vec::new(), dropped: 0 }),
            }),
        }
    }

    /// Turns event collection on.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Turns event collection off (already-buffered events stay drainable).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// Whether events are being collected.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Records an event tagged with the calling thread's current span.
    /// When the tracer is disabled — the default — this is one relaxed
    /// load and a branch.
    #[inline]
    pub fn emit(&self, kind: EventKind, chain: u64, page_no: u64, bytes: u64) {
        if !self.enabled() {
            return;
        }
        self.emit_slow(kind, chain, page_no, bytes, span::current_for(self.inner.id), 0);
    }

    /// Records an event with an explicit span id and aux id — for threads
    /// doing work *on behalf of* a span opened elsewhere (I/O workers
    /// completing a scan worker's fetch), where the thread-local current
    /// span would be wrong. Same disabled cost as [`Tracer::emit`].
    #[inline]
    pub fn emit_tagged(
        &self,
        kind: EventKind,
        chain: u64,
        page_no: u64,
        bytes: u64,
        span: u64,
        aux: u64,
    ) {
        if !self.enabled() {
            return;
        }
        self.emit_slow(kind, chain, page_no, bytes, span, aux);
    }

    #[cold]
    fn emit_slow(&self, kind: EventKind, chain: u64, page_no: u64, bytes: u64, span: u64, aux: u64) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let ts_ns = self.inner.origin.elapsed().as_nanos() as u64;
        let ev = PageEvent { kind, chain, page_no, bytes, seq, ts_ns, span, aux };
        let ring = self.thread_ring();
        let mut data = ring.data.lock().unwrap_or_else(|e| e.into_inner());
        if data.buf.len() >= self.inner.capacity {
            data.buf.pop_front();
            data.dropped += 1;
        }
        data.buf.push_back(ev);
    }

    /// This thread's ring for this tracer, registering one on first use.
    fn thread_ring(&self) -> Arc<ThreadRing> {
        LOCAL_RINGS.with(|local| {
            let mut local = local.borrow_mut();
            if let Some((_, ring)) = local.iter().find(|(id, _)| *id == self.inner.id) {
                return Arc::clone(ring);
            }
            let ring = Arc::new(ThreadRing {
                data: Mutex::new(Ring { buf: VecDeque::new(), dropped: 0 }),
            });
            self.inner
                .rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(Arc::clone(&ring));
            local.push((self.inner.id, Arc::clone(&ring)));
            ring
        })
    }

    /// Empties every thread's ring and returns the events sorted by
    /// sequence number (the exact global order of occurrence).
    pub fn drain(&self) -> Vec<PageEvent> {
        let rings = self.inner.rings.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = Vec::new();
        for ring in rings.iter() {
            let mut data = ring.data.lock().unwrap_or_else(|e| e.into_inner());
            out.extend(data.buf.drain(..));
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Total events overwritten because a ring was full.
    pub fn dropped(&self) -> u64 {
        let rings = self.inner.rings.lock().unwrap_or_else(|e| e.into_inner());
        rings
            .iter()
            .map(|r| r.data.lock().unwrap_or_else(|e| e.into_inner()).dropped)
            .sum()
    }

    /// Empties the span side store and returns the closed spans sorted by
    /// id (allocation order). Independent of [`Tracer::drain`]: spans stay
    /// resolvable however many events the rings have overwritten.
    pub fn drain_spans(&self) -> Vec<SpanRecord> {
        let mut store = self.inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        let mut out = std::mem::take(&mut store.recs);
        drop(store);
        out.sort_by_key(|s| s.id);
        out
    }

    /// Spans discarded because the side store was at capacity.
    pub fn spans_dropped(&self) -> u64 {
        self.inner.spans.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// This tracer's process-unique id (keys the span thread-local).
    pub(crate) fn tracer_id(&self) -> u64 {
        self.inner.id
    }

    /// Takes the next value of the shared event/span/batch sequence.
    pub(crate) fn alloc_seq(&self) -> u64 {
        self.inner.seq.fetch_add(1, Ordering::Relaxed)
    }

    /// Nanoseconds since the tracer was created (the event clock).
    pub(crate) fn now_ns(&self) -> u64 {
        self.inner.origin.elapsed().as_nanos() as u64
    }

    /// Appends a closed span to the side store (bounded: beyond
    /// [`SPAN_STORE_CAPACITY`] new spans are dropped and counted).
    pub(crate) fn push_span(&self, rec: SpanRecord) {
        let mut store = self.inner.spans.lock().unwrap_or_else(|e| e.into_inner());
        if store.recs.len() >= SPAN_STORE_CAPACITY {
            store.dropped += 1;
            return;
        }
        store.recs.push(rec);
    }
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_emits_collect_nothing() {
        let t = Tracer::new();
        t.emit(EventKind::PageLoaded, 1, 2, 3);
        assert!(t.drain().is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn events_carry_fields_and_drain_in_seq_order() {
        let t = Tracer::new();
        t.enable();
        t.emit(EventKind::PageLoaded, 7, 3, 4096);
        t.emit(EventKind::PagePinned, 7, 3, 4096);
        t.emit(EventKind::PageEvicted, 7, 3, 4096);
        let evs = t.drain();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::PageLoaded);
        assert_eq!(evs[2].kind, EventKind::PageEvicted);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(evs.windows(2).all(|w| w[0].ts_ns <= w[1].ts_ns));
        assert_eq!(evs[0].chain, 7);
        assert_eq!(evs[0].page_no, 3);
        assert_eq!(evs[0].bytes, 4096);
        assert!(t.drain().is_empty(), "drain empties the rings");
    }

    #[test]
    fn rings_are_bounded_and_count_drops() {
        let t = Tracer::with_capacity(4);
        t.enable();
        for i in 0..10 {
            t.emit(EventKind::PagePinned, 0, i, 0);
        }
        let evs = t.drain();
        assert_eq!(evs.len(), 4, "only the newest `capacity` events survive");
        assert_eq!(evs[0].page_no, 6);
        assert_eq!(t.dropped(), 6);
    }

    #[test]
    fn multi_thread_drain_merges_by_seq() {
        let t = Tracer::new();
        t.enable();
        let handles: Vec<_> = (0..4u64)
            .map(|tid| {
                let t = t.clone();
                std::thread::spawn(move || {
                    for i in 0..100u64 {
                        t.emit(EventKind::PagePinned, tid, i, 0);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let evs = t.drain();
        assert_eq!(evs.len(), 400);
        assert!(evs.windows(2).all(|w| w[0].seq < w[1].seq));
        // Per-thread order is preserved within the global order.
        for tid in 0..4u64 {
            let pages: Vec<u64> =
                evs.iter().filter(|e| e.chain == tid).map(|e| e.page_no).collect();
            assert_eq!(pages, (0..100).collect::<Vec<_>>());
        }
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_mix() {
        let a = Tracer::new();
        let b = Tracer::new();
        a.enable();
        b.enable();
        a.emit(EventKind::PageLoaded, 1, 0, 0);
        b.emit(EventKind::PageEvicted, 2, 0, 0);
        let ea = a.drain();
        let eb = b.drain();
        assert_eq!(ea.len(), 1);
        assert_eq!(eb.len(), 1);
        assert_eq!(ea[0].kind, EventKind::PageLoaded);
        assert_eq!(eb[0].kind, EventKind::PageEvicted);
    }
}
