//! Unified observability for the page-as-you-go engine.
//!
//! Every layer of the system — buffer pool, resource manager, scan
//! iterators, tables — reports into one [`Registry`]: a named collection of
//! lock-free [`Counter`]s, [`Gauge`]s, and power-of-two-bucket
//! [`Histogram`]s. A [`Registry::snapshot`] (an [`ObsSnapshot`]) captures
//! the whole system's state at once and renders it as Prometheus
//! exposition text or JSON.
//!
//! The registry's map is behind a mutex, but it is only touched when a
//! metric is first created (or a snapshot is taken): callers hold cheap
//! `Arc` handles and the hot path is a single relaxed atomic add.
//!
//! Two more facilities ride along:
//!
//! - [`Tracer`]: structured page-lifecycle event tracing ([`PageEvent`])
//!   into per-thread bounded ring buffers. Disabled (the default), an emit
//!   is one relaxed load. Enabled, events carry a global sequence number so
//!   a drain can reconstruct the exact system-wide order of loads, pins,
//!   and evictions.
//! - [`Span`]: hierarchical query spans (query → scan-partition →
//!   page-wait/io-batch → chunk-dispatch) recorded by the same tracer into
//!   a separate bounded side store, with a [`QueryCtx`] for carrying the
//!   parent across worker threads. Events emitted under an open span are
//!   tagged with its id, which is how page provenance (who caused this
//!   load?) is reconstructed.
//! - [`ScanProfile`]: a plain per-scan cost breakdown (pages pinned,
//!   guard-cache hits, chunks scanned, kernel dispatch width, match count,
//!   cold/warm split, io-stage batching) filled in by scan iterators and
//!   mergeable across parallel workers.
//!
//! Metric names used by the engine crates live in [`names`] so producers
//! and consumers (benches, exporters, [`ScanProfile::from_delta`]) agree on
//! one vocabulary.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod hist;
mod profile;
mod registry;
mod span;
mod trace;

pub mod names;

pub use hist::{Histogram, HistogramSnapshot, HIST_BUCKETS};
pub use profile::ScanProfile;
pub use registry::{Counter, Gauge, MetricValue, ObsSnapshot, Registry};
pub use span::{QueryCtx, Span, SpanKind, SpanRecord, SPAN_STORE_CAPACITY};
pub use trace::{EventKind, PageEvent, Tracer, TRACE_RING_CAPACITY};
