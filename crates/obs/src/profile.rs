//! Per-scan cost profiles.

use crate::names;
use crate::registry::ObsSnapshot;

/// What one scan cost, broken down the way the paper's evaluation slices
/// it: pool traffic (pages pinned, cold loads vs warm hits), guard-cache
/// effectiveness, kernel work (chunks, dispatch width), and selectivity
/// (bitmap matches). Plain data — filled in by scan iterators, merged
/// across parallel workers with [`ScanProfile::merge`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanProfile {
    /// Pages pinned through the buffer pool (guard-cache misses).
    pub pages_pinned: u64,
    /// Page touches served by an already-held guard (no pool traffic).
    pub guard_cache_hits: u64,
    /// Pages skipped entirely via page-summary pruning.
    pub pages_pruned: u64,
    /// 64-value chunks decoded or kernel-scanned.
    pub chunks_scanned: u64,
    /// Bit width the scan kernel was dispatched at (0 = no kernel scan).
    pub dispatch_width: u32,
    /// Match positions (or counted matches) the scan produced.
    pub bitmap_matches: u64,
    /// Pool loads that hit the store during the scan (cold half of the
    /// cold/warm split; filled by the profiled entry points).
    pub cold_loads: u64,
    /// Pool pins served by already-resident frames during the scan (warm
    /// half; filled by the profiled entry points).
    pub warm_hits: u64,
    /// Physical reads issued by the cold-path I/O stage during the scan —
    /// coalesced ranged reads count once however many pages they cover
    /// (filled by the profiled entry points).
    pub io_batches: u64,
    /// Requests whose page rode a multi-page coalesced read instead of
    /// its own positioned read (filled by the profiled entry points).
    pub io_coalesced_pages: u64,
    /// Prefetch submissions shed by the I/O stage's bounded queue (filled
    /// by the profiled entry points).
    pub io_queue_sheds: u64,
    /// Wall-clock duration of the scan in nanoseconds (profiled entry
    /// points only).
    pub elapsed_ns: u64,
}

impl ScanProfile {
    /// Folds another profile (e.g. a parallel worker's) into this one.
    /// Counters add; `dispatch_width` keeps the widest dispatch seen;
    /// `elapsed_ns` keeps the longer duration (workers overlap in time).
    pub fn merge(&mut self, other: &ScanProfile) {
        self.pages_pinned += other.pages_pinned;
        self.guard_cache_hits += other.guard_cache_hits;
        self.pages_pruned += other.pages_pruned;
        self.chunks_scanned += other.chunks_scanned;
        self.dispatch_width = self.dispatch_width.max(other.dispatch_width);
        self.bitmap_matches += other.bitmap_matches;
        self.cold_loads += other.cold_loads;
        self.warm_hits += other.warm_hits;
        self.io_batches += other.io_batches;
        self.io_coalesced_pages += other.io_coalesced_pages;
        self.io_queue_sheds += other.io_queue_sheds;
        self.elapsed_ns = self.elapsed_ns.max(other.elapsed_ns);
    }

    /// Builds a profile from a registry snapshot *delta* spanning the
    /// scan (see `ObsSnapshot::delta`): scan counters map onto the
    /// corresponding fields and pool counters fill the cold/warm split.
    /// Exact when nothing else drives the registry concurrently.
    pub fn from_delta(d: &ObsSnapshot) -> ScanProfile {
        ScanProfile {
            pages_pinned: d.counter(names::SCAN_PAGES_PINNED),
            guard_cache_hits: d.counter(names::SCAN_GUARD_CACHE_HITS),
            pages_pruned: d.counter(names::SCAN_PAGES_PRUNED),
            chunks_scanned: d.counter(names::SCAN_CHUNKS_SCANNED),
            dispatch_width: d.gauge(names::SCAN_DISPATCH_WIDTH) as u32,
            bitmap_matches: d.counter(names::SCAN_BITMAP_MATCHES),
            cold_loads: d.counter(names::POOL_LOADS),
            warm_hits: d.counter(names::POOL_SHARD_HITS),
            io_batches: d.counter(names::POOL_IO_PHYSICAL_READS),
            io_coalesced_pages: d.counter(names::POOL_IO_COALESCED),
            io_queue_sheds: d.counter(names::POOL_IO_SHED),
            elapsed_ns: 0,
        }
    }

    /// Renders as a JSON object (for embedding in bench reports).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"pages_pinned\": {}, \"guard_cache_hits\": {}, \"pages_pruned\": {}, \
             \"chunks_scanned\": {}, \"dispatch_width\": {}, \"bitmap_matches\": {}, \
             \"cold_loads\": {}, \"warm_hits\": {}, \"io_batches\": {}, \
             \"io_coalesced_pages\": {}, \"io_queue_sheds\": {}, \"elapsed_ns\": {}}}",
            self.pages_pinned,
            self.guard_cache_hits,
            self.pages_pruned,
            self.chunks_scanned,
            self.dispatch_width,
            self.bitmap_matches,
            self.cold_loads,
            self.warm_hits,
            self.io_batches,
            self.io_coalesced_pages,
            self.io_queue_sheds,
            self.elapsed_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn merge_adds_and_maxes() {
        let mut a = ScanProfile {
            pages_pinned: 1,
            guard_cache_hits: 10,
            chunks_scanned: 5,
            dispatch_width: 8,
            bitmap_matches: 3,
            elapsed_ns: 100,
            ..Default::default()
        };
        let b = ScanProfile {
            pages_pinned: 2,
            guard_cache_hits: 1,
            chunks_scanned: 7,
            dispatch_width: 17,
            bitmap_matches: 4,
            io_batches: 2,
            io_coalesced_pages: 6,
            io_queue_sheds: 1,
            elapsed_ns: 60,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.pages_pinned, 3);
        assert_eq!(a.guard_cache_hits, 11);
        assert_eq!(a.chunks_scanned, 12);
        assert_eq!(a.dispatch_width, 17);
        assert_eq!(a.bitmap_matches, 7);
        assert_eq!(a.io_batches, 2);
        assert_eq!(a.io_coalesced_pages, 6);
        assert_eq!(a.io_queue_sheds, 1);
        assert_eq!(a.elapsed_ns, 100);
    }

    #[test]
    fn from_delta_reads_scan_and_pool_names() {
        let reg = Registry::new();
        reg.counter(crate::names::SCAN_PAGES_PINNED).add(4);
        reg.counter(crate::names::SCAN_GUARD_CACHE_HITS).add(9);
        reg.counter(crate::names::SCAN_CHUNKS_SCANNED).add(64);
        reg.counter(crate::names::SCAN_BITMAP_MATCHES).add(2);
        reg.gauge(crate::names::SCAN_DISPATCH_WIDTH).set(17);
        reg.counter_labeled(crate::names::POOL_LOADS, &[("pool", "0")]).add(3);
        reg.counter_labeled(crate::names::POOL_SHARD_HITS, &[("pool", "0"), ("shard", "1")])
            .add(5);
        reg.counter_labeled(crate::names::POOL_IO_PHYSICAL_READS, &[("pool", "0")]).add(6);
        reg.counter_labeled(crate::names::POOL_IO_COALESCED, &[("pool", "0")]).add(11);
        reg.counter_labeled(crate::names::POOL_IO_SHED, &[("pool", "0")]).add(2);
        let p = ScanProfile::from_delta(&reg.snapshot());
        assert_eq!(p.pages_pinned, 4);
        assert_eq!(p.guard_cache_hits, 9);
        assert_eq!(p.chunks_scanned, 64);
        assert_eq!(p.bitmap_matches, 2);
        assert_eq!(p.dispatch_width, 17);
        assert_eq!(p.cold_loads, 3);
        assert_eq!(p.warm_hits, 5);
        assert_eq!(p.io_batches, 6);
        assert_eq!(p.io_coalesced_pages, 11);
        assert_eq!(p.io_queue_sheds, 2);
        let json = p.to_json();
        assert!(json.contains("\"pages_pinned\": 4"), "{json}");
        assert!(json.contains("\"io_batches\": 6"), "{json}");
    }
}
