//! The metric registry: named counters, gauges, and histograms with
//! whole-system snapshots and Prometheus/JSON export.
//!
//! Registration (first use of a name) takes a mutex; after that callers
//! hold `Arc` handles and every increment is a single relaxed atomic op.
//! Metrics are keyed by `(name, labels)` so instance-scoped series (one
//! pool, one shard) coexist under one base name; snapshot accessors sum
//! across labels by default.

use crate::hist::{Histogram, HistogramSnapshot};
use crate::trace::Tracer;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter handle. Cloning is cheap and clones
/// share the same underlying cell.
#[derive(Clone, Default)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// A new counter starting at zero, detached from any registry.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.cell.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` and returns the counter's new value.
    #[inline]
    pub fn add(&self, n: u64) -> u64 {
        self.cell.fetch_add(n, Ordering::Relaxed) + n
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }

    /// Whether two handles share the same underlying cell.
    pub fn same_as(&self, other: &Counter) -> bool {
        Arc::ptr_eq(&self.cell, &other.cell)
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Counter").field(&self.get()).finish()
    }
}

/// A gauge handle: a value that can move both ways (bytes resident,
/// resources registered). Cloning is cheap and clones share the cell.
#[derive(Clone, Default)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// A new gauge starting at zero, detached from any registry.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n` (saturating at zero under racing subtractions is NOT
    /// guaranteed; pair adds and subs).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.cell.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.cell.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("Gauge").field(&self.get()).finish()
    }
}

#[derive(Clone)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

struct RegistryInner {
    // Keyed by (base name, rendered label block) — e.g.
    // ("pool_shard_hits", "{pool=\"0\",shard=\"3\"}"); unlabeled metrics
    // use an empty label block. BTreeMap keeps exports deterministic.
    metrics: Mutex<BTreeMap<(String, String), Metric>>,
    tracer: Tracer,
}

/// A shared registry of named metrics plus the system's [`Tracer`].
///
/// Cloning is cheap (`Arc`); all clones observe the same metrics. Distinct
/// registries are fully independent, so tests that each build their own
/// [`Registry`] (usually via a fresh `ResourceManager`) never share state.
#[derive(Clone)]
pub struct Registry {
    inner: Arc<RegistryInner>,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

/// Renders a label block: `[("shard", "3")]` -> `{shard="3"}`.
fn label_block(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

impl Registry {
    /// A new, empty registry with its own (disabled) tracer.
    pub fn new() -> Self {
        Registry {
            inner: Arc::new(RegistryInner {
                metrics: Mutex::new(BTreeMap::new()),
                tracer: Tracer::new(),
            }),
        }
    }

    /// The registry's page-lifecycle tracer.
    pub fn tracer(&self) -> &Tracer {
        &self.inner.tracer
    }

    fn get_or_insert(&self, name: &str, labels: &[(&str, &str)], make: impl FnOnce() -> Metric) -> Metric {
        let key = (name.to_string(), label_block(labels));
        let mut map = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        map.entry(key).or_insert_with(make).clone()
    }

    /// The counter registered under `name` (creating it on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_labeled(name, &[])
    }

    /// The counter under `name` with a label set, e.g.
    /// `counter_labeled("pool_shard_hits", &[("shard", "3")])`.
    ///
    /// # Panics
    /// If the `(name, labels)` pair is registered as a different kind.
    pub fn counter_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        match self.get_or_insert(name, labels, || Metric::Counter(Counter::new())) {
            Metric::Counter(c) => c,
            m => panic!("metric `{name}` is a {}, not a counter", m.kind()),
        }
    }

    /// The gauge registered under `name` (creating it on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_labeled(name, &[])
    }

    /// The gauge under `name` with a label set.
    ///
    /// # Panics
    /// If the `(name, labels)` pair is registered as a different kind.
    pub fn gauge_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.get_or_insert(name, labels, || Metric::Gauge(Gauge::new())) {
            Metric::Gauge(g) => g,
            m => panic!("metric `{name}` is a {}, not a gauge", m.kind()),
        }
    }

    /// The histogram registered under `name` (creating it on first use).
    ///
    /// # Panics
    /// If `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.histogram_labeled(name, &[])
    }

    /// The histogram under `name` with a label set.
    ///
    /// # Panics
    /// If the `(name, labels)` pair is registered as a different kind.
    pub fn histogram_labeled(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        match self.get_or_insert(name, labels, || Metric::Histogram(Histogram::new())) {
            Metric::Histogram(h) => h,
            m => panic!("metric `{name}` is a {}, not a histogram", m.kind()),
        }
    }

    /// Allocates a small unique instance number for `kind` within this
    /// registry (used to label per-pool metric series). Numbers start at 0.
    pub fn next_instance(&self, kind: &str) -> u64 {
        // Backed by a hidden counter; names starting with "__" are skipped
        // by snapshots and exporters.
        self.counter(&format!("__instances_{kind}")).add(1) - 1
    }

    /// Captures every (non-hidden) metric's current value, plus a
    /// [`crate::names::TRACE_DROPPED`] counter row reflecting the tracer's
    /// ring-overflow drop counts (only once events have been dropped, so
    /// quiet registries stay empty).
    pub fn snapshot(&self) -> ObsSnapshot {
        let map = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let mut entries: Vec<MetricEntry> = map
            .iter()
            .filter(|((name, _), _)| !name.starts_with("__"))
            .map(|((name, labels), m)| MetricEntry {
                name: name.clone(),
                labels: labels.clone(),
                value: match m {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                },
            })
            .collect();
        drop(map);
        let dropped = self.inner.tracer.dropped();
        if dropped > 0 {
            entries.push(MetricEntry {
                name: crate::names::TRACE_DROPPED.to_string(),
                labels: String::new(),
                value: MetricValue::Counter(dropped),
            });
            entries.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        }
        ObsSnapshot { entries }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.inner.metrics.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("Registry").field("metrics", &map.len()).finish()
    }
}

/// One metric's captured value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(u64),
    /// A histogram's buckets (boxed: a snapshot is ~0.5 KiB, far larger
    /// than the scalar variants).
    Histogram(Box<HistogramSnapshot>),
}

/// One `(name, labels, value)` row of a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
struct MetricEntry {
    name: String,
    labels: String,
    value: MetricValue,
}

impl MetricEntry {
    fn id(&self) -> String {
        format!("{}{}", self.name, self.labels)
    }
}

/// A point-in-time capture of a whole [`Registry`] — every counter, gauge,
/// and histogram — mergeable, diffable, and exportable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ObsSnapshot {
    entries: Vec<MetricEntry>,
}

impl ObsSnapshot {
    /// Captures `registry`'s current state (alias of [`Registry::snapshot`]).
    pub fn collect(registry: &Registry) -> ObsSnapshot {
        registry.snapshot()
    }

    /// Number of metric series captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the snapshot holds no series.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sum of all counter series named `name` (across label sets). Returns
    /// 0 for unknown names.
    pub fn counter(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Counter(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// Sum of all gauge series named `name`. Returns 0 for unknown names.
    pub fn gauge(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .filter_map(|e| match &e.value {
                MetricValue::Gauge(v) => Some(*v),
                _ => None,
            })
            .sum()
    }

    /// All histogram series named `name`, merged across label sets.
    /// Returns an empty histogram for unknown names.
    pub fn histogram(&self, name: &str) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::default();
        for e in self.entries.iter().filter(|e| e.name == name) {
            if let MetricValue::Histogram(h) = &e.value {
                out.merge(h);
            }
        }
        out
    }

    /// Folds `other` into this snapshot: matching series add (counters,
    /// histogram buckets, gauges); series only in `other` are appended.
    /// Use for combining snapshots of *distinct* registries.
    pub fn merge(&mut self, other: &ObsSnapshot) {
        for oe in &other.entries {
            match self.entries.iter_mut().find(|e| e.name == oe.name && e.labels == oe.labels) {
                Some(e) => match (&mut e.value, &oe.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
                    (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
                    // Kind mismatch across registries: keep self's value.
                    _ => {}
                },
                None => self.entries.push(oe.clone()),
            }
        }
    }

    /// The change since `earlier` (a previous snapshot of the same
    /// registry): counters and histograms subtract (saturating), gauges
    /// keep this snapshot's (current) value.
    pub fn delta(&self, earlier: &ObsSnapshot) -> ObsSnapshot {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                let prev = earlier
                    .entries
                    .iter()
                    .find(|p| p.name == e.name && p.labels == e.labels);
                let value = match (&e.value, prev.map(|p| &p.value)) {
                    (MetricValue::Counter(v), Some(MetricValue::Counter(p))) => {
                        MetricValue::Counter(v.saturating_sub(*p))
                    }
                    (MetricValue::Histogram(v), Some(MetricValue::Histogram(p))) => {
                        MetricValue::Histogram(Box::new(v.delta(p)))
                    }
                    (v, _) => v.clone(),
                };
                MetricEntry { name: e.name.clone(), labels: e.labels.clone(), value }
            })
            .collect();
        ObsSnapshot { entries }
    }

    /// Renders in the Prometheus text exposition format. Histograms emit
    /// cumulative `_bucket{le="..."}` series up to the highest non-empty
    /// bucket plus `+Inf`, and `_sum`/`_count` rows.
    pub fn to_prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut last_name = "";
        for e in &self.entries {
            if e.name != last_name {
                let kind = match &e.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "histogram",
                };
                let _ = writeln!(out, "# TYPE {} {}", e.name, kind);
                last_name = &e.name;
            }
            match &e.value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {}", e.name, e.labels, v);
                }
                MetricValue::Histogram(h) => {
                    let inner = e.labels.trim_start_matches('{').trim_end_matches('}');
                    let sep = if inner.is_empty() { "" } else { "," };
                    let top = h.max_bucket().map(|i| i + 1).unwrap_or(0);
                    let mut cum = 0u64;
                    for i in 0..top {
                        cum += h.bucket(i);
                        let _ = writeln!(
                            out,
                            "{}_bucket{{{}{}le=\"{}\"}} {}",
                            e.name,
                            inner,
                            sep,
                            HistogramSnapshot::bucket_bound(i),
                            cum
                        );
                    }
                    let _ = writeln!(out, "{}_bucket{{{}{}le=\"+Inf\"}} {}", e.name, inner, sep, h.count());
                    let _ = writeln!(out, "{}_sum{} {}", e.name, e.labels, h.sum());
                    let _ = writeln!(out, "{}_count{} {}", e.name, e.labels, h.count());
                }
            }
        }
        out
    }

    /// Renders as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}` where
    /// histograms carry count/sum/p50/p90/p99 and their non-empty buckets
    /// as `[upper_bound, count]` pairs.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for e in &self.entries {
            let id = esc(&e.id());
            match &e.value {
                MetricValue::Counter(v) => {
                    let sep = if counters.is_empty() { "" } else { ", " };
                    let _ = write!(counters, "{sep}\"{id}\": {v}");
                }
                MetricValue::Gauge(v) => {
                    let sep = if gauges.is_empty() { "" } else { ", " };
                    let _ = write!(gauges, "{sep}\"{id}\": {v}");
                }
                MetricValue::Histogram(h) => {
                    let sep = if hists.is_empty() { "" } else { ", " };
                    let mut buckets = String::new();
                    for i in 0..=h.max_bucket().unwrap_or(0) {
                        if h.bucket(i) > 0 {
                            let bsep = if buckets.is_empty() { "" } else { ", " };
                            let _ = write!(
                                buckets,
                                "{bsep}[{}, {}]",
                                HistogramSnapshot::bucket_bound(i),
                                h.bucket(i)
                            );
                        }
                    }
                    let _ = write!(
                        hists,
                        "{sep}\"{id}\": {{\"count\": {}, \"sum\": {}, \"p50\": {}, \"p90\": {}, \"p99\": {}, \"buckets\": [{buckets}]}}",
                        h.count(),
                        h.sum(),
                        h.percentile(0.50),
                        h.percentile(0.90),
                        h.percentile(0.99),
                    );
                }
            }
        }
        format!("{{\"counters\": {{{counters}}}, \"gauges\": {{{gauges}}}, \"histograms\": {{{hists}}}}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("c");
        let b = reg.counter("c");
        a.inc();
        b.inc();
        assert!(a.same_as(&b));
        assert_eq!(reg.snapshot().counter("c"), 2);
        // Labeled series are distinct from the unlabeled one.
        let l = reg.counter_labeled("c", &[("shard", "0")]);
        l.add(5);
        assert!(!l.same_as(&a));
        assert_eq!(reg.snapshot().counter("c"), 7, "accessor sums across labels");
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn gauge_and_histogram_roundtrip() {
        let reg = Registry::new();
        reg.gauge("g").set(41);
        reg.gauge("g").add(2);
        reg.gauge("g").sub(1);
        reg.histogram("h").record(100);
        let s = reg.snapshot();
        assert_eq!(s.gauge("g"), 42);
        assert_eq!(s.histogram("h").count(), 1);
    }

    #[test]
    fn next_instance_counts_up_and_stays_hidden() {
        let reg = Registry::new();
        assert_eq!(reg.next_instance("pool"), 0);
        assert_eq!(reg.next_instance("pool"), 1);
        assert_eq!(reg.next_instance("other"), 0);
        assert!(reg.snapshot().is_empty(), "__ names are hidden");
        assert!(!reg.snapshot().to_json().contains("__instances"));
    }

    #[test]
    fn snapshot_surfaces_tracer_ring_overflow() {
        let reg = Registry::new();
        assert!(reg.snapshot().is_empty(), "no drops, no synthetic row");
        let t = reg.tracer().clone();
        t.enable();
        for i in 0..(crate::TRACE_RING_CAPACITY as u64 + 5) {
            t.emit(crate::EventKind::PagePinned, 0, i, 0);
        }
        let s = reg.snapshot();
        assert_eq!(s.counter(crate::names::TRACE_DROPPED), 5);
        assert!(s.to_prometheus_text().contains("trace_dropped 5"));
        // Drain keeps the drop counts, so the row is monotonic and
        // delta-friendly.
        t.drain();
        assert_eq!(reg.snapshot().counter(crate::names::TRACE_DROPPED), 5);
    }

    #[test]
    fn delta_subtracts_counters_keeps_gauges() {
        let reg = Registry::new();
        let c = reg.counter("c");
        let g = reg.gauge("g");
        c.add(10);
        g.set(100);
        let before = reg.snapshot();
        c.add(5);
        g.set(70);
        let d = reg.snapshot().delta(&before);
        assert_eq!(d.counter("c"), 5);
        assert_eq!(d.gauge("g"), 70);
    }

    #[test]
    fn merge_combines_distinct_registries() {
        let a = Registry::new();
        let b = Registry::new();
        a.counter("shared").add(1);
        b.counter("shared").add(2);
        b.counter("only_b").add(3);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.counter("shared"), 3);
        assert_eq!(s.counter("only_b"), 3);
    }

    #[test]
    fn prometheus_text_shape() {
        let reg = Registry::new();
        reg.counter_labeled("hits", &[("shard", "0")]).add(3);
        reg.histogram("lat").record(5);
        let text = reg.snapshot().to_prometheus_text();
        assert!(text.contains("# TYPE hits counter"), "{text}");
        assert!(text.contains("hits{shard=\"0\"} 3"), "{text}");
        assert!(text.contains("# TYPE lat histogram"), "{text}");
        assert!(text.contains("lat_bucket{le=\"7\"} 1"), "{text}");
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 1"), "{text}");
        assert!(text.contains("lat_sum 5"), "{text}");
        assert!(text.contains("lat_count 1"), "{text}");
    }

    #[test]
    fn json_shape() {
        let reg = Registry::new();
        reg.counter("c").add(7);
        reg.gauge("g").set(9);
        reg.histogram("h").record(3);
        let json = reg.snapshot().to_json();
        assert!(json.contains("\"c\": 7"), "{json}");
        assert!(json.contains("\"g\": 9"), "{json}");
        assert!(json.contains("\"count\": 1"), "{json}");
        assert!(json.contains("[3, 1]"), "{json}");
    }
}
