//! Canonical metric names.
//!
//! Producers (pool, resource manager, scan iterators) and consumers
//! (exporters, benches, [`crate::ScanProfile::from_delta`]) share these
//! constants so a rename cannot silently split a series. Instance-scoped
//! metrics (per pool, per shard) add labels on top of these base names;
//! [`crate::ObsSnapshot::counter`] sums across labels.
//!
//! Every name is declared once through [`declare_names!`], which emits the
//! `pub const` *and* a row in [`ALL`] — the introspection table the static
//! analyzer (`cargo xtask analyze`, obs-vocabulary pass) consumes to verify
//! that every name string reaching a registry handle is declared here, that
//! every declared name is used somewhere, and that labelled registrations
//! pass exactly the declared label keys.

/// One declared metric name: the const identifier, the wire name, and the
/// label keys instance-scoped registrations must pass (base registrations
/// through the unlabelled accessors are always allowed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NameSpec {
    /// The `pub const` identifier (`POOL_LOADS`).
    pub ident: &'static str,
    /// The metric name on the wire (`"pool_loads"`).
    pub name: &'static str,
    /// Label keys for labelled registrations, in canonical order.
    pub labels: &'static [&'static str],
}

/// Declares the metric-name consts and the [`ALL`] table from one list.
macro_rules! declare_names {
    ($( $(#[$meta:meta])* $ident:ident = $value:literal, labels: [$($label:ident),*]; )+) => {
        $( $(#[$meta])* pub const $ident: &str = $value; )+

        /// Every declared metric name, in declaration order. Generated from
        /// the same `declare_names!` invocation that emits the consts.
        pub static ALL: &[NameSpec] = &[
            $( NameSpec {
                ident: stringify!($ident),
                name: $value,
                labels: &[$(stringify!($label)),*],
            }, )+
        ];
    };
}

declare_names! {
    /// Successful page loads completed by a buffer pool (labelled `pool`).
    POOL_LOADS = "pool_loads", labels: [pool];
    /// Bytes brought in by successful page loads (labelled `pool`).
    POOL_BYTES_LOADED = "pool_bytes_loaded", labels: [pool];
    /// Times a `pin()` blocked on another thread's in-flight load of the
    /// same page (labelled `pool`).
    POOL_LOAD_WAITS = "pool_load_waits", labels: [pool];
    /// Pages pulled in by the background prefetcher (labelled `pool`).
    POOL_PREFETCHES = "pool_prefetches", labels: [pool];
    /// Warm pin-latency histogram in nanoseconds — pins served from a
    /// resident frame only; cold paths land in [`POOL_LOAD_NS`] (labelled
    /// `pool`).
    POOL_PIN_NS = "pool_pin_ns", labels: [pool];
    /// Cold pin-latency histogram in nanoseconds — pins that started or
    /// joined a load, so warm latency in [`POOL_PIN_NS`] stays readable
    /// (labelled `pool`).
    POOL_LOAD_NS = "pool_load_ns", labels: [pool];
    /// Per-shard resident hits (labelled `pool`, `shard`).
    POOL_SHARD_HITS = "pool_shard_hits", labels: [pool, shard];
    /// Per-shard misses — pin attempts that found no resident frame and
    /// became or joined a load (labelled `pool`, `shard`). Counts attempts,
    /// so failed loads are `misses - loads`.
    POOL_SHARD_MISSES = "pool_shard_misses", labels: [pool, shard];
    /// Per-shard lock-contention events (labelled `pool`, `shard`).
    POOL_SHARD_CONTENDED = "pool_shard_contended", labels: [pool, shard];
    /// Load attempts re-issued after a transient store fault (labelled
    /// `pool`).
    POOL_LOAD_RETRIES = "pool_load_retries", labels: [pool];
    /// Store faults observed by the pool's load path, including ones
    /// absorbed by a successful retry (labelled `pool`, `kind` ∈ transient/
    /// corrupt/logical).
    POOL_LOAD_FAULTS = "pool_load_faults", labels: [pool, kind];
    /// Pages placed in per-shard quarantine after a permanent load failure
    /// (labelled `pool`).
    POOL_QUARANTINE_INSERTS = "pool_quarantine_inserts", labels: [pool];
    /// Pins failed fast from quarantine without touching the store
    /// (labelled `pool`).
    POOL_QUARANTINE_FAIL_FAST = "pool_quarantine_fail_fast", labels: [pool];

    /// Fetch requests submitted to the cold-path I/O stage, urgent and
    /// prefetch classes alike (labelled `pool`).
    POOL_IO_SUBMITTED = "pool_io_submitted", labels: [pool];
    /// Requests whose page rode a multi-page coalesced read instead of its
    /// own positioned read (labelled `pool`).
    POOL_IO_COALESCED = "pool_io_coalesced", labels: [pool];
    /// Fetch requests completed by the I/O stage, successes and failures
    /// alike (labelled `pool`).
    POOL_IO_COMPLETIONS = "pool_io_completions", labels: [pool];
    /// Physical store reads issued by the I/O stage — coalesced ranged
    /// reads count once however many pages they cover (labelled `pool`).
    POOL_IO_PHYSICAL_READS = "pool_io_physical_reads", labels: [pool];
    /// Pages-per-physical-read histogram for the I/O stage (labelled
    /// `pool`).
    POOL_IO_BATCH_PAGES = "pool_io_batch_pages", labels: [pool];
    /// Submission-queue depth sampled at each submit (labelled `pool`).
    POOL_IO_QUEUE_DEPTH = "pool_io_queue_depth", labels: [pool];
    /// Prefetch submissions shed because the I/O stage's bounded queue was
    /// at capacity or closed (labelled `pool`). Urgent submissions are
    /// never shed.
    POOL_IO_SHED = "pool_io_shed", labels: [pool];

    /// Bytes currently registered with the resource manager (gauge).
    RESMAN_TOTAL_BYTES = "resman_total_bytes", labels: [];
    /// Bytes of paged (evictable) resources currently registered (gauge).
    RESMAN_PAGED_BYTES = "resman_paged_bytes", labels: [];
    /// Number of registered resources (gauge).
    RESMAN_RESOURCE_COUNT = "resman_resource_count", labels: [];
    /// Number of registered paged resources (gauge).
    RESMAN_PAGED_COUNT = "resman_paged_count", labels: [];
    /// Resources evicted by the proactive background sweeper.
    RESMAN_PROACTIVE_EVICTIONS = "resman_proactive_evictions", labels: [];
    /// Resources evicted reactively on allocation pressure.
    RESMAN_REACTIVE_EVICTIONS = "resman_reactive_evictions", labels: [];
    /// Resources evicted by the weighted-LRU low-memory handler.
    RESMAN_WEIGHTED_EVICTIONS = "resman_weighted_evictions", labels: [];
    /// Total bytes reclaimed by evictions of any kind.
    RESMAN_EVICTED_BYTES = "resman_evicted_bytes", labels: [];
    /// Resource registrations since startup.
    RESMAN_REGISTRATIONS = "resman_registrations", labels: [];
    /// Bytes committed to reads in flight through the I/O stage — already
    /// charged against memory but not yet registered as resources (gauge).
    RESMAN_INFLIGHT_BYTES = "resman_inflight_bytes", labels: [];
    /// Number of in-flight I/O-stage reads currently charged (gauge).
    RESMAN_INFLIGHT_COUNT = "resman_inflight_count", labels: [];

    /// Scan calls (search/count) completed by paged data-vector iterators.
    SCAN_SCANS = "scan_scans", labels: [];
    /// 64-value chunks decoded or kernel-scanned.
    SCAN_CHUNKS_SCANNED = "scan_chunks_scanned", labels: [];
    /// Guard-cache hits — page touches served by an already-held pin.
    SCAN_GUARD_CACHE_HITS = "scan_guard_cache_hits", labels: [];
    /// Pages pinned through the pool by scan iterators (guard-cache
    /// misses).
    SCAN_PAGES_PINNED = "scan_pages_pinned", labels: [];
    /// Bitmap match positions produced by scans.
    SCAN_BITMAP_MATCHES = "scan_bitmap_matches", labels: [];
    /// Pages skipped via page-summary (min/max) pruning.
    SCAN_PAGES_PRUNED = "scan_pages_pruned", labels: [];
    /// Kernel dispatch width (bit width of the last dispatched kernel;
    /// gauge).
    SCAN_DISPATCH_WIDTH = "scan_dispatch_width", labels: [];
    /// End-to-end scan latency histogram in nanoseconds (profiled scans
    /// only).
    SCAN_NS = "scan_ns", labels: [];

    /// Full-column loads performed by resident columns.
    COLUMN_FULL_LOADS = "column_full_loads", labels: [];

    /// Bytes persisted into page chains at build time, by chain codec
    /// (labelled `pool`, `codec` ∈ plain/fsst/pef).
    POOL_PAGE_BYTES = "pool_page_bytes", labels: [pool, codec];
    /// FSST dictionary-chain compression ratio in per-mille — compressed ÷
    /// raw × 1000 on the training sample; 1000 when FSST was evaluated but
    /// not applied (gauge, labelled `pool`).
    DICT_FSST_RATIO = "dict_fsst_ratio", labels: [pool];
    /// Average partitioned-Elias-Fano bits per posting × 100 for the most
    /// recently built inverted index (gauge, labelled `pool`).
    PEF_CHUNK_BITS = "pef_chunk_bits", labels: [pool];

    /// Reader sessions currently admitted to a table's serving layer
    /// (gauge).
    TABLE_SESSIONS_ACTIVE = "table_sessions_active", labels: [];
    /// Sessions that had to queue behind the admission limit before being
    /// granted.
    TABLE_SESSIONS_QUEUED = "table_sessions_queued", labels: [];
    /// Sessions rejected by admission control — queue full or wait timed
    /// out.
    TABLE_SESSIONS_REJECTED = "table_sessions_rejected", labels: [];
    /// Online delta-merge duration histogram in nanoseconds (aborted
    /// merges record too, so abort latency is visible).
    TABLE_MERGE_NS = "table_merge_ns", labels: [];
    /// Table versions currently live — pinned snapshots keep retired
    /// versions alive, so this gauge exposes retirement lag (gauge).
    TABLE_VERSIONS_LIVE = "table_versions_live", labels: [];

    /// Trace events overwritten because a per-thread ring was full —
    /// injected into snapshots by the registry from the tracer's drop
    /// counts, so ring overflow is visible instead of silent.
    TRACE_DROPPED = "trace_dropped", labels: [];
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_matches_consts() {
        assert!(ALL.iter().any(|s| s.ident == "POOL_LOADS" && s.name == POOL_LOADS));
        assert!(ALL.iter().any(|s| s.name == SCAN_NS && s.labels.is_empty()));
        let faults = ALL.iter().find(|s| s.name == POOL_LOAD_FAULTS).unwrap();
        assert_eq!(faults.labels, ["pool", "kind"]);
    }

    #[test]
    fn names_and_idents_are_unique() {
        for (i, a) in ALL.iter().enumerate() {
            for b in &ALL[i + 1..] {
                assert_ne!(a.name, b.name, "duplicate wire name");
                assert_ne!(a.ident, b.ident, "duplicate const ident");
            }
        }
    }
}
